"""Composite forecasting pipelines used by the paper's experiments.

* :class:`STLForecaster` — decompose the series, forecast the seasonally
  adjusted part with a base model (ETS or ARIMA), and add back the last
  seasonal cycle (the ``STL-ETS`` / ``STL-ARIMA`` models of EXP2).
* :class:`SeasonalNaive` — repeat the last observed cycle; the sanity-check
  baseline every seasonal model should beat.
* :func:`make_forecaster` — construct any model used in the benchmarks from
  its short name.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import InvalidParameterError, ModelError
from .arima import AutoRegressive
from .base import Forecaster
from .dhr import DynamicHarmonicRegression
from .ets import HoltLinear, HoltWinters, SimpleExponentialSmoothing
from .mlp import MLPAutoregressor
from .naive import DriftForecaster, NaiveForecaster, ThetaForecaster
from .stl import decompose

__all__ = ["SeasonalNaive", "STLForecaster", "make_forecaster"]


class SeasonalNaive(Forecaster):
    """Forecast by repeating the last full seasonal cycle."""

    name = "SNaive"

    def __init__(self, period: int):
        super().__init__()
        self.period = check_positive_int(period, "period")
        self._last_cycle: np.ndarray = np.zeros(self.period)

    def fit(self, values) -> "SeasonalNaive":
        values = as_float_array(values)
        if values.size < self.period:
            raise ModelError("SeasonalNaive needs at least one full period")
        self._last_cycle = values[-self.period:].copy()
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        repeats = int(np.ceil(horizon / self.period))
        return np.tile(self._last_cycle, repeats)[:horizon]


class STLForecaster(Forecaster):
    """Seasonal decomposition + base model on the seasonally adjusted series."""

    def __init__(self, period: int, base: str = "ets"):
        super().__init__()
        self.period = check_positive_int(period, "period")
        base = str(base).lower()
        if base not in ("ets", "arima"):
            raise InvalidParameterError("base must be 'ets' or 'arima'")
        self.base = base
        self.name = f"STL-{'ETS' if base == 'ets' else 'ARIMA'}"
        self._base_model: Forecaster | None = None
        self._seasonal_cycle: np.ndarray = np.zeros(self.period)
        self._train_length = 0

    def fit(self, values) -> "STLForecaster":
        values = as_float_array(values)
        decomposition = decompose(values, self.period)
        adjusted = decomposition.deseasonalized
        # Average seasonal pattern of the final cycle (it is periodic anyway).
        self._seasonal_cycle = decomposition.seasonal[:self.period].copy()
        self._train_length = values.size
        if self.base == "ets":
            self._base_model = HoltLinear(damped=True)
        else:
            self._base_model = AutoRegressive(difference=1, max_order=5)
        self._base_model.fit(adjusted)
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        adjusted_forecast = self._base_model.forecast(horizon)
        phases = (self._train_length + np.arange(horizon)) % self.period
        return adjusted_forecast + self._seasonal_cycle[phases]


def make_forecaster(name: str, period: int, **kwargs) -> Forecaster:
    """Create a forecaster from its benchmark short name.

    Supported names: ``holt-winters``, ``ses``, ``holt``, ``stl-ets``,
    ``stl-arima``, ``arima``, ``dhr-arima``, ``mlp`` (the LSTM stand-in),
    ``snaive``, ``naive``, ``drift`` and ``theta``.
    """
    key = str(name).strip().lower()
    if key in ("holt-winters", "hw"):
        return HoltWinters(period, **kwargs)
    if key == "ses":
        return SimpleExponentialSmoothing(**kwargs)
    if key == "holt":
        return HoltLinear(**kwargs)
    if key == "stl-ets":
        return STLForecaster(period, base="ets")
    if key == "stl-arima":
        return STLForecaster(period, base="arima")
    if key == "arima":
        return AutoRegressive(**kwargs)
    if key == "dhr-arima":
        return DynamicHarmonicRegression(period, **kwargs)
    if key in ("mlp", "lstm"):
        kwargs.setdefault("window", min(max(period, 8), 48))
        return MLPAutoregressor(**kwargs)
    if key == "snaive":
        return SeasonalNaive(period)
    if key == "naive":
        return NaiveForecaster()
    if key == "drift":
        return DriftForecaster()
    if key == "theta":
        return ThetaForecaster(period, **kwargs)
    raise InvalidParameterError(f"unknown forecaster {name!r}")
