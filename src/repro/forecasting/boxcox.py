"""Box-Cox power transformation (used by the EXP1 preprocessing pipeline).

The paper stabilises variance with a Box-Cox transform followed by
standardisation before the Pedestrian forecasting experiment.  The transform
here follows the classical definition with an automatic shift for
non-positive data and a log-likelihood-based lambda estimate (delegated to
``scipy.stats`` when a lambda is not supplied).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .._validation import as_float_array
from ..exceptions import InvalidParameterError

__all__ = ["BoxCoxTransform", "boxcox_transform", "inverse_boxcox_transform"]


def boxcox_transform(values: np.ndarray, lam: float) -> np.ndarray:
    """Apply the Box-Cox transform with parameter ``lam`` to positive data."""
    if np.any(values <= 0):
        raise InvalidParameterError("Box-Cox requires strictly positive values")
    if abs(lam) < 1e-12:
        return np.log(values)
    return (np.power(values, lam) - 1.0) / lam


def inverse_boxcox_transform(values: np.ndarray, lam: float) -> np.ndarray:
    """Invert :func:`boxcox_transform`."""
    if abs(lam) < 1e-12:
        return np.exp(values)
    return np.power(np.maximum(values * lam + 1.0, 1e-12), 1.0 / lam)


@dataclass
class BoxCoxTransform:
    """Stateful Box-Cox + standardisation pipeline.

    ``fit_transform`` shifts the data to be positive (if needed), estimates
    ``lambda`` by maximum likelihood unless provided, applies the power
    transform, and standardises to zero mean / unit variance.
    ``inverse_transform`` undoes all three steps.
    """

    lam: float | None = None
    standardize: bool = True
    shift_: float = 0.0
    mean_: float = 0.0
    std_: float = 1.0
    fitted_: bool = False

    def fit_transform(self, values) -> np.ndarray:
        values = as_float_array(values)
        minimum = float(np.min(values))
        self.shift_ = 0.0 if minimum > 0 else (1.0 - minimum)
        shifted = values + self.shift_
        if self.lam is None:
            # scipy returns (transformed, lambda) when lmbda is not given.
            _transformed, lam = stats.boxcox(shifted)
            self.lam = float(lam)
        transformed = boxcox_transform(shifted, self.lam)
        if self.standardize:
            self.mean_ = float(np.mean(transformed))
            self.std_ = float(np.std(transformed)) or 1.0
            transformed = (transformed - self.mean_) / self.std_
        self.fitted_ = True
        return transformed

    def transform(self, values) -> np.ndarray:
        """Apply the already-fitted transform to new values."""
        if not self.fitted_:
            raise InvalidParameterError("call fit_transform before transform")
        values = as_float_array(values) + self.shift_
        transformed = boxcox_transform(np.maximum(values, 1e-12), float(self.lam))
        if self.standardize:
            transformed = (transformed - self.mean_) / self.std_
        return transformed

    def inverse_transform(self, values) -> np.ndarray:
        """Map transformed values back to the original scale."""
        if not self.fitted_:
            raise InvalidParameterError("call fit_transform before inverse_transform")
        values = np.asarray(values, dtype=np.float64)
        if self.standardize:
            values = values * self.std_ + self.mean_
        restored = inverse_boxcox_transform(values, float(self.lam))
        return restored - self.shift_
