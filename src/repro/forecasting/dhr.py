"""Dynamic Harmonic Regression (DHR-ARIMA).

EXP3 of the paper forecasts highly seasonal series with DHR-ARIMA: the
seasonality is captured by Fourier regressors (sin/cos pairs at harmonics of
the seasonal period) and the regression errors follow an ARIMA process.  This
implementation fits the harmonic regression by least squares and models the
residuals with :class:`repro.forecasting.arima.AutoRegressive`.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import ModelError
from .arima import AutoRegressive
from .base import Forecaster

__all__ = ["DynamicHarmonicRegression", "fourier_terms"]


def fourier_terms(length: int, period: float, num_harmonics: int, *,
                  start: int = 0) -> np.ndarray:
    """Fourier design matrix with ``2 * num_harmonics`` columns.

    Column ``2k`` is ``sin(2 pi (k+1) t / period)`` and column ``2k+1`` the
    matching cosine, for ``t = start .. start + length - 1``.
    """
    length = check_positive_int(length, "length")
    num_harmonics = check_positive_int(num_harmonics, "num_harmonics")
    t = np.arange(start, start + length, dtype=np.float64)
    columns = []
    for harmonic in range(1, num_harmonics + 1):
        angle = 2.0 * np.pi * harmonic * t / float(period)
        columns.append(np.sin(angle))
        columns.append(np.cos(angle))
    return np.column_stack(columns)


class DynamicHarmonicRegression(Forecaster):
    """Fourier-regression mean with autoregressive errors.

    Parameters
    ----------
    period:
        Seasonal period in samples.
    num_harmonics:
        Number of sin/cos harmonic pairs (K).  More harmonics follow sharper
        seasonal shapes at the cost of more coefficients.
    error_order:
        AR order for the residual model; ``None`` selects it by AIC.
    trend:
        Include a linear time trend regressor.
    """

    name = "DHR-ARIMA"

    def __init__(self, period: int, num_harmonics: int = 3, *,
                 error_order: int | None = None, trend: bool = True):
        super().__init__()
        self.period = check_positive_int(period, "period")
        self.num_harmonics = check_positive_int(num_harmonics, "num_harmonics")
        if 2 * self.num_harmonics > self.period:
            raise ModelError("num_harmonics must not exceed period / 2")
        self.error_order = error_order
        self.trend = trend
        self.coefficients_: np.ndarray = np.zeros(0)
        self.residual_model_: AutoRegressive | None = None
        self.train_length_: int = 0

    def _design(self, length: int, start: int) -> np.ndarray:
        harmonics = fourier_terms(length, self.period, self.num_harmonics, start=start)
        columns = [np.ones(length), harmonics]
        if self.trend:
            t = np.arange(start, start + length, dtype=np.float64)
            columns.insert(1, (t / max(self.train_length_, 1)).reshape(-1, 1))
        pieces = []
        for column in columns:
            column = np.asarray(column, dtype=np.float64)
            pieces.append(column.reshape(length, -1))
        return np.hstack(pieces)

    def fit(self, values) -> "DynamicHarmonicRegression":
        values = as_float_array(values)
        if values.size < 2 * self.period:
            raise ModelError(
                f"DHR needs at least two seasonal cycles ({2 * self.period} points)")
        self.train_length_ = values.size
        design = self._design(values.size, 0)
        solution, _residuals, _rank, _sv = np.linalg.lstsq(design, values, rcond=None)
        self.coefficients_ = solution
        residuals = values - design @ solution
        self.residual_model_ = AutoRegressive(self.error_order, max_order=5)
        try:
            self.residual_model_.fit(residuals)
        except ModelError:
            self.residual_model_ = None
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        design = self._design(horizon, self.train_length_)
        mean_forecast = design @ self.coefficients_
        if self.residual_model_ is not None:
            mean_forecast = mean_forecast + self.residual_model_.forecast(horizon)
        return mean_forecast
