"""Common forecasting-model interface.

All models follow the scikit-learn-like two-phase contract used by the
paper's forecasting experiments: ``fit(train_values)`` then
``forecast(horizon)``.  The helper :func:`evaluate_forecast` trains a model
on (possibly decompressed) data and scores the forecast against the *raw*
hold-out, which is exactly the protocol of EXP1-EXP3 (Section 5.8).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import ModelError
from ..metrics import get_metric

__all__ = ["Forecaster", "ForecastEvaluation", "evaluate_forecast", "train_test_split"]


class Forecaster(ABC):
    """Base class for univariate point forecasters."""

    #: Identifier used in benchmark tables.
    name: str = "forecaster"

    def __init__(self) -> None:
        self._fitted = False

    @abstractmethod
    def fit(self, values) -> "Forecaster":
        """Fit the model on the training series and return ``self``."""

    @abstractmethod
    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast ``horizon`` steps beyond the training series."""

    def fit_forecast(self, values, horizon: int) -> np.ndarray:
        """Convenience: ``fit`` followed by ``forecast``."""
        return self.fit(values).forecast(horizon)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise ModelError(f"{self.__class__.__name__} must be fitted before forecasting")


def train_test_split(values, horizon: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a series into a training prefix and a ``horizon``-long hold-out."""
    values = as_float_array(values)
    horizon = check_positive_int(horizon, "horizon")
    if horizon >= values.size:
        raise ModelError(f"horizon ({horizon}) must be smaller than the series ({values.size})")
    return values[:-horizon].copy(), values[-horizon:].copy()


@dataclass
class ForecastEvaluation:
    """Result of evaluating one model on one (possibly compressed) series."""

    model: str
    horizon: int
    error: float
    metric: str
    forecast: np.ndarray
    actual: np.ndarray


def evaluate_forecast(model: Forecaster, train_values, actual_future, *,
                      metric="msmape") -> ForecastEvaluation:
    """Train ``model`` on ``train_values`` and score against ``actual_future``.

    ``train_values`` is typically the *decompressed* training prefix while
    ``actual_future`` always comes from the raw series, mirroring the paper's
    evaluation protocol (models trained on compressed data, accuracy measured
    against reality).
    """
    actual = as_float_array(actual_future)
    prediction = model.fit_forecast(train_values, actual.size)
    prediction = np.asarray(prediction, dtype=np.float64)
    if prediction.shape != actual.shape:
        raise ModelError(
            f"forecast shape {prediction.shape} does not match actual {actual.shape}")
    metric_fn = get_metric(metric)
    error = float(metric_fn(actual, prediction))
    return ForecastEvaluation(model=model.name, horizon=actual.size, error=error,
                              metric=metric if isinstance(metric, str) else "custom",
                              forecast=prediction, actual=actual)
