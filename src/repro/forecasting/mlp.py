"""Windowed MLP autoregressor — the offline stand-in for the paper's LSTM.

The paper trains an LSTM on (compressed) series and forecasts the last 24
points.  No deep-learning framework is available offline, so this module
implements a small fully-connected network in NumPy:

* input: the previous ``window`` (standardised) values,
* one hidden ``tanh`` layer,
* linear output predicting the next value,
* training by mini-batch gradient descent with Adam,
* multi-step forecasts produced recursively.

Like an LSTM it is a nonlinear learner of temporal structure whose accuracy
degrades when compression destroys the autocorrelation pattern — which is the
property the EXP2/EXP3 experiments measure.  The substitution is documented in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import ModelError
from .base import Forecaster

__all__ = ["MLPAutoregressor"]


class MLPAutoregressor(Forecaster):
    """One-hidden-layer neural autoregressor trained with Adam.

    Parameters
    ----------
    window:
        Number of lagged inputs.
    hidden_units:
        Width of the hidden layer.
    epochs, batch_size, learning_rate:
        Training schedule.
    seed:
        Seed for weight initialisation and batch shuffling, making runs
        reproducible.
    """

    name = "MLP"

    def __init__(self, window: int = 24, hidden_units: int = 32, *, epochs: int = 60,
                 batch_size: int = 32, learning_rate: float = 0.01, seed: int = 0):
        super().__init__()
        self.window = check_positive_int(window, "window")
        self.hidden_units = check_positive_int(hidden_units, "hidden_units")
        self.epochs = check_positive_int(epochs, "epochs")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.learning_rate = float(learning_rate)
        self.seed = int(seed)
        self._weights: dict[str, np.ndarray] = {}
        self._mean = 0.0
        self._std = 1.0
        self._history: np.ndarray = np.zeros(0)

    # ------------------------------------------------------------------ #
    def _make_dataset(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        window = self.window
        rows = values.size - window
        inputs = np.empty((rows, window))
        targets = np.empty(rows)
        for row in range(rows):
            inputs[row] = values[row:row + window]
            targets[row] = values[row + window]
        return inputs, targets

    def _forward(self, inputs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.tanh(inputs @ self._weights["w1"] + self._weights["b1"])
        output = hidden @ self._weights["w2"] + self._weights["b2"]
        return hidden, output.ravel()

    def fit(self, values) -> "MLPAutoregressor":
        values = as_float_array(values)
        if values.size < self.window + 8:
            raise ModelError(
                f"MLPAutoregressor needs at least {self.window + 8} observations")
        self._mean = float(np.mean(values))
        self._std = float(np.std(values)) or 1.0
        normalised = (values - self._mean) / self._std
        self._history = normalised[-self.window:].copy()
        inputs, targets = self._make_dataset(normalised)

        rng = np.random.default_rng(self.seed)
        scale = 1.0 / np.sqrt(self.window)
        self._weights = {
            "w1": rng.normal(0.0, scale, size=(self.window, self.hidden_units)),
            "b1": np.zeros(self.hidden_units),
            "w2": rng.normal(0.0, 1.0 / np.sqrt(self.hidden_units),
                             size=(self.hidden_units, 1)),
            "b2": np.zeros(1),
        }
        moments = {key: (np.zeros_like(value), np.zeros_like(value))
                   for key, value in self._weights.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        indices = np.arange(inputs.shape[0])

        for _epoch in range(self.epochs):
            rng.shuffle(indices)
            for start in range(0, indices.size, self.batch_size):
                batch = indices[start:start + self.batch_size]
                batch_inputs = inputs[batch]
                batch_targets = targets[batch]
                hidden = np.tanh(batch_inputs @ self._weights["w1"] + self._weights["b1"])
                prediction = (hidden @ self._weights["w2"] + self._weights["b2"]).ravel()
                error = prediction - batch_targets
                batch_size = batch.size

                grad_output = (error / batch_size).reshape(-1, 1)
                grads = {
                    "w2": hidden.T @ grad_output,
                    "b2": grad_output.sum(axis=0),
                }
                grad_hidden = (grad_output @ self._weights["w2"].T) * (1.0 - hidden ** 2)
                grads["w1"] = batch_inputs.T @ grad_hidden
                grads["b1"] = grad_hidden.sum(axis=0)

                step += 1
                for key, gradient in grads.items():
                    m, v = moments[key]
                    m = beta1 * m + (1 - beta1) * gradient
                    v = beta2 * v + (1 - beta2) * gradient * gradient
                    moments[key] = (m, v)
                    m_hat = m / (1 - beta1 ** step)
                    v_hat = v / (1 - beta2 ** step)
                    self._weights[key] = self._weights[key] - self.learning_rate * m_hat / (
                        np.sqrt(v_hat) + eps)
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        history = self._history.copy()
        predictions = np.empty(horizon)
        for step in range(horizon):
            _hidden, output = self._forward(history.reshape(1, -1))
            predictions[step] = float(output[0])
            history = np.roll(history, -1)
            history[-1] = predictions[step]
        return predictions * self._std + self._mean
