"""Exponential smoothing forecasters (simple, Holt, Holt-Winters).

The paper's EXP1 uses the Holt-Winters model and the Monash benchmark (EXP2)
pairs STL decomposition with exponential smoothing (STL-ETS).  All variants
here are additive; smoothing parameters are either user-provided or fitted by
minimising the in-sample one-step-ahead squared error with
``scipy.optimize.minimize`` (Nelder-Mead, bounded by clipping).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .._validation import as_float_array, check_positive_int
from ..exceptions import ModelError
from .base import Forecaster

__all__ = ["SimpleExponentialSmoothing", "HoltLinear", "HoltWinters"]


def _clip_unit(value: float) -> float:
    return float(min(max(value, 1e-4), 1.0 - 1e-4))


class SimpleExponentialSmoothing(Forecaster):
    """Level-only exponential smoothing (flat forecast)."""

    name = "SES"

    def __init__(self, alpha: float | None = None):
        super().__init__()
        self.alpha = alpha
        self.level_: float = 0.0

    def _sse(self, alpha: float, values: np.ndarray) -> float:
        level = values[0]
        sse = 0.0
        for value in values[1:]:
            sse += (value - level) ** 2
            level = alpha * value + (1 - alpha) * level
        return sse

    def fit(self, values) -> "SimpleExponentialSmoothing":
        values = as_float_array(values)
        if self.alpha is None:
            result = optimize.minimize_scalar(
                lambda a: self._sse(_clip_unit(a), values), bounds=(0.01, 0.99),
                method="bounded")
            self.alpha = _clip_unit(result.x)
        level = values[0]
        for value in values[1:]:
            level = self.alpha * value + (1 - self.alpha) * level
        self.level_ = float(level)
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        return np.full(horizon, self.level_)


class HoltLinear(Forecaster):
    """Holt's linear trend method (level + trend, optional damping)."""

    name = "Holt"

    def __init__(self, alpha: float | None = None, beta: float | None = None,
                 damped: bool = False, phi: float = 0.98):
        super().__init__()
        self.alpha = alpha
        self.beta = beta
        self.damped = damped
        self.phi = float(phi)
        self.level_: float = 0.0
        self.trend_: float = 0.0

    def _run(self, values: np.ndarray, alpha: float, beta: float
             ) -> tuple[float, float, float]:
        level = values[0]
        trend = values[1] - values[0] if values.size > 1 else 0.0
        phi = self.phi if self.damped else 1.0
        sse = 0.0
        for value in values[1:]:
            prediction = level + phi * trend
            sse += (value - prediction) ** 2
            new_level = alpha * value + (1 - alpha) * prediction
            trend = beta * (new_level - level) + (1 - beta) * phi * trend
            level = new_level
        return level, trend, sse

    def fit(self, values) -> "HoltLinear":
        values = as_float_array(values)
        if values.size < 3:
            raise ModelError("Holt's method needs at least 3 observations")
        if self.alpha is None or self.beta is None:
            def objective(params):
                alpha, beta = (_clip_unit(params[0]), _clip_unit(params[1]))
                return self._run(values, alpha, beta)[2]

            result = optimize.minimize(objective, x0=np.array([0.3, 0.1]),
                                       method="Nelder-Mead",
                                       options={"maxiter": 200, "xatol": 1e-3})
            self.alpha = _clip_unit(result.x[0])
            self.beta = _clip_unit(result.x[1])
        level, trend, _sse = self._run(values, self.alpha, self.beta)
        self.level_, self.trend_ = float(level), float(trend)
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        steps = np.arange(1, horizon + 1, dtype=np.float64)
        if self.damped:
            phi_sum = np.cumsum(self.phi ** steps)
            return self.level_ + phi_sum * self.trend_
        return self.level_ + steps * self.trend_


class HoltWinters(Forecaster):
    """Additive Holt-Winters (level + trend + seasonality).

    Parameters
    ----------
    period:
        Seasonal period in samples.
    alpha, beta, gamma:
        Smoothing parameters; any left as ``None`` are fitted by minimising
        the in-sample one-step-ahead SSE.
    """

    name = "Holt-Winters"

    def __init__(self, period: int, alpha: float | None = None,
                 beta: float | None = None, gamma: float | None = None):
        super().__init__()
        self.period = check_positive_int(period, "period")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.level_: float = 0.0
        self.trend_: float = 0.0
        self.seasonals_: np.ndarray = np.zeros(self.period)

    # ------------------------------------------------------------------ #
    def _initial_state(self, values: np.ndarray) -> tuple[float, float, np.ndarray]:
        period = self.period
        seasons = values.size // period
        first_cycle = values[:period]
        level = float(np.mean(first_cycle))
        if seasons >= 2:
            second_cycle = values[period:2 * period]
            trend = float((np.mean(second_cycle) - np.mean(first_cycle)) / period)
        else:
            trend = 0.0
        seasonals = first_cycle - level
        return level, trend, seasonals.astype(np.float64)

    def _run(self, values: np.ndarray, alpha: float, beta: float, gamma: float
             ) -> tuple[float, float, np.ndarray, float]:
        period = self.period
        level, trend, seasonals = self._initial_state(values)
        seasonals = seasonals.copy()
        sse = 0.0
        for t in range(values.size):
            season_index = t % period
            prediction = level + trend + seasonals[season_index]
            error = values[t] - prediction
            if t >= period:
                sse += error * error
            new_level = alpha * (values[t] - seasonals[season_index]) + (1 - alpha) * (
                level + trend)
            trend = beta * (new_level - level) + (1 - beta) * trend
            seasonals[season_index] = gamma * (values[t] - new_level) + (
                1 - gamma) * seasonals[season_index]
            level = new_level
        return level, trend, seasonals, sse

    def fit(self, values) -> "HoltWinters":
        values = as_float_array(values)
        if values.size < 2 * self.period:
            raise ModelError(
                f"Holt-Winters needs at least two seasonal cycles "
                f"({2 * self.period} points), got {values.size}")
        if self.alpha is None or self.beta is None or self.gamma is None:
            def objective(params):
                alpha, beta, gamma = (_clip_unit(p) for p in params)
                return self._run(values, alpha, beta, gamma)[3]

            result = optimize.minimize(objective, x0=np.array([0.3, 0.05, 0.1]),
                                       method="Nelder-Mead",
                                       options={"maxiter": 300, "xatol": 1e-3})
            self.alpha, self.beta, self.gamma = (_clip_unit(p) for p in result.x)
        level, trend, seasonals, _sse = self._run(values, self.alpha, self.beta, self.gamma)
        self.level_, self.trend_, self.seasonals_ = float(level), float(trend), seasonals
        self._last_index = values.size
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        steps = np.arange(1, horizon + 1, dtype=np.float64)
        season_indices = (self._last_index + np.arange(horizon)) % self.period
        return self.level_ + steps * self.trend_ + self.seasonals_[season_indices]
