"""Autoregressive forecasting models (AR, ARIMA-lite).

The STL-ARIMA and DHR-ARIMA pipelines of the paper need an autoregressive
error/trend model.  This module provides:

* :func:`yule_walker` — AR coefficient estimation from the autocovariance,
* :class:`AutoRegressive` — AR(p) with optional differencing and drift,
  fitted by ordinary least squares (more robust on short series than
  Yule-Walker) with an AIC-based automatic order selection.

The implementation intentionally covers the subset of ARIMA used by the
experiments: AR terms + differencing (``d`` in {0, 1}); a full MA component
is unnecessary for reproducing the relative compression-impact results.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import ModelError
from .base import Forecaster

__all__ = ["yule_walker", "AutoRegressive"]


def yule_walker(values, order: int) -> np.ndarray:
    """Estimate AR(p) coefficients by solving the Yule-Walker equations."""
    values = as_float_array(values)
    order = check_positive_int(order, "order")
    if order >= values.size:
        raise ModelError("AR order must be smaller than the series length")
    centred = values - np.mean(values)
    n = centred.size
    autocovariance = np.array([
        float(np.dot(centred[: n - lag], centred[lag:])) / n for lag in range(order + 1)
    ])
    if autocovariance[0] == 0.0:
        return np.zeros(order)
    r_matrix = np.array([[autocovariance[abs(i - j)] for j in range(order)]
                         for i in range(order)])
    rhs = autocovariance[1:order + 1]
    try:
        return np.linalg.solve(r_matrix, rhs)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(r_matrix, rhs, rcond=None)[0]


class AutoRegressive(Forecaster):
    """AR(p) forecaster with optional first differencing (ARIMA(p, d, 0)).

    Parameters
    ----------
    order:
        AR order ``p``; ``None`` selects the order in ``1..max_order`` by AIC.
    difference:
        Differencing order ``d`` (0 or 1).
    max_order:
        Upper bound for automatic order selection.
    """

    name = "ARIMA"

    def __init__(self, order: int | None = None, *, difference: int = 0,
                 max_order: int = 10):
        super().__init__()
        if difference not in (0, 1):
            raise ModelError("difference must be 0 or 1")
        self.order = order
        self.difference = difference
        self.max_order = check_positive_int(max_order, "max_order")
        self.coefficients_: np.ndarray = np.zeros(0)
        self.intercept_: float = 0.0
        self.history_: np.ndarray = np.zeros(0)
        self.last_value_: float = 0.0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _design_matrix(values: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
        rows = values.size - order
        design = np.empty((rows, order + 1))
        design[:, 0] = 1.0
        for lag in range(1, order + 1):
            design[:, lag] = values[order - lag: values.size - lag]
        target = values[order:]
        return design, target

    def _fit_order(self, values: np.ndarray, order: int
                   ) -> tuple[np.ndarray, float, float]:
        design, target = self._design_matrix(values, order)
        solution, residuals, _rank, _sv = np.linalg.lstsq(design, target, rcond=None)
        prediction = design @ solution
        sse = float(np.sum((target - prediction) ** 2))
        n = target.size
        sigma2 = max(sse / max(n, 1), 1e-12)
        aic = n * np.log(sigma2) + 2 * (order + 1)
        return solution, sse, float(aic)

    def fit(self, values) -> "AutoRegressive":
        values = as_float_array(values)
        if values.size < 8:
            raise ModelError("AutoRegressive needs at least 8 observations")
        self.last_value_ = float(values[-1])
        working = np.diff(values) if self.difference == 1 else values.copy()

        if self.order is None:
            best = None
            upper = min(self.max_order, working.size // 3)
            upper = max(upper, 1)
            for order in range(1, upper + 1):
                solution, _sse, aic = self._fit_order(working, order)
                if best is None or aic < best[0]:
                    best = (aic, order, solution)
            _aic, order, solution = best
            self.order = order
        else:
            solution, _sse, _aic = self._fit_order(working, int(self.order))
        self.intercept_ = float(solution[0])
        self.coefficients_ = np.asarray(solution[1:], dtype=np.float64)
        self.history_ = working[-len(self.coefficients_):].copy()
        self._fitted = True
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        self._require_fitted()
        horizon = check_positive_int(horizon, "horizon")
        order = self.coefficients_.size
        history = list(self.history_[-order:])
        predictions = np.empty(horizon)
        for step in range(horizon):
            lagged = np.asarray(history[::-1][:order])
            value = self.intercept_ + float(np.dot(self.coefficients_, lagged))
            predictions[step] = value
            history.append(value)
        if self.difference == 1:
            return self.last_value_ + np.cumsum(predictions)
        return predictions
