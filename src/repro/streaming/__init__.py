"""Streaming extensions: codec-generic chunked compression, online ACF tooling."""

from .chunked import (
    IDEMPOTENCY_SERIES,
    ChunkResult,
    MultiStreamCompressor,
    StreamingCameoCompressor,
    StreamingCompressor,
    StreamReport,
    concat_irregular,
)
from .online_acf import AcfDriftMonitor, DriftEvent, OnlineAcfEstimator

__all__ = [
    "StreamingCompressor",
    "StreamingCameoCompressor",
    "MultiStreamCompressor",
    "ChunkResult",
    "IDEMPOTENCY_SERIES",
    "StreamReport",
    "concat_irregular",
    "OnlineAcfEstimator",
    "AcfDriftMonitor",
    "DriftEvent",
]
