"""Streaming extensions: codec-generic chunked compression, online ACF tooling."""

from .chunked import (
    ChunkResult,
    StreamingCameoCompressor,
    StreamingCompressor,
    StreamReport,
    concat_irregular,
)
from .online_acf import AcfDriftMonitor, DriftEvent, OnlineAcfEstimator

__all__ = [
    "StreamingCompressor",
    "StreamingCameoCompressor",
    "ChunkResult",
    "StreamReport",
    "concat_irregular",
    "OnlineAcfEstimator",
    "AcfDriftMonitor",
    "DriftEvent",
]
