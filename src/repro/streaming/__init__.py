"""Streaming extensions: codec-generic chunked compression, online ACF tooling."""

from .chunked import (
    ChunkResult,
    MultiStreamCompressor,
    StreamingCameoCompressor,
    StreamingCompressor,
    StreamReport,
    concat_irregular,
)
from .online_acf import AcfDriftMonitor, DriftEvent, OnlineAcfEstimator

__all__ = [
    "StreamingCompressor",
    "StreamingCameoCompressor",
    "MultiStreamCompressor",
    "ChunkResult",
    "StreamReport",
    "concat_irregular",
    "OnlineAcfEstimator",
    "AcfDriftMonitor",
    "DriftEvent",
]
