"""Streaming extensions: chunked CAMEO compression and online ACF tooling."""

from .chunked import ChunkResult, StreamingCameoCompressor, StreamReport, concat_irregular
from .online_acf import AcfDriftMonitor, DriftEvent, OnlineAcfEstimator

__all__ = [
    "StreamingCameoCompressor",
    "ChunkResult",
    "StreamReport",
    "concat_irregular",
    "OnlineAcfEstimator",
    "AcfDriftMonitor",
    "DriftEvent",
]
