"""Online (streaming) ACF estimation and drift monitoring.

CAMEO compresses whole series (or sealed segments), but the IoT scenarios the
paper motivates produce unbounded streams.  Two pieces make the framework
usable online:

* :class:`OnlineAcfEstimator` — maintains the exact ACF of everything seen so
  far in O(L) memory and O(L) time per value, using the same lag-sum
  aggregates as Equation 7 of the paper (``sx``, ``sx_l``, ``sx2``, ``sx2_l``,
  ``sxx_l``), built incrementally from a ring buffer of the last ``L``
  values.
* :class:`AcfDriftMonitor` — compares the ACF of a sliding recent window
  against a reference ACF (e.g. the ACF the compressor is preserving) and
  reports when the deviation exceeds a threshold, signalling that the chosen
  error bound or lag count should be revisited.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..exceptions import InvalidParameterError, InvalidSeriesError
from ..metrics import get_metric
from ..stats.acf import acf, acf_from_sums

__all__ = ["OnlineAcfEstimator", "AcfDriftMonitor", "DriftEvent"]


class OnlineAcfEstimator:
    """Exact streaming ACF over all values observed so far.

    The estimator keeps, per lag ``l`` in ``1..max_lag``, the running sums of
    Equation 7; each new value updates every lag's cross-product using the
    ring buffer of the most recent ``max_lag`` values, so the per-value cost
    is O(L) and memory is O(L).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import OnlineAcfEstimator
    >>> x = np.sin(np.arange(500) * 2 * np.pi / 25)
    >>> estimator = OnlineAcfEstimator(max_lag=25)
    >>> estimator.update(x)
    >>> bool(np.allclose(estimator.acf(), __import__('repro').acf(x, 25), atol=1e-9))
    True
    """

    def __init__(self, max_lag: int):
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self._count = 0
        self._recent: deque[float] = deque(maxlen=self.max_lag)
        # Prefix sums over the whole stream.
        self._sum = 0.0
        self._sum_sq = 0.0
        # Per-lag sums: cross products and the sums/sums-of-squares of the
        # first n-l and last n-l elements (Equation 7's sx, sx_l, sx2, sx2_l).
        lags = self.max_lag
        self._cross = np.zeros(lags, dtype=np.float64)
        self._head_sum = np.zeros(lags, dtype=np.float64)
        self._head_sum_sq = np.zeros(lags, dtype=np.float64)
        self._tail_sum = np.zeros(lags, dtype=np.float64)
        self._tail_sum_sq = np.zeros(lags, dtype=np.float64)

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        """Number of values observed so far."""
        return self._count

    def push(self, value: float) -> None:
        """Observe a single value."""
        value = float(value)
        if not np.isfinite(value):
            raise InvalidSeriesError("stream values must be finite")
        recent = self._recent
        n_recent = len(recent)
        for offset in range(n_recent):
            lag = offset + 1
            partner = recent[n_recent - 1 - offset]
            self._cross[lag - 1] += partner * value
            # ``partner`` is x_{t-l} (a "head" element for this lag) and the
            # new value is x_t (a "tail" element for this lag).
            self._head_sum[lag - 1] += partner
            self._head_sum_sq[lag - 1] += partner * partner
            self._tail_sum[lag - 1] += value
            self._tail_sum_sq[lag - 1] += value * value
        recent.append(value)
        self._sum += value
        self._sum_sq += value * value
        self._count += 1

    def update(self, values) -> None:
        """Observe a batch of values (order preserved)."""
        values = as_float_array(values, name="values")
        for value in values:
            self.push(float(value))

    def acf(self, max_lag: int | None = None) -> np.ndarray:
        """ACF of the stream so far at lags ``1..max_lag`` (NaN-free).

        Lags not yet observable (``lag >= count``) and constant streams yield
        zero entries, mirroring :func:`repro.stats.acf`'s conventions.
        """
        limit = self.max_lag if max_lag is None else min(int(max_lag), self.max_lag)
        if limit < 1:
            raise InvalidParameterError("max_lag must be >= 1")
        out = np.zeros(limit, dtype=np.float64)
        n = self._count
        for lag in range(1, limit + 1):
            pairs = n - lag
            if pairs < 2:
                continue
            out[lag - 1] = acf_from_sums(
                pairs, self._head_sum[lag - 1], self._tail_sum[lag - 1],
                self._head_sum_sq[lag - 1], self._tail_sum_sq[lag - 1],
                self._cross[lag - 1])
        return out


@dataclass(frozen=True)
class DriftEvent:
    """Record of one detected autocorrelation drift."""

    position: int
    deviation: float
    threshold: float
    window_acf: np.ndarray
    reference_acf: np.ndarray


class AcfDriftMonitor:
    """Detects drift of the recent ACF away from a reference ACF.

    Parameters
    ----------
    max_lag:
        Number of lags of the compared ACFs.
    window:
        Length of the sliding window whose ACF is compared to the reference.
        Must exceed ``max_lag``.
    threshold:
        Deviation (per ``metric``) beyond which a :class:`DriftEvent` is
        emitted.
    reference:
        Reference ACF vector.  When omitted, the ACF of the first full window
        becomes the reference (self-calibration).
    metric:
        Deviation measure, default MAE (the paper's default ``D``).
    cooldown:
        Minimum number of values between two events, to avoid flooding.
    """

    def __init__(self, max_lag: int, window: int, threshold: float, *,
                 reference=None, metric="mae", cooldown: int | None = None):
        self.max_lag = check_positive_int(max_lag, "max_lag")
        self.window = check_positive_int(window, "window")
        if self.window <= self.max_lag:
            raise InvalidParameterError("window must be larger than max_lag")
        if threshold <= 0:
            raise InvalidParameterError("threshold must be positive")
        self.threshold = float(threshold)
        self.metric = get_metric(metric)
        self.cooldown = self.window if cooldown is None else check_positive_int(
            cooldown, "cooldown")
        self._reference = None if reference is None else np.asarray(
            reference, dtype=np.float64)
        if self._reference is not None and self._reference.size != self.max_lag:
            raise InvalidParameterError(
                f"reference ACF must have {self.max_lag} entries")
        self._buffer: deque[float] = deque(maxlen=self.window)
        self._position = 0
        self._last_event_position: int | None = None
        self.events: list[DriftEvent] = []

    # ------------------------------------------------------------------ #
    @property
    def reference(self) -> np.ndarray | None:
        """The reference ACF (set explicitly or self-calibrated)."""
        return self._reference

    def push(self, value: float) -> DriftEvent | None:
        """Observe one value; return a :class:`DriftEvent` if drift is detected."""
        value = float(value)
        if not np.isfinite(value):
            raise InvalidSeriesError("stream values must be finite")
        self._buffer.append(value)
        self._position += 1
        if len(self._buffer) < self.window:
            return None

        window_values = np.asarray(self._buffer, dtype=np.float64)
        window_acf = acf(window_values, self.max_lag)
        if self._reference is None:
            self._reference = window_acf
            return None
        deviation = float(self.metric(self._reference, window_acf))
        if deviation < self.threshold:
            return None
        if (self._last_event_position is not None
                and self._position - self._last_event_position < self.cooldown):
            return None
        event = DriftEvent(position=self._position, deviation=deviation,
                           threshold=self.threshold, window_acf=window_acf,
                           reference_acf=self._reference.copy())
        self._last_event_position = self._position
        self.events.append(event)
        return event

    def update(self, values) -> list[DriftEvent]:
        """Observe a batch of values; return all events they triggered."""
        values = as_float_array(values, name="values")
        events = []
        for value in values:
            event = self.push(float(value))
            if event is not None:
                events.append(event)
        return events
