"""Chunked (streaming) compression for unbounded streams.

The offline algorithms need a full series; for streams,
:class:`StreamingCompressor` buffers values into fixed-size chunks and
encodes each sealed chunk independently with **any registered codec**
(:mod:`repro.codecs`) — the same local-budget idea as the paper's
coarse-grained parallelization (Section 4.4), applied over time instead of
over threads.

:class:`StreamingCameoCompressor` is the CAMEO specialization (and the
historical entry point): each chunk's ACF deviation is bounded by
``epsilon``, so the autocorrelation structure within every chunk is
preserved; chunk boundaries are always retained points, so reconstructions
of adjacent chunks join exactly.

:func:`concat_irregular` stitches per-chunk point-retaining results back
into one :class:`repro.data.timeseries.IrregularSeries` over the whole
stream, which is convenient for persisting a long session as a single
object.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..codecs import CameoCodec, Codec, CompressedBlock, get_codec
from ..data.timeseries import BITS_PER_VALUE_RAW, IrregularSeries
from ..exceptions import InvalidParameterError, InvalidSeriesError
from ..sanitize import InputPolicy, sanitize
from .online_acf import OnlineAcfEstimator

__all__ = [
    "ChunkResult",
    "IDEMPOTENCY_SERIES",
    "StreamReport",
    "StreamingCompressor",
    "StreamingCameoCompressor",
    "MultiStreamCompressor",
    "concat_irregular",
]

#: Reserved spool series whose metadata journals idempotency keys.  It never
#: holds values (length stays 0, so :meth:`MultiStreamCompressor.replay_spool`
#: would skip it even without its explicit guard) and is not a stream.
IDEMPOTENCY_SERIES = "__idempotency__"


@dataclass(frozen=True)
class ChunkResult:
    """One sealed chunk's compression outcome."""

    index: int
    start: int
    block: CompressedBlock

    @property
    def length(self) -> int:
        """Number of raw values in the chunk."""
        return int(self.block.length)

    @property
    def kept_points(self) -> int:
        """Stored cost in 64-bit-value equivalents.

        Point-retaining codecs report their retained points, model codecs
        their stored scalars; for bit-level codecs the encoded bits are
        expressed in 64-bit values so the report's point accounting stays
        comparable across codecs.
        """
        metadata = self.block.metadata
        if "kept_points" in metadata:
            return int(metadata["kept_points"])
        if "stored_values" in metadata:
            return int(metadata["stored_values"])
        return int(math.ceil(self.block.bits / BITS_PER_VALUE_RAW))

    @property
    def achieved_deviation(self) -> float:
        """Statistic deviation reached inside the chunk (0 when exact)."""
        return float(self.block.metadata.get("achieved_deviation") or 0.0)

    @property
    def compressed(self) -> IrregularSeries:
        """The chunk's point-retaining representation.

        Available for codecs whose payload is an
        :class:`IrregularSeries` (CAMEO, the line simplifiers) and for
        verbatim blocks (which become identity representations); other
        codecs raise :class:`~repro.exceptions.InvalidParameterError`.
        """
        payload = self.block.payload
        if isinstance(payload, IrregularSeries):
            return payload
        if isinstance(payload, np.ndarray) and payload.size >= 2:
            return IrregularSeries(
                indices=np.arange(payload.size, dtype=np.int64),
                values=np.asarray(payload, dtype=np.float64).copy(),
                original_length=int(payload.size),
                name=f"{self.block.codec}-chunk-{self.index}",
                metadata=dict(self.block.metadata))
        raise InvalidParameterError(
            f"codec {self.block.codec!r} does not produce a point-retaining "
            "representation; decode the chunk through the stream's codec instead")


@dataclass
class StreamReport:
    """Aggregate statistics over everything the stream compressor sealed."""

    chunks: int = 0
    ingested_points: int = 0
    sealed_points: int = 0
    kept_points: int = 0
    encoded_bits: int = 0
    worst_chunk_deviation: float = 0.0
    chunk_deviations: list[float] = field(default_factory=list)
    # Input-policy accounting (all zero when no policy is configured).
    #: Values dropped at ingest by the NaN/inf policy.
    dropped_points: int = 0
    #: NaN runs whose positions were recorded (``on_nan="split"``).
    nan_runs: int = 0
    #: ``add()`` calls whose timestamps required reordering.
    reordered_adds: int = 0
    #: Timestamp gaps observed (``on_gap="ignore"``/``"split"``).
    gaps: int = 0

    @property
    def buffered_points(self) -> int:
        """Values received but not yet sealed into a chunk."""
        return self.ingested_points - self.sealed_points - self.dropped_points

    @property
    def compression_ratio(self) -> float:
        """Sealed raw points over retained 64-bit-value equivalents."""
        if self.kept_points == 0:
            return 1.0
        return self.sealed_points / float(self.kept_points)

    @property
    def bits_per_value(self) -> float:
        """Encoded bits per sealed raw value."""
        return self.encoded_bits / float(max(self.sealed_points, 1))


def _policy_segments(values, timestamps, policy: InputPolicy,
                     report: StreamReport) -> list[np.ndarray]:
    """Sanitize one ``add()`` batch; returns its segments in stream order.

    Updates the stream report's policy counters.  A batch with recorded
    segment boundaries (NaN runs under ``split``, timestamp gaps under
    ``split``) comes back as multiple segments — the caller seals its buffer
    between them so no sealed chunk ever bridges a gap.
    """
    result = sanitize(values, policy, timestamps=timestamps, name="values")
    record = result.report
    report.ingested_points += record.original_length
    report.dropped_points += record.dropped_nan + record.dropped_inf
    report.nan_runs += len(record.nan_runs)
    if record.sorted:
        report.reordered_adds += 1
    report.gaps += record.gaps
    if result.segment_starts:
        return np.split(result.values, result.segment_starts)
    return [result.values]


class StreamingCompressor:
    """Compress an unbounded stream chunk-by-chunk with any registered codec.

    Parameters
    ----------
    chunk_size:
        Values per sealed chunk.
    codec:
        A registered codec name (``codec_options`` are forwarded to
        :func:`repro.codecs.get_codec`) or a ready
        :class:`repro.codecs.Codec` instance.  Defaults to ``"cameo"``;
        for CAMEO-specific ergonomics (``max_lag``/``epsilon`` up front,
        global ACF tracking) prefer :class:`StreamingCameoCompressor`.
    codec_options:
        Keyword arguments for the registry factory when ``codec`` is a name.
    track_acf_lags:
        When set, an :class:`OnlineAcfEstimator` with that many lags follows
        the raw stream so :meth:`global_acf` can report the reference ACF of
        all data seen so far without retaining it.
    policy:
        Optional :class:`~repro.sanitize.InputPolicy` applied to every
        :meth:`add` batch.  Required for timestamp-aware ingestion; split
        boundaries (NaN runs, timestamp gaps) seal the buffer so no chunk
        bridges a gap.  ``None`` (default) keeps the historical
        raise-on-hostile behaviour and a bit-identical clean-input path.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import StreamingCompressor
    >>> stream = StreamingCompressor(chunk_size=256, codec="gorilla")
    >>> x = np.sin(np.arange(1000) * 2 * np.pi / 24)
    >>> chunks = stream.add(x) + stream.flush()
    >>> sum(c.length for c in chunks)
    1000
    >>> np.array_equal(stream.reconstruct(), x)
    True
    """

    def __init__(self, chunk_size: int, codec="cameo", *,
                 codec_options: dict | None = None,
                 track_acf_lags: int | None = None,
                 policy: InputPolicy | None = None):
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        if policy is not None and not isinstance(policy, InputPolicy):
            raise InvalidParameterError(
                f"policy must be an InputPolicy or None, got {type(policy).__name__}")
        self.policy = policy
        if isinstance(codec, Codec):
            if codec_options:
                raise InvalidParameterError(
                    "codec_options only apply when codec is given by name")
            self.codec = codec
        else:
            self.codec = get_codec(str(codec), **(codec_options or {}))
        self._buffer: list[float] = []
        self._results: list[ChunkResult] = []
        self._report = StreamReport()
        self._estimator = None
        if track_acf_lags is not None:
            self._estimator = OnlineAcfEstimator(
                check_positive_int(track_acf_lags, "track_acf_lags"))

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def add(self, values, timestamps=None) -> list[ChunkResult]:
        """Feed values into the stream; returns chunks sealed by this call.

        With an :class:`~repro.sanitize.InputPolicy` configured, hostile
        input is handled per the policy (and ``timestamps`` enable the
        ordering/gap policies); recorded split boundaries seal the buffer
        early so no sealed chunk bridges a NaN run or timestamp gap.
        """
        if np.isscalar(values):
            values = [float(values)]
        if self.policy is None:
            if timestamps is not None:
                raise InvalidParameterError(
                    "timestamps require an input policy (pass policy=... "
                    "to enable timestamp-aware ingestion)")
            segments = [as_float_array(values, name="values")]
            self._report.ingested_points += segments[0].size
        else:
            segments = _policy_segments(values, timestamps, self.policy,
                                        self._report)

        sealed: list[ChunkResult] = []
        for position, segment in enumerate(segments):
            if position:
                # Segment boundary (NaN run / timestamp gap): seal whatever
                # is buffered so no chunk bridges the gap.
                sealed.extend(self.flush())
            if segment.size == 0:
                continue
            if self._estimator is not None:
                self._estimator.update(segment)
            self._buffer.extend(segment.tolist())
            while len(self._buffer) >= self.chunk_size:
                chunk_values = np.asarray(self._buffer[: self.chunk_size],
                                          dtype=np.float64)
                del self._buffer[: self.chunk_size]
                sealed.append(self._seal(chunk_values))
        return sealed

    def flush(self) -> list[ChunkResult]:
        """Seal whatever remains in the buffer (possibly a short chunk).

        Returns an empty list when nothing is buffered.
        """
        if not self._buffer:
            return []
        chunk_values = np.asarray(self._buffer, dtype=np.float64)
        self._buffer.clear()
        return [self._seal(chunk_values)]

    def finalize(self) -> list[ChunkResult]:
        """Alias of :meth:`flush` (the historical streaming name)."""
        return self.flush()

    def _seal(self, values: np.ndarray) -> ChunkResult:
        start = self._report.sealed_points
        block = self.codec.encode(values)
        result = ChunkResult(index=len(self._results), start=start, block=block)
        self._results.append(result)
        report = self._report
        report.chunks += 1
        report.sealed_points += values.size
        report.kept_points += result.kept_points
        report.encoded_bits += block.bits
        deviation = result.achieved_deviation
        report.chunk_deviations.append(deviation)
        report.worst_chunk_deviation = max(report.worst_chunk_deviation, deviation)
        return result

    # ------------------------------------------------------------------ #
    # inspection and reconstruction
    # ------------------------------------------------------------------ #
    @property
    def results(self) -> list[ChunkResult]:
        """All sealed chunks, in stream order."""
        return list(self._results)

    def report(self) -> StreamReport:
        """Aggregate ingest/compression statistics so far."""
        return self._report

    def global_acf(self) -> np.ndarray:
        """Exact ACF of the raw stream observed so far (needs tracking enabled)."""
        if self._estimator is None:
            raise InvalidParameterError(
                "global ACF tracking was not enabled (set track_acf_lags)")
        return self._estimator.acf()

    def decode_chunk(self, result: ChunkResult) -> np.ndarray:
        """Reconstruct one sealed chunk through the stream's codec."""
        return self.codec.decode(result.block)

    def reconstruct(self) -> np.ndarray:
        """Reconstruction of every *sealed* value, in stream order.

        Buffered (not yet sealed) values are not included; call
        :meth:`flush` first to cover the whole stream.
        """
        if not self._results:
            return np.empty(0, dtype=np.float64)
        return np.concatenate([self.decode_chunk(result) for result in self._results])

    def to_irregular(self, name: str = "stream") -> IrregularSeries:
        """Stitch every sealed chunk into one irregular series.

        Only meaningful for point-retaining codecs (see
        :attr:`ChunkResult.compressed`).
        """
        return concat_irregular([result.compressed for result in self._results],
                                name=name)


class StreamingCameoCompressor(StreamingCompressor):
    """CAMEO streaming: per-chunk ACF/PACF bound over an unbounded stream.

    Parameters
    ----------
    chunk_size:
        Values per sealed chunk.  Must comfortably exceed ``max_lag`` (at
        least twice), otherwise the per-chunk ACF is meaningless.
    max_lag, epsilon, **cameo_options:
        Forwarded to :class:`repro.core.CameoCompressor` for every chunk.
    track_global_acf:
        When ``True`` (default) the raw stream's ACF over ``max_lag`` lags
        is tracked online (see :meth:`StreamingCompressor.global_acf`).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import StreamingCameoCompressor
    >>> stream = StreamingCameoCompressor(chunk_size=256, max_lag=24, epsilon=0.05)
    >>> x = np.sin(np.arange(1000) * 2 * np.pi / 24)
    >>> chunks = stream.add(x) + stream.finalize()
    >>> sum(c.length for c in chunks)
    1000
    """

    def __init__(self, chunk_size: int, max_lag: int, epsilon: float | None = 0.01, *,
                 track_global_acf: bool = True,
                 policy: InputPolicy | None = None, **cameo_options):
        chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.max_lag = check_positive_int(max_lag, "max_lag")
        if chunk_size < 2 * self.max_lag:
            raise InvalidParameterError(
                "chunk_size should be at least twice max_lag "
                f"(got chunk_size={chunk_size}, max_lag={self.max_lag})")
        self.epsilon = epsilon
        super().__init__(
            chunk_size,
            codec=CameoCodec(self.max_lag, epsilon, **cameo_options),
            track_acf_lags=self.max_lag if track_global_acf else None,
            policy=policy)

    def flush(self) -> list[ChunkResult]:
        if len(self._buffer) == 1:
            raise InvalidSeriesError(
                "cannot seal a final chunk with fewer than two values; "
                "feed at least two values before finalizing")
        return super().flush()


class MultiStreamCompressor:
    """Many concurrent streams, compressed through the batch engine.

    An ingest tier rarely serves one stream: a gateway handles hundreds of
    sensors at once, and sealing each stream's chunks independently wastes
    both parallel hardware and the engine's cross-series fast paths.  This
    class keeps one buffer per stream and encodes *all* sealed chunks —
    across every stream — in batched :class:`repro.engine.BatchEngine`
    passes: same-length chunks stack through the XOR batch encoder, short
    CAMEO chunks run in lock step, and the thread/process backends spread
    the work over cores.

    Chunks are sealed exactly like :class:`StreamingCompressor` seals them
    (same values, same codec), so every chunk's block is identical to the
    single-stream result; only the execution is batched.

    Parameters
    ----------
    chunk_size:
        Values per sealed chunk (shared by every stream).
    codec, codec_options:
        Registered codec for every sealed chunk.
    backend, workers, fastpath, timeout, retries, on_degrade:
        Engine execution and fault-handling knobs (see
        :class:`repro.engine.BatchEngine`).
    policy:
        Optional :class:`~repro.sanitize.InputPolicy` applied per
        :meth:`add` batch, exactly as in :class:`StreamingCompressor`.
    spool_to:
        Optional directory for a crash-safe ingest spool: every
        :meth:`add` batch is appended to a
        :class:`repro.storage.durable.DurableStore` series (raw codec,
        one series per stream) *before* it is buffered, so an ingest-tier
        crash loses nothing — a fresh compressor pointed at the same
        directory calls :meth:`replay_spool` to re-ingest the undrained
        tail (pending chunks and buffer, not chunks already emitted by
        earlier drains).  Each :meth:`drain` advances a durable per-stream
        drained watermark and resets fully-drained spool series, and
        input-policy split boundaries are spooled too, so replayed
        chunking matches the pre-crash run.  ``spool_fsync`` sets the
        spool WAL's fsync policy (default ``"always"``; see
        :data:`repro.storage.wal.FSYNC_POLICIES`).  The spool store is
        exclusively locked while the compressor holds it.
    idempotency_cap:
        Maximum retained idempotency-journal entries (see
        :meth:`add_idempotent`); the oldest *applied* entries are evicted
        beyond it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import MultiStreamCompressor
    >>> multi = MultiStreamCompressor(chunk_size=128, codec="gorilla")
    >>> x = np.round(np.sin(np.arange(300) / 7.0), 3)
    >>> for sensor in ("a", "b"):
    ...     _ = multi.add(sensor, x)
    >>> sealed = multi.flush()
    >>> sorted(multi.streams), multi.report("a").chunks
    (['a', 'b'], 3)
    >>> np.array_equal(multi.reconstruct("b"), x)
    True
    """

    def __init__(self, chunk_size: int, codec: str = "cameo", *,
                 codec_options: dict | None = None, backend: str = "serial",
                 workers: int | None = None, fastpath: bool = True,
                 timeout: float | None = None, retries: int = 1,
                 on_degrade: str = "degrade",
                 policy: InputPolicy | None = None,
                 spool_to=None, spool_fsync: str = "always",
                 idempotency_cap: int = 1024):
        from ..engine import BatchEngine

        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        if policy is not None and not isinstance(policy, InputPolicy):
            raise InvalidParameterError(
                f"policy must be an InputPolicy or None, got {type(policy).__name__}")
        self.policy = policy
        self.engine = BatchEngine(codec, codec_options=codec_options,
                                  backend=backend, workers=workers,
                                  fastpath=fastpath, timeout=timeout,
                                  retries=retries, on_degrade=on_degrade)
        self.codec = get_codec(self.engine.codec, **(codec_options or {}))
        self._buffers: dict[str, list[float]] = {}
        self._pending: list[tuple[str, np.ndarray]] = []
        self._results: dict[str, list[ChunkResult]] = {}
        self._reports: dict[str, StreamReport] = {}
        self.errors: list = []
        self.spool = None
        # Spool position of a stream's value = its report count plus this
        # offset (non-zero after a replay or a spool compaction).
        self._spool_offset: dict[str, int] = {}
        # Idempotency journal: key -> {stream, start, count, applied, seq}.
        self._idem_keys: dict[str, dict] = {}
        self._idem_seq = 0
        self._idem_dirty = False
        self._idem_cap = check_positive_int(idempotency_cap, "idempotency_cap")
        if spool_to is not None:
            from ..storage.durable import DurableStore

            self.spool = DurableStore.open(spool_to, create=True,
                                           fsync_policy=spool_fsync)
            self._load_idempotency()

    # ------------------------------------------------------------------ #
    @property
    def streams(self) -> list[str]:
        """Every stream seen so far (ingest order)."""
        return list(self._buffers)

    def _stream_state(self, stream: str) -> tuple[list, list, StreamReport]:
        stream = str(stream)
        if stream not in self._buffers:
            self._buffers[stream] = []
            self._results[stream] = []
            self._reports[stream] = StreamReport()
        return self._buffers[stream], self._results[stream], self._reports[stream]

    def add(self, stream: str, values, timestamps=None, *,
            _spool: bool = True) -> int:
        """Feed values into one stream; returns chunks sealed by this call.

        Sealed chunks are queued; call :meth:`drain` (or :meth:`flush`) to
        encode everything queued across all streams in one engine batch.
        With an input policy, split boundaries seal the stream's buffer
        early (possibly as a short chunk) so no chunk bridges a gap.
        With a spool configured, the (sanitized) values are durably
        appended to it before they are buffered.
        """
        buffer, _results, report = self._stream_state(str(stream))
        if np.isscalar(values):
            values = [float(values)]
        if self.policy is None:
            if timestamps is not None:
                raise InvalidParameterError(
                    "timestamps require an input policy (pass policy=... "
                    "to enable timestamp-aware ingestion)")
            segments = [as_float_array(values, name="values")]
            report.ingested_points += segments[0].size
        else:
            segments = _policy_segments(values, timestamps, self.policy,
                                        report)
        if self.spool is not None and _spool:
            name = str(stream)
            if name == IDEMPOTENCY_SERIES:
                raise InvalidParameterError(
                    f"{IDEMPOTENCY_SERIES!r} is reserved for the idempotency "
                    "journal and cannot be used as a stream name")
            if name not in self.spool:
                self.spool.create_series(
                    name, codec="raw", segment_size=self.chunk_size,
                    metadata={"drained": 0, "splits": []})
            if len(segments) > 1:
                # Persist the policy's split boundaries *before* the values:
                # replay must seal the buffer at the same positions, and a
                # boundary pointing past the spooled data is harmless while
                # a missing one would let a replayed chunk bridge a gap.
                splits = [int(s) for s in
                          self.spool.metadata(name).get("splits", [])]
                position = int(self.spool.length(name))
                for segment in segments[:-1]:
                    position += int(segment.size)
                    if position and (not splits or position > splits[-1]):
                        splits.append(position)
                self.spool.update_metadata({name: {"splits": splits}})
            for segment in segments:
                if segment.size:
                    self.spool.append(name, segment)
        sealed = 0
        for position, segment in enumerate(segments):
            if position and buffer:
                # Segment boundary: seal the partial buffer as a short chunk.
                chunk_values = np.asarray(buffer, dtype=np.float64)
                buffer.clear()
                self._pending.append((str(stream), chunk_values))
                sealed += 1
            buffer.extend(segment.tolist())
            while len(buffer) >= self.chunk_size:
                chunk_values = np.asarray(buffer[: self.chunk_size],
                                          dtype=np.float64)
                del buffer[: self.chunk_size]
                self._pending.append((str(stream), chunk_values))
                sealed += 1
        return sealed

    def drain(self) -> list[tuple[str, ChunkResult]]:
        """Encode every queued sealed chunk in one batched engine pass.

        Returns ``(stream, chunk_result)`` pairs in seal order.  A chunk
        that fails to encode is recorded in :attr:`errors` (with its stream
        in the outcome name) and skipped; the rest of the batch completes.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        names = [stream for stream, _values in pending]
        outcome_batch = self.engine.compress(
            [values for _stream, values in pending], names=names)
        sealed: list[tuple[str, ChunkResult]] = []
        for (stream, values), outcome in zip(pending, outcome_batch):
            _buffer, results, report = self._stream_state(stream)
            if not outcome.ok:
                # The chunk's values were consumed from the buffer either
                # way: advance the sealed count so later chunks' stream
                # offsets (and buffered_points) stay truthful.
                report.sealed_points += values.size
                self.errors.append(outcome)
                continue
            result = ChunkResult(index=len(results),
                                 start=report.sealed_points,
                                 block=outcome.block)
            results.append(result)
            report.chunks += 1
            report.sealed_points += values.size
            report.kept_points += result.kept_points
            report.encoded_bits += outcome.block.bits
            deviation = result.achieved_deviation
            report.chunk_deviations.append(deviation)
            report.worst_chunk_deviation = max(report.worst_chunk_deviation,
                                               deviation)
            sealed.append((stream, result))
        if self.spool is not None:
            self._mark_drained({stream for stream, _values in pending})
        return sealed

    def flush(self) -> list[tuple[str, ChunkResult]]:
        """Seal every stream's remaining buffer and drain the whole queue."""
        for stream, buffer in self._buffers.items():
            if buffer:
                chunk_values = np.asarray(buffer, dtype=np.float64)
                buffer.clear()
                self._pending.append((stream, chunk_values))
        return self.drain()

    # ------------------------------------------------------------------ #
    def results(self, stream: str) -> list[ChunkResult]:
        """Sealed chunks of one stream, in stream order."""
        return list(self._results.get(str(stream), []))

    def report(self, stream: str) -> StreamReport:
        """Per-stream ingest/compression statistics."""
        if str(stream) not in self._reports:
            raise InvalidParameterError(f"unknown stream {stream!r}")
        return self._reports[str(stream)]

    def reconstruct(self, stream: str) -> np.ndarray:
        """Reconstruction of one stream's successfully encoded chunks.

        Chunks recorded in :attr:`errors` are omitted; check each
        :class:`ChunkResult`'s ``start`` to detect the gap they leave.
        """
        results = self._results.get(str(stream), [])
        if not results:
            return np.empty(0, dtype=np.float64)
        return np.concatenate([self.codec.decode(result.block)
                               for result in results])

    # ------------------------------------------------------------------ #
    # idempotent ingest
    # ------------------------------------------------------------------ #
    def add_idempotent(self, stream: str, values,
                       key: str) -> tuple[int, bool]:
        """Feed values exactly once per ``key``; returns ``(sealed, dup)``.

        The exactly-once protocol journals an *intent* record — stream,
        spool start position, value count — into the reserved
        :data:`IDEMPOTENCY_SERIES` metadata via a durable manifest swap
        *before* the values are appended to the spool WAL.  A key whose
        values provably landed (``spool length >= start + count``, or the
        entry is already flagged applied) is acknowledged as a duplicate
        without touching the stream; a key whose intent is dangling (the
        append never became durable, so the original call was never
        acknowledged) is rewritten and applied fresh.  Crash-window
        reconciliation happens at construction (see
        :meth:`_load_idempotency`), so a crashed-then-retried ingest is
        applied exactly once after :meth:`replay_spool`.

        Requires a spool and ``policy=None`` — an input policy may split
        one batch into several spool appends, which would make the
        single-append landed check ambiguous.
        """
        if self.spool is None:
            raise InvalidParameterError(
                "idempotent ingest requires a spool (pass spool_to=... at "
                "construction)")
        if self.policy is not None:
            raise InvalidParameterError(
                "idempotent ingest requires policy=None: a policy may split "
                "one batch into several spool appends, which breaks the "
                "landed check")
        key = str(key)
        if not key:
            raise InvalidParameterError("idempotency key must be non-empty")
        name = str(stream)
        if name == IDEMPOTENCY_SERIES:
            raise InvalidParameterError(
                f"{IDEMPOTENCY_SERIES!r} is reserved for the idempotency "
                "journal and cannot be used as a stream name")
        entry = self._idem_keys.get(key)
        if entry is not None:
            if entry.get("applied"):
                return 0, True
            landed_stream = str(entry.get("stream", ""))
            if (landed_stream in self.spool
                    and self.spool.length(landed_stream)
                    >= int(entry["start"]) + int(entry["count"])):
                entry["applied"] = True
                self._idem_dirty = True
                return 0, True
            # Dangling intent: the append never landed, so the original
            # call was never acknowledged — rewrite and apply fresh.
        if np.isscalar(values):
            values = [float(values)]
        segment = as_float_array(values, name="values")
        if not segment.size:
            raise InvalidParameterError(
                "idempotent ingest requires at least one value")
        if name not in self.spool:
            self.spool.create_series(
                name, codec="raw", segment_size=self.chunk_size,
                metadata={"drained": 0, "splits": []})
        self._idem_seq += 1
        self._idem_keys[key] = {
            "stream": name, "start": int(self.spool.length(name)),
            "count": int(segment.size), "applied": False,
            "seq": self._idem_seq}
        self._evict_idempotency()
        # Intent must be durable before the append it describes.
        self._persist_idempotency()
        sealed = self.add(name, segment)
        self._idem_keys[key]["applied"] = True
        self._idem_dirty = True
        return sealed, False

    def _load_idempotency(self) -> None:
        """Load the journal and reconcile the crash window at open.

        A pending entry whose values landed in the spool covers an append
        that was acknowledged durable but whose applied flag never
        persisted — flip it, the retry must dedupe.  A pending entry whose
        values did not land covers an append that never happened, so the
        original caller was never acknowledged — drop it, the retry
        applies fresh.
        """
        if IDEMPOTENCY_SERIES not in self.spool:
            return
        meta = self.spool.metadata(IDEMPOTENCY_SERIES)
        keys = {str(key): dict(entry)
                for key, entry in (meta.get("keys") or {}).items()}
        self._idem_seq = int(meta.get("next_seq") or 0)
        changed = False
        for key, entry in list(keys.items()):
            if entry.get("applied"):
                continue
            stream = str(entry.get("stream", ""))
            landed = (stream in self.spool
                      and self.spool.length(stream)
                      >= int(entry["start"]) + int(entry["count"]))
            if landed:
                entry["applied"] = True
            else:
                del keys[key]
            changed = True
        self._idem_keys = keys
        if changed:
            self._persist_idempotency()

    def _persist_idempotency(self) -> None:
        """Durably swap the journal into the reserved series' metadata."""
        if IDEMPOTENCY_SERIES not in self.spool:
            self.spool.create_series(
                IDEMPOTENCY_SERIES, codec="raw",
                segment_size=self.chunk_size, metadata={})
        self.spool.update_metadata({IDEMPOTENCY_SERIES: {
            "keys": self._idem_keys, "next_seq": self._idem_seq}})
        self._idem_dirty = False

    def _evict_idempotency(self) -> None:
        """Drop the oldest *applied* entries once the journal exceeds cap."""
        excess = len(self._idem_keys) - self._idem_cap
        if excess <= 0:
            return
        applied = sorted(
            (int(entry.get("seq", 0)), key)
            for key, entry in self._idem_keys.items() if entry.get("applied"))
        for _seq, key in applied[:excess]:
            del self._idem_keys[key]

    # ------------------------------------------------------------------ #
    # durable spool
    # ------------------------------------------------------------------ #
    def _mark_drained(self, streams) -> None:
        """Persist the drained watermark for ``streams``; compact spool
        series whose every spooled value has now been emitted.

        The watermark is written when the drain that consumed the chunks
        completes, so a crash between a drain and its caller persisting
        the results replays exactly that one batch again (at-least-once);
        chunks from earlier drains are never re-ingested.
        """
        # Applied flips recorded since the last persist must be durable
        # before any compaction below: dropping a series resets the spool
        # positions that a pending entry's landed check relies on.
        if self._idem_dirty:
            self._persist_idempotency()
        updates = {}
        for stream in sorted(streams):
            if stream not in self.spool:
                continue
            report = self._reports[stream]
            drained = report.sealed_points + self._spool_offset.get(stream, 0)
            spooled = self.spool.length(stream)
            if spooled and drained >= spooled:
                # Everything spooled was emitted (the buffer is necessarily
                # empty too): reset the series so the spool directory does
                # not grow without bound across the compressor's lifetime.
                # Journal entries for this stream are all landed by
                # construction (their appends preceded the drain); flag
                # them applied while their positions are still valid.
                for entry in self._idem_keys.values():
                    if (str(entry.get("stream", "")) == stream
                            and not entry.get("applied")):
                        entry["applied"] = True
                        self._idem_dirty = True
                if self._idem_dirty:
                    self._persist_idempotency()
                self.spool.drop_series(stream)
                self.spool.create_series(
                    stream, codec="raw", segment_size=self.chunk_size,
                    metadata={"drained": 0, "splits": []})
                self._spool_offset[stream] = -report.sealed_points
            elif drained > int(self.spool.metadata(stream).get("drained", 0)):
                updates[stream] = {"drained": int(drained)}
        if updates:
            self.spool.update_metadata(updates)

    def replay_spool(self) -> int:
        """Re-ingest the spool's undrained values; returns the count.

        Meant for a *fresh* compressor after an ingest-tier crash: the
        spool directory survives the crash (its WAL acknowledged every
        :meth:`add`), and each series carries a durable *drained
        watermark* plus the input policy's recorded split boundaries.
        Replay re-ingests only values past the watermark — the pending
        chunks and buffer tail, not chunks already emitted by earlier
        drains — and seals the buffer at every recorded split so
        post-crash chunking matches the pre-crash run.  A crash between a
        drain and its caller persisting the results duplicates exactly
        that one batch (see :meth:`_mark_drained`).  Values are re-added
        without being spooled again and without re-applying the input
        policy (the spool holds already-sanitized values).
        """
        if self.spool is None:
            raise InvalidParameterError(
                "no spool configured (pass spool_to=... at construction)")
        if any(self._buffers.values()) or self._pending:
            raise InvalidParameterError(
                "replay_spool must run before any values are ingested")
        policy, self.policy = self.policy, None
        replayed = 0
        try:
            for name in self.spool.list_series():
                if name == IDEMPOTENCY_SERIES:
                    continue
                meta = self.spool.metadata(name)
                total = self.spool.length(name)
                watermark = min(int(meta.get("drained", 0)), total)
                if watermark:
                    self._stream_state(name)
                    self._spool_offset[name] = watermark
                values = self.spool.read(name, watermark)
                if not values.size:
                    continue
                splits = sorted({int(s) - watermark
                                 for s in meta.get("splits", [])
                                 if watermark < int(s) <= total})
                buffer, _results, _report = self._stream_state(name)
                pieces = np.split(values, splits) if splits else [values]
                for position, piece in enumerate(pieces):
                    if position and buffer:
                        # Recorded split boundary: seal the partial buffer
                        # exactly as add() did before the crash.
                        chunk_values = np.asarray(buffer, dtype=np.float64)
                        buffer.clear()
                        self._pending.append((name, chunk_values))
                    if piece.size:
                        self.add(name, piece, _spool=False)
                replayed += int(values.size)
        finally:
            self.policy = policy
        return replayed

    def close(self) -> None:
        """Persist pending journal flips and close the spool, if any."""
        if self.spool is not None:
            if self._idem_dirty:
                self._persist_idempotency()
            self.spool.close()

    def __enter__(self) -> "MultiStreamCompressor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def concat_irregular(chunks, name: str = "stream") -> IrregularSeries:
    """Concatenate per-chunk irregular series into one global representation.

    The chunks must describe consecutive, non-overlapping ranges in stream
    order (exactly what the streaming compressors produce for point-retaining
    codecs).  Chunk boundary points are always retained, so the concatenation
    reconstructs each chunk independently of its neighbours.
    """
    chunks = list(chunks)
    if not chunks:
        raise InvalidParameterError("at least one chunk is required")
    indices: list[np.ndarray] = []
    values: list[np.ndarray] = []
    offset = 0
    for chunk in chunks:
        if not isinstance(chunk, IrregularSeries):
            raise InvalidParameterError("chunks must be IrregularSeries instances")
        indices.append(chunk.indices + offset)
        values.append(chunk.values)
        offset += chunk.original_length
    return IrregularSeries(
        indices=np.concatenate(indices), values=np.concatenate(values),
        original_length=offset, name=name,
        metadata={"compressor": "CAMEO-streaming", "chunks": len(chunks)})
