"""Chunked (streaming) CAMEO compression for unbounded streams.

The offline algorithm needs the full series to rank every point's impact.
For streams, :class:`StreamingCameoCompressor` buffers values into fixed-size
chunks and compresses each sealed chunk independently with the configured
bound — the same local-budget idea as the paper's coarse-grained
parallelization (Section 4.4), applied over time instead of over threads.
Each chunk's ACF deviation is bounded by ``epsilon``, so the autocorrelation
structure within every chunk is preserved; chunk boundaries are always
retained points, so reconstructions of adjacent chunks join exactly.

:func:`concat_irregular` stitches per-chunk results back into one
:class:`repro.data.timeseries.IrregularSeries` over the whole stream, which
is convenient for persisting a long session as a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .._validation import as_float_array, check_positive_int
from ..core import CameoCompressor
from ..data.timeseries import IrregularSeries
from ..exceptions import InvalidParameterError, InvalidSeriesError
from .online_acf import OnlineAcfEstimator

__all__ = ["ChunkResult", "StreamReport", "StreamingCameoCompressor", "concat_irregular"]


@dataclass(frozen=True)
class ChunkResult:
    """One sealed chunk's compression outcome."""

    index: int
    start: int
    compressed: IrregularSeries

    @property
    def length(self) -> int:
        """Number of raw values in the chunk."""
        return self.compressed.original_length

    @property
    def kept_points(self) -> int:
        """Number of retained points."""
        return len(self.compressed)

    @property
    def achieved_deviation(self) -> float:
        """Statistic deviation reached inside the chunk."""
        return float(self.compressed.metadata.get("achieved_deviation", 0.0))


@dataclass
class StreamReport:
    """Aggregate statistics over everything the stream compressor sealed."""

    chunks: int = 0
    ingested_points: int = 0
    sealed_points: int = 0
    kept_points: int = 0
    worst_chunk_deviation: float = 0.0
    chunk_deviations: list[float] = field(default_factory=list)

    @property
    def buffered_points(self) -> int:
        """Values received but not yet sealed into a chunk."""
        return self.ingested_points - self.sealed_points

    @property
    def compression_ratio(self) -> float:
        """Sealed raw points over retained points."""
        if self.kept_points == 0:
            return 1.0
        return self.sealed_points / float(self.kept_points)


class StreamingCameoCompressor:
    """Compress an unbounded stream chunk-by-chunk under a per-chunk bound.

    Parameters
    ----------
    chunk_size:
        Values per sealed chunk.  Must comfortably exceed ``max_lag`` (at
        least twice), otherwise the per-chunk ACF is meaningless.
    max_lag, epsilon, **cameo_options:
        Forwarded to :class:`repro.core.CameoCompressor` for every chunk.
    track_global_acf:
        When ``True`` (default) an :class:`OnlineAcfEstimator` follows the raw
        stream so :meth:`global_acf` can report the reference ACF of all data
        seen so far without retaining it.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import StreamingCameoCompressor
    >>> stream = StreamingCameoCompressor(chunk_size=256, max_lag=24, epsilon=0.05)
    >>> x = np.sin(np.arange(1000) * 2 * np.pi / 24)
    >>> chunks = stream.add(x) + stream.finalize()
    >>> sum(c.length for c in chunks)
    1000
    """

    def __init__(self, chunk_size: int, max_lag: int, epsilon: float | None = 0.01, *,
                 track_global_acf: bool = True, **cameo_options):
        self.chunk_size = check_positive_int(chunk_size, "chunk_size")
        self.max_lag = check_positive_int(max_lag, "max_lag")
        if self.chunk_size < 2 * self.max_lag:
            raise InvalidParameterError(
                "chunk_size should be at least twice max_lag "
                f"(got chunk_size={self.chunk_size}, max_lag={self.max_lag})")
        self.epsilon = epsilon
        self._compressor = CameoCompressor(self.max_lag, epsilon, **cameo_options)
        self._buffer: list[float] = []
        self._results: list[ChunkResult] = []
        self._report = StreamReport()
        self._estimator = OnlineAcfEstimator(self.max_lag) if track_global_acf else None

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def add(self, values) -> list[ChunkResult]:
        """Feed values into the stream; returns chunks sealed by this call."""
        if np.isscalar(values):
            values = [float(values)]
        values = as_float_array(values, name="values")
        if self._estimator is not None:
            self._estimator.update(values)
        self._buffer.extend(values.tolist())
        self._report.ingested_points += values.size

        sealed: list[ChunkResult] = []
        while len(self._buffer) >= self.chunk_size:
            chunk_values = np.asarray(self._buffer[: self.chunk_size], dtype=np.float64)
            del self._buffer[: self.chunk_size]
            sealed.append(self._seal(chunk_values))
        return sealed

    def finalize(self) -> list[ChunkResult]:
        """Seal whatever remains in the buffer (possibly a short chunk)."""
        if not self._buffer:
            return []
        chunk_values = np.asarray(self._buffer, dtype=np.float64)
        self._buffer.clear()
        if chunk_values.size < 2:
            raise InvalidSeriesError(
                "cannot seal a final chunk with fewer than two values; "
                "feed at least two values before finalizing")
        return [self._seal(chunk_values)]

    def _seal(self, values: np.ndarray) -> ChunkResult:
        start = self._report.sealed_points
        compressed = self._compressor.compress(values)
        result = ChunkResult(index=len(self._results), start=start, compressed=compressed)
        self._results.append(result)
        report = self._report
        report.chunks += 1
        report.sealed_points += values.size
        report.kept_points += len(compressed)
        deviation = result.achieved_deviation
        report.chunk_deviations.append(deviation)
        report.worst_chunk_deviation = max(report.worst_chunk_deviation, deviation)
        return result

    # ------------------------------------------------------------------ #
    # inspection
    # ------------------------------------------------------------------ #
    @property
    def results(self) -> list[ChunkResult]:
        """All sealed chunks, in stream order."""
        return list(self._results)

    def report(self) -> StreamReport:
        """Aggregate ingest/compression statistics so far."""
        return self._report

    def global_acf(self) -> np.ndarray:
        """Exact ACF of the raw stream observed so far (needs tracking enabled)."""
        if self._estimator is None:
            raise InvalidParameterError(
                "global ACF tracking was disabled (track_global_acf=False)")
        return self._estimator.acf()

    def to_irregular(self, name: str = "stream") -> IrregularSeries:
        """Stitch every sealed chunk into one irregular series."""
        return concat_irregular([result.compressed for result in self._results], name=name)


def concat_irregular(chunks, name: str = "stream") -> IrregularSeries:
    """Concatenate per-chunk irregular series into one global representation.

    The chunks must describe consecutive, non-overlapping ranges in stream
    order (exactly what :class:`StreamingCameoCompressor` produces).  Chunk
    boundary points are always retained by the compressor, so the
    concatenation reconstructs each chunk independently of its neighbours.
    """
    chunks = list(chunks)
    if not chunks:
        raise InvalidParameterError("at least one chunk is required")
    indices: list[np.ndarray] = []
    values: list[np.ndarray] = []
    offset = 0
    for chunk in chunks:
        if not isinstance(chunk, IrregularSeries):
            raise InvalidParameterError("chunks must be IrregularSeries instances")
        indices.append(chunk.indices + offset)
        values.append(chunk.values)
        offset += chunk.original_length
    return IrregularSeries(
        indices=np.concatenate(indices), values=np.concatenate(values),
        original_length=offset, name=name,
        metadata={"compressor": "CAMEO-streaming", "chunks": len(chunks)})
