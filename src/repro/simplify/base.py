"""Common infrastructure for line-simplification compressors.

Every baseline in this package ranks points by an *importance* criterion and
removes them bottom-up (VW, TP) or keeps the most important ones top-down
(PIP, RDP).  The paper adapts all of them to the ACF-bounded problem by
removing/keeping points in importance order while monitoring the deviation of
the ACF of the reconstruction — the shared logic lives in
:class:`AcfConstrainedSimplifier`.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod

import numpy as np

from .._validation import as_float_array
from ..data.timeseries import IrregularSeries, TimeSeries
from ..exceptions import InvalidParameterError
from ..stats.windowed import tumbling_window_aggregate
from ..core.impact import metric_rowwise, segment_interpolation_deltas
from ..core.tracker import StatisticTracker

__all__ = ["LineSimplifier", "AcfConstrainedSimplifier", "ranked_removal_order"]


class LineSimplifier(ABC):
    """Base class: produce an importance ranking of removable points."""

    #: Human-readable identifier used in result metadata and benchmark tables.
    name: str = "line-simplifier"

    @abstractmethod
    def removal_order(self, values: np.ndarray) -> np.ndarray:
        """Return interior point indices ordered from least to most important.

        The first and last points are never part of the order (they are
        always retained).  Implementations may return fewer indices than
        ``n - 2`` when some points are never removable for the method (e.g.
        turning points in the TP algorithm's first phase remove everything
        else first).
        """

    def importance(self, values: np.ndarray) -> np.ndarray:
        """Optional: per-point importance scores (higher = more important).

        The default derives scores from the removal order; subclasses with a
        natural scalar criterion (triangle area, vertical distance, ...)
        override this.
        """
        values = as_float_array(values)
        order = self.removal_order(values)
        scores = np.full(values.size, float(values.size), dtype=np.float64)
        for rank, index in enumerate(order):
            scores[index] = float(rank)
        return scores


def ranked_removal_order(scores: np.ndarray) -> np.ndarray:
    """Utility: turn per-point scores into a least-important-first order.

    The first and last points are excluded.  Ties are broken by position to
    keep results deterministic.
    """
    interior = np.arange(1, scores.size - 1)
    order = interior[np.argsort(scores[1:-1], kind="stable")]
    return order.astype(np.int64)


class AcfConstrainedSimplifier:
    """Adapt any :class:`LineSimplifier` to the ACF-bounded problem.

    Points are removed in the baseline's importance order; after each removal
    the ACF (optionally of the tumbling-window aggregates) of the linear-
    interpolation reconstruction is updated incrementally and checked against
    ``epsilon``.  The first removal that would violate the bound stops the
    process, mirroring how the paper extends VW/TP/PIP with the ACF
    constraint.

    Parameters
    ----------
    simplifier:
        The underlying ranking strategy.
    max_lag, epsilon, metric, agg_window, agg:
        Same meaning as for :class:`repro.core.CameoCompressor`.
    target_ratio:
        Optional compression-centric stop (Definition 3).
    """

    def __init__(self, simplifier: LineSimplifier, max_lag: int,
                 epsilon: float | None = 0.01, *, metric="mae", agg_window: int = 1,
                 agg: str = "mean", target_ratio: float | None = None):
        if epsilon is None and target_ratio is None:
            raise InvalidParameterError("provide epsilon and/or target_ratio")
        self.simplifier = simplifier
        self.max_lag = int(max_lag)
        self.epsilon = epsilon
        self.metric = metric
        self.agg_window = int(agg_window)
        self.agg = agg
        self.target_ratio = target_ratio

    def compress(self, series) -> IrregularSeries:
        """Compress ``series`` under the ACF constraint."""
        name = series.name if isinstance(series, TimeSeries) else "series"
        values = as_float_array(series.values if isinstance(series, TimeSeries) else series)
        n = values.size
        start_time = time.perf_counter()
        if n < 4:
            return IrregularSeries(indices=np.arange(n), values=values.copy(),
                                   original_length=n, name=f"{self.simplifier.name}({name})")

        tracked_length = n if self.agg_window == 1 else n // self.agg_window
        lag = min(self.max_lag, max(tracked_length - 1, 1))
        tracker = StatisticTracker(values, lag, statistic="acf",
                                   agg_window=self.agg_window, agg=self.agg)
        order = self.simplifier.removal_order(values)

        alive = np.ones(n, dtype=bool)
        left = np.arange(-1, n - 1, dtype=np.int64)
        right = np.arange(1, n + 1, dtype=np.int64)
        kept = n
        achieved = 0.0
        target_kept = None
        if self.target_ratio is not None:
            target_kept = max(int(np.ceil(n / self.target_ratio)), 2)
        stopped_by = "order-exhausted"

        for index in order:
            index = int(index)
            if not alive[index] or index <= 0 or index >= n - 1:
                continue
            left_anchor, right_anchor = int(left[index]), int(right[index])
            start, deltas = segment_interpolation_deltas(
                tracker.current_values, left_anchor, right_anchor)
            if deltas.size == 0:
                deviation = achieved
            else:
                statistic = tracker.preview(start, deltas)
                deviation = float(metric_rowwise(self.metric, tracker.reference,
                                                 statistic)[0])
            if self.epsilon is not None and deviation >= self.epsilon:
                stopped_by = "error-bound"
                break
            if deltas.size:
                tracker.apply(start, deltas)
            alive[index] = False
            right[left_anchor] = right_anchor
            if right_anchor < n:
                left[right_anchor] = left_anchor
            kept -= 1
            achieved = deviation
            if target_kept is not None and kept <= target_kept:
                stopped_by = "target-ratio"
                break

        indices = np.flatnonzero(alive)
        metadata = {
            "compressor": self.simplifier.name,
            "epsilon": self.epsilon,
            "target_ratio": self.target_ratio,
            "metric": self.metric if isinstance(self.metric, str) else "custom",
            "max_lag": self.max_lag,
            "agg_window": self.agg_window,
            "achieved_deviation": achieved,
            "kept_points": int(kept),
            "stopped_by": stopped_by,
            "elapsed_seconds": time.perf_counter() - start_time,
        }
        return IrregularSeries(indices=indices, values=values[indices], original_length=n,
                               name=f"{self.simplifier.name}({name})", metadata=metadata)

    # ------------------------------------------------------------------ #
    def acf_deviation(self, original: np.ndarray, result: IrregularSeries) -> float:
        """Deviation of the ACF between original and reconstruction (check)."""
        reconstruction = result.decompress()
        if self.agg_window > 1:
            original = tumbling_window_aggregate(original, self.agg_window, self.agg)
            reconstruction = tumbling_window_aggregate(
                reconstruction, self.agg_window, self.agg)
        lag = min(self.max_lag, original.size - 1)
        tracker_a = StatisticTracker(original, lag)
        tracker_b = StatisticTracker(reconstruction, lag)
        return float(metric_rowwise(self.metric, tracker_a.reference,
                                    tracker_b.reference)[0])
