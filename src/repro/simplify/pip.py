"""Perceptually Important Points (PIP) compression.

PIPs are selected top-down: starting from the segment defined by the first
and last points, the point with the maximum distance to the line between two
consecutive already-selected PIPs is promoted next.  Two distance functions
from the paper are supported:

* ``"vertical"``  (PIPv) — vertical distance to the chord,
* ``"euclidean"`` (PIPe) — perpendicular (Euclidean) distance to the chord.

The *selection* order (most important first) is reversed to obtain a
*removal* order, which plugs into the shared ACF-constrained adapter.
"""

from __future__ import annotations

import heapq

import numpy as np

from .._validation import as_float_array
from ..exceptions import InvalidParameterError
from .base import LineSimplifier

__all__ = ["PerceptualImportantPoints", "vertical_distance", "euclidean_distance"]


def vertical_distance(values: np.ndarray, left: int, right: int,
                      candidates: np.ndarray) -> np.ndarray:
    """Vertical distances of ``candidates`` to the chord ``left -> right``."""
    span = float(right - left)
    weights = (candidates - left) / span
    chord = values[left] * (1.0 - weights) + values[right] * weights
    return np.abs(values[candidates] - chord)


def euclidean_distance(values: np.ndarray, left: int, right: int,
                       candidates: np.ndarray) -> np.ndarray:
    """Perpendicular distances of ``candidates`` to the chord ``left -> right``."""
    x1, y1 = float(left), float(values[left])
    x2, y2 = float(right), float(values[right])
    dx, dy = x2 - x1, y2 - y1
    norm = np.hypot(dx, dy)
    if norm == 0.0:
        return np.abs(values[candidates] - y1)
    cx = candidates.astype(np.float64)
    cy = values[candidates]
    return np.abs(dy * cx - dx * cy + x2 * y1 - y2 * x1) / norm


class PerceptualImportantPoints(LineSimplifier):
    """Top-down PIP selection with vertical or Euclidean importance."""

    def __init__(self, distance: str = "vertical"):
        distance = str(distance).lower()
        if distance not in ("vertical", "euclidean"):
            raise InvalidParameterError("distance must be 'vertical' or 'euclidean'")
        self.distance = distance
        self.name = "PIPv" if distance == "vertical" else "PIPe"

    def _distance_fn(self):
        return vertical_distance if self.distance == "vertical" else euclidean_distance

    def selection_order(self, values: np.ndarray) -> np.ndarray:
        """Interior points ordered from most to least perceptually important.

        Implemented with a max-heap of segments keyed by the best candidate
        distance inside each segment, which reproduces the progressive
        top-down construction in O(n log n) heap operations (each split
        rescans only its own segment).
        """
        values = as_float_array(values)
        n = values.size
        if n < 3:
            return np.empty(0, dtype=np.int64)
        distance_fn = self._distance_fn()
        order: list[int] = []

        def best_in(left: int, right: int) -> tuple[float, int]:
            candidates = np.arange(left + 1, right, dtype=np.int64)
            if candidates.size == 0:
                return -1.0, -1
            distances = distance_fn(values, left, right, candidates)
            best = int(np.argmax(distances))
            return float(distances[best]), int(candidates[best])

        heap: list[tuple[float, int, int, int]] = []
        score, index = best_in(0, n - 1)
        if index >= 0:
            heapq.heappush(heap, (-score, index, 0, n - 1))
        while heap:
            negative_score, index, left, right = heapq.heappop(heap)
            del negative_score
            order.append(index)
            for new_left, new_right in ((left, index), (index, right)):
                score, candidate = best_in(new_left, new_right)
                if candidate >= 0:
                    heapq.heappush(heap, (-score, candidate, new_left, new_right))
        return np.asarray(order, dtype=np.int64)

    def removal_order(self, values: np.ndarray) -> np.ndarray:
        """Least-important-first order: the reverse of the selection order."""
        return self.selection_order(values)[::-1].copy()

    def importance(self, values: np.ndarray) -> np.ndarray:
        values = as_float_array(values)
        selection = self.selection_order(values)
        scores = np.zeros(values.size)
        # Earlier selection = higher importance.
        for rank, index in enumerate(selection):
            scores[index] = float(selection.size - rank)
        scores[0] = scores[-1] = np.inf
        return scores
