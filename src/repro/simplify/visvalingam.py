"""Visvalingam-Whyatt (VW) line simplification.

VW repeatedly removes the point whose triangle — formed with its surviving
left and right neighbours — has the smallest area, then recomputes the areas
of the two neighbouring triangles.  It is the strongest line-simplification
baseline in the paper and the direct inspiration for CAMEO's bottom-up
structure.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..core.heap import make_heap
from ..core.neighbors import NeighborList
from .base import LineSimplifier

__all__ = ["VisvalingamWhyatt", "triangle_areas"]


def triangle_areas(values: np.ndarray) -> np.ndarray:
    """Effective triangle area of every interior point.

    The area of the triangle spanned by ``(i-1, x_{i-1})``, ``(i, x_i)`` and
    ``(i+1, x_{i+1})`` with unit horizontal spacing.  Boundary points get
    ``inf`` (never removable).
    """
    values = as_float_array(values)
    areas = np.full(values.size, np.inf)
    if values.size >= 3:
        # 0.5 * |x1*(y2-y3) + x2*(y3-y1) + x3*(y1-y2)| with x spacing of 1.
        areas[1:-1] = 0.5 * np.abs(values[:-2] + values[2:] - 2.0 * values[1:-1])
    return areas


def _area(values: np.ndarray, left: int, mid: int, right: int) -> float:
    """Triangle area for arbitrary (non-adjacent) anchor positions."""
    base = float(right - left)
    # Vertical distance of the middle point from the chord left→right.
    interpolated = values[left] + (values[right] - values[left]) * (mid - left) / base
    return 0.5 * base * abs(float(values[mid]) - interpolated)


class VisvalingamWhyatt(LineSimplifier):
    """Classical VW: remove points in order of (dynamically updated) area."""

    name = "VW"

    def removal_order(self, values: np.ndarray) -> np.ndarray:
        values = as_float_array(values)
        n = values.size
        if n < 3:
            return np.empty(0, dtype=np.int64)
        areas = triangle_areas(values)
        neighbours = NeighborList(n)
        heap = make_heap(n)
        interior = np.arange(1, n - 1, dtype=np.int64)
        heap.heapify(interior, areas[1:-1])

        order = []
        while heap:
            index, _area_value = heap.pop()
            left, right = neighbours.remove(index)
            order.append(index)
            # Recompute the areas of the two surviving neighbours.
            for neighbour in (left, right):
                if neighbour <= 0 or neighbour >= n - 1 or neighbour not in heap:
                    continue
                n_left = neighbours.left_of(neighbour)
                n_right = neighbours.right_of(neighbour)
                heap.update(neighbour, _area(values, n_left, neighbour, n_right))
        return np.asarray(order, dtype=np.int64)

    def importance(self, values: np.ndarray) -> np.ndarray:
        """Initial triangle areas (static importance, used by Figure 3-style plots)."""
        return triangle_areas(values)
