"""Line-simplification baselines (VW, TP, PIP, RDP) and the ACF-constrained adapter."""

from .base import AcfConstrainedSimplifier, LineSimplifier, ranked_removal_order
from .pip import PerceptualImportantPoints, euclidean_distance, vertical_distance
from .rdp import RamerDouglasPeucker, rdp_mask
from .turning_points import TurningPoints, turning_point_mask
from .visvalingam import VisvalingamWhyatt, triangle_areas

__all__ = [
    "LineSimplifier",
    "AcfConstrainedSimplifier",
    "ranked_removal_order",
    "VisvalingamWhyatt",
    "triangle_areas",
    "TurningPoints",
    "turning_point_mask",
    "PerceptualImportantPoints",
    "vertical_distance",
    "euclidean_distance",
    "RamerDouglasPeucker",
    "rdp_mask",
]


def make_simplifier(name: str) -> LineSimplifier:
    """Construct a line simplifier from the paper's short names.

    Supported: ``VW``, ``TPs``, ``TPm``, ``PIPv``, ``PIPe``, ``RDP``.
    """
    key = str(name).strip().lower()
    if key == "vw":
        return VisvalingamWhyatt()
    if key == "tps":
        return TurningPoints("sum")
    if key == "tpm":
        return TurningPoints("mae")
    if key == "pipv":
        return PerceptualImportantPoints("vertical")
    if key == "pipe":
        return PerceptualImportantPoints("euclidean")
    if key == "rdp":
        return RamerDouglasPeucker()
    raise ValueError(f"unknown simplifier {name!r}")


__all__.append("make_simplifier")
