"""Ramer-Douglas-Peucker (RDP) line simplification.

RDP is the classical top-down polyline simplification algorithm referenced in
the paper's related-work discussion: recursively keep the point farthest from
the chord while its distance exceeds a tolerance.  It is included both as an
additional baseline and because its selection order (by decreasing chord
distance) slots naturally into the shared ACF-constrained adapter.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from .base import LineSimplifier
from .pip import euclidean_distance

__all__ = ["RamerDouglasPeucker", "rdp_mask"]


def rdp_mask(values, tolerance: float) -> np.ndarray:
    """Boolean keep-mask of the classical distance-threshold RDP."""
    values = as_float_array(values)
    n = values.size
    keep = np.zeros(n, dtype=bool)
    keep[0] = keep[-1] = True
    if n < 3:
        return keep
    stack = [(0, n - 1)]
    while stack:
        left, right = stack.pop()
        candidates = np.arange(left + 1, right, dtype=np.int64)
        if candidates.size == 0:
            continue
        distances = euclidean_distance(values, left, right, candidates)
        best = int(np.argmax(distances))
        if float(distances[best]) > tolerance:
            index = int(candidates[best])
            keep[index] = True
            stack.append((left, index))
            stack.append((index, right))
    return keep


class RamerDouglasPeucker(LineSimplifier):
    """RDP expressed as an importance ranking (farthest-point-first selection)."""

    name = "RDP"

    def selection_order(self, values: np.ndarray) -> np.ndarray:
        """Interior points ordered from most to least important (RDP order)."""
        values = as_float_array(values)
        n = values.size
        if n < 3:
            return np.empty(0, dtype=np.int64)
        import heapq

        order: list[int] = []

        def best_in(left: int, right: int) -> tuple[float, int]:
            candidates = np.arange(left + 1, right, dtype=np.int64)
            if candidates.size == 0:
                return -1.0, -1
            distances = euclidean_distance(values, left, right, candidates)
            best = int(np.argmax(distances))
            return float(distances[best]), int(candidates[best])

        heap: list[tuple[float, int, int, int]] = []
        score, index = best_in(0, n - 1)
        if index >= 0:
            heapq.heappush(heap, (-score, index, 0, n - 1))
        while heap:
            _negative, index, left, right = heapq.heappop(heap)
            order.append(index)
            for new_left, new_right in ((left, index), (index, right)):
                score, candidate = best_in(new_left, new_right)
                if candidate >= 0:
                    heapq.heappush(heap, (-score, candidate, new_left, new_right))
        return np.asarray(order, dtype=np.int64)

    def removal_order(self, values: np.ndarray) -> np.ndarray:
        return self.selection_order(values)[::-1].copy()
