"""Turning-Points (TP) compression.

TP keeps only the points where the series changes direction (local extrema).
The paper evaluates two evaluation functions for ranking the turning points
themselves once the non-turning points are gone:

* **TPs** — Sum of Absolute Values of the slope change around the point,
* **TPm** — Mean Absolute Error that removing the point would introduce on
  its neighbours.

The removal order therefore has two phases: all non-turning points (ranked
by how little they deviate from the local line) followed by the turning
points ranked by the chosen evaluation function.  This mirrors the paper's
observation that TP's aggressive first phase can overshoot the ACF bound on
some datasets (Pedestrian, SolarPower).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_float_array
from ..exceptions import InvalidParameterError
from .base import LineSimplifier

__all__ = ["TurningPoints", "turning_point_mask"]


def turning_point_mask(values: np.ndarray) -> np.ndarray:
    """Boolean mask of direction changes (local maxima/minima).

    The first and last points are always marked as turning points.  Flat
    plateaus count as turning points at their boundaries only.
    """
    values = as_float_array(values)
    n = values.size
    mask = np.zeros(n, dtype=bool)
    mask[0] = mask[-1] = True
    if n < 3:
        return mask
    diff_left = values[1:-1] - values[:-2]
    diff_right = values[2:] - values[1:-1]
    mask[1:-1] = (diff_left * diff_right) < 0.0
    return mask


class TurningPoints(LineSimplifier):
    """TP simplification with the ``"sum"`` (TPs) or ``"mae"`` (TPm) ranking."""

    def __init__(self, evaluation: str = "sum"):
        evaluation = str(evaluation).lower()
        if evaluation not in ("sum", "mae"):
            raise InvalidParameterError("evaluation must be 'sum' (TPs) or 'mae' (TPm)")
        self.evaluation = evaluation
        self.name = "TPs" if evaluation == "sum" else "TPm"

    # ------------------------------------------------------------------ #
    def _non_turning_scores(self, values: np.ndarray) -> np.ndarray:
        """Importance of non-turning points: distance from the local chord."""
        scores = np.zeros(values.size)
        if values.size >= 3:
            scores[1:-1] = np.abs(0.5 * (values[:-2] + values[2:]) - values[1:-1])
        return scores

    def _turning_scores(self, values: np.ndarray) -> np.ndarray:
        """Importance of turning points according to the evaluation function."""
        n = values.size
        scores = np.zeros(n)
        if n < 3:
            return scores
        left_diff = np.abs(values[1:-1] - values[:-2])
        right_diff = np.abs(values[2:] - values[1:-1])
        if self.evaluation == "sum":
            scores[1:-1] = left_diff + right_diff
        else:
            interpolation_error = np.abs(0.5 * (values[:-2] + values[2:]) - values[1:-1])
            scores[1:-1] = 0.5 * (left_diff + right_diff) + interpolation_error
        return scores

    def removal_order(self, values: np.ndarray) -> np.ndarray:
        values = as_float_array(values)
        n = values.size
        if n < 3:
            return np.empty(0, dtype=np.int64)
        mask = turning_point_mask(values)
        interior = np.arange(1, n - 1, dtype=np.int64)

        non_turning = interior[~mask[1:-1]]
        turning = interior[mask[1:-1]]

        non_turning_scores = self._non_turning_scores(values)[non_turning]
        turning_scores = self._turning_scores(values)[turning]

        phase_one = non_turning[np.argsort(non_turning_scores, kind="stable")]
        phase_two = turning[np.argsort(turning_scores, kind="stable")]
        return np.concatenate([phase_one, phase_two]).astype(np.int64)

    def importance(self, values: np.ndarray) -> np.ndarray:
        values = as_float_array(values)
        mask = turning_point_mask(values)
        scores = self._non_turning_scores(values)
        turning_scores = self._turning_scores(values)
        # Turning points are strictly more important than any non-turning point.
        offset = float(scores.max()) + 1.0 if scores.size else 1.0
        scores = np.where(mask, offset + turning_scores, scores)
        scores[0] = scores[-1] = np.inf
        return scores
