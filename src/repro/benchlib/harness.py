"""Shared helpers for the paper-reproduction benchmark harness.

The ``benchmarks/`` directory contains one module per table/figure; they all
need the same plumbing:

* a single switch (environment variable ``REPRO_BENCH_SCALE``) that scales
  dataset sizes between "smoke" (CI-friendly) and "paper" (hours) runs,
* uniform construction of every compressor under a shared ACF budget,
* pretty-printing of result tables in the same rows/series the paper reports.

Nothing in here is specific to one experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..compressors import (
    FFTCompressor,
    PoorMansCompressionMean,
    SimPiece,
    SwingFilter,
    acf_deviation_of,
    search_parameter_for_acf,
)
from ..core import CameoCompressor
from ..data import load_dataset
from ..data.timeseries import TimeSeries
from ..simplify import AcfConstrainedSimplifier, make_simplifier

__all__ = [
    "bench_scale",
    "scaled_length",
    "bench_dataset",
    "CompressorRun",
    "run_cameo",
    "run_line_simplifier",
    "run_lossy_baseline",
    "format_table",
    "LINE_SIMPLIFIERS",
    "LOSSY_BASELINES",
]

#: Line-simplification baselines of Figure 6, in the paper's order.
LINE_SIMPLIFIERS = ("VW", "TPs", "TPm", "PIPv", "PIPe")

#: Additional lossy baselines of Figure 7.
LOSSY_BASELINES = ("PMC", "SWING", "SP", "FFT")


def bench_scale() -> float:
    """Global benchmark scale factor from ``REPRO_BENCH_SCALE`` (default 1.0).

    1.0 runs every experiment at smoke scale (a few thousand points per
    dataset); larger values increase dataset lengths proportionally, up to
    the paper-scale lengths.
    """
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1.0")), 0.1)
    except ValueError:
        return 1.0


def scaled_length(base: int, maximum: int | None = None) -> int:
    """Scale a base length by :func:`bench_scale`, optionally capped."""
    length = int(round(base * bench_scale()))
    if maximum is not None:
        length = min(length, maximum)
    return max(length, 256)


#: Smoke-scale lengths per dataset (scaled up by ``REPRO_BENCH_SCALE``).
_BENCH_BASE_LENGTHS = {
    "ElecPower": 800,
    "MinTemp": 800,
    "Pedestrian": 960,
    "UKElecDem": 960,
    "AUSElecDem": 1_440,
    "Humidity": 1_200,
    "IRBioTemp": 1_200,
    "SolarPower": 1_440,
}


def bench_dataset(name: str, *, seed: int = 7) -> TimeSeries:
    """Load a dataset at benchmark scale (see ``_BENCH_BASE_LENGTHS``)."""
    spec_length = _BENCH_BASE_LENGTHS.get(name, 2_000)
    length = scaled_length(spec_length)
    return load_dataset(name, length=length, seed=seed)


@dataclass
class CompressorRun:
    """Uniform record of one compression run used by every benchmark table."""

    method: str
    dataset: str
    epsilon: float | None
    compression_ratio: float
    acf_deviation: float
    nrmse: float
    elapsed_seconds: float
    extra: dict = field(default_factory=dict)

    def as_row(self) -> list:
        return [self.method, self.dataset,
                "-" if self.epsilon is None else f"{self.epsilon:g}",
                f"{self.compression_ratio:.2f}", f"{self.acf_deviation:.5f}",
                f"{self.nrmse:.4f}", f"{self.elapsed_seconds:.3f}"]


def _nrmse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    value_range = float(np.max(original) - np.min(original)) or 1.0
    return float(np.sqrt(np.mean((original - reconstruction) ** 2)) / value_range)


def run_cameo(series: TimeSeries, epsilon: float, *, metric="mae",
              blocking="5logn", statistic: str = "acf",
              target_ratio: float | None = None) -> CompressorRun:
    """Run CAMEO with the dataset's own lag/window configuration."""
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    compressor = CameoCompressor(max_lag, epsilon, metric=metric, statistic=statistic,
                                 agg_window=agg_window, blocking=blocking,
                                 target_ratio=target_ratio)
    start = time.perf_counter()
    result = compressor.compress(series)
    elapsed = time.perf_counter() - start
    reconstruction = result.decompress()
    deviation = acf_deviation_of(series.values, reconstruction, max_lag,
                                 metric=metric, agg_window=agg_window)
    return CompressorRun(method="CAMEO", dataset=series.name, epsilon=epsilon,
                         compression_ratio=result.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"kept": len(result), "stopped_by":
                                result.metadata.get("stopped_by")})


def run_line_simplifier(name: str, series: TimeSeries, epsilon: float, *,
                        metric="mae", target_ratio: float | None = None) -> CompressorRun:
    """Run one ACF-constrained line-simplification baseline."""
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    adapter = AcfConstrainedSimplifier(make_simplifier(name), max_lag, epsilon,
                                       metric=metric, agg_window=agg_window,
                                       target_ratio=target_ratio)
    start = time.perf_counter()
    result = adapter.compress(series)
    elapsed = time.perf_counter() - start
    reconstruction = result.decompress()
    deviation = acf_deviation_of(series.values, reconstruction, max_lag,
                                 metric=metric, agg_window=agg_window)
    return CompressorRun(method=name, dataset=series.name, epsilon=epsilon,
                         compression_ratio=result.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"kept": len(result)})


def _baseline_factory(name: str, series: TimeSeries) -> Callable[[float], object]:
    value_range = float(np.max(series.values) - np.min(series.values)) or 1.0
    if name == "PMC":
        return lambda parameter: PoorMansCompressionMean(parameter * value_range).compress(series)
    if name == "SWING":
        return lambda parameter: SwingFilter(parameter * value_range).compress(series)
    if name == "SP":
        return lambda parameter: SimPiece(parameter * value_range).compress(series)
    if name == "FFT":
        return lambda parameter: FFTCompressor(
            keep_fraction=min(max(parameter, 1e-4), 1.0)).compress(series)
    raise ValueError(f"unknown lossy baseline {name!r}")


def run_lossy_baseline(name: str, series: TimeSeries, epsilon: float, *,
                       metric="mae") -> CompressorRun:
    """Trial-and-error tune a lossy baseline for the target ACF deviation."""
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    factory = _baseline_factory(name, series)
    start = time.perf_counter()
    if name == "FFT":
        # Larger keep-fraction means *less* deviation, so invert the knob.
        model, _param, deviation = search_parameter_for_acf(
            lambda parameter: factory(1.0 - parameter), series.values, max_lag, epsilon,
            metric=metric, agg_window=agg_window, low=1e-3, high=1.0 - 1e-3)
    else:
        model, _param, deviation = search_parameter_for_acf(
            factory, series.values, max_lag, epsilon,
            metric=metric, agg_window=agg_window, low=1e-4, high=0.5)
    elapsed = time.perf_counter() - start
    reconstruction = model.decompress()
    return CompressorRun(method=name, dataset=series.name, epsilon=epsilon,
                         compression_ratio=model.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"stored_values": model.stored_values})


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width text table, printed by every benchmark for inspection."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
