"""Shared helpers for the paper-reproduction benchmark harness.

The ``benchmarks/`` directory contains one module per table/figure; they all
need the same plumbing:

* a single switch (environment variable ``REPRO_BENCH_SCALE``) that scales
  dataset sizes between "smoke" (CI-friendly) and "paper" (hours) runs,
* uniform construction of every compressor under a shared ACF budget,
* pretty-printing of result tables in the same rows/series the paper reports.

Nothing in here is specific to one experiment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..codecs import codec_spec, codec_specs, get_codec
from ..compressors import acf_deviation_of, search_parameter_for_acf
from ..data import load_dataset
from ..data.timeseries import TimeSeries

__all__ = [
    "bench_scale",
    "scaled_length",
    "bench_dataset",
    "CompressorRun",
    "run_cameo",
    "run_line_simplifier",
    "run_lossy_baseline",
    "run_codec",
    "format_table",
    "LINE_SIMPLIFIERS",
    "LOSSY_BASELINES",
]

#: Line-simplification baselines of Figure 6, derived from the codec
#: registry in registration (= paper) order.  RDP is registered but not part
#: of the paper's five-baseline figure, so it is excluded here.
LINE_SIMPLIFIERS = tuple(spec.label for spec in codec_specs("simplify")
                         if spec.label != "RDP")

#: Additional lossy baselines of Figure 7, derived from the codec registry.
LOSSY_BASELINES = tuple(spec.label for spec in codec_specs("model"))

#: Display label -> registry name for every registered codec.
_LABEL_TO_NAME = {spec.label: spec.name for spec in codec_specs()}


def _spec_for(name: str):
    """Resolve a codec by registry name or benchmark display label."""
    return codec_spec(_LABEL_TO_NAME.get(name, name))


def bench_scale() -> float:
    """Global benchmark scale factor from ``REPRO_BENCH_SCALE`` (default 1.0).

    1.0 runs every experiment at smoke scale (a few thousand points per
    dataset); larger values increase dataset lengths proportionally, up to
    the paper-scale lengths.
    """
    try:
        return max(float(os.environ.get("REPRO_BENCH_SCALE", "1.0")), 0.1)
    except ValueError:
        return 1.0


def scaled_length(base: int, maximum: int | None = None) -> int:
    """Scale a base length by :func:`bench_scale`, optionally capped."""
    length = int(round(base * bench_scale()))
    if maximum is not None:
        length = min(length, maximum)
    return max(length, 256)


#: Smoke-scale lengths per dataset (scaled up by ``REPRO_BENCH_SCALE``).
_BENCH_BASE_LENGTHS = {
    "ElecPower": 800,
    "MinTemp": 800,
    "Pedestrian": 960,
    "UKElecDem": 960,
    "AUSElecDem": 1_440,
    "Humidity": 1_200,
    "IRBioTemp": 1_200,
    "SolarPower": 1_440,
}


def bench_dataset(name: str, *, seed: int = 7) -> TimeSeries:
    """Load a dataset at benchmark scale (see ``_BENCH_BASE_LENGTHS``)."""
    spec_length = _BENCH_BASE_LENGTHS.get(name, 2_000)
    length = scaled_length(spec_length)
    return load_dataset(name, length=length, seed=seed)


@dataclass
class CompressorRun:
    """Uniform record of one compression run used by every benchmark table."""

    method: str
    dataset: str
    epsilon: float | None
    compression_ratio: float
    acf_deviation: float
    nrmse: float
    elapsed_seconds: float
    extra: dict = field(default_factory=dict)

    def as_row(self) -> list:
        return [self.method, self.dataset,
                "-" if self.epsilon is None else f"{self.epsilon:g}",
                f"{self.compression_ratio:.2f}", f"{self.acf_deviation:.5f}",
                f"{self.nrmse:.4f}", f"{self.elapsed_seconds:.3f}"]


def _nrmse(original: np.ndarray, reconstruction: np.ndarray) -> float:
    value_range = float(np.max(original) - np.min(original)) or 1.0
    return float(np.sqrt(np.mean((original - reconstruction) ** 2)) / value_range)


def run_cameo(series: TimeSeries, epsilon: float, *, metric="mae",
              blocking="5logn", statistic: str = "acf",
              target_ratio: float | None = None) -> CompressorRun:
    """Run CAMEO with the dataset's own lag/window configuration."""
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    codec = get_codec("cameo", max_lag=max_lag, epsilon=epsilon, metric=metric,
                      statistic=statistic, agg_window=agg_window, blocking=blocking,
                      target_ratio=target_ratio)
    start = time.perf_counter()
    result = codec.compress(series)
    elapsed = time.perf_counter() - start
    reconstruction = result.decompress()
    deviation = acf_deviation_of(series.values, reconstruction, max_lag,
                                 metric=metric, agg_window=agg_window)
    return CompressorRun(method="CAMEO", dataset=series.name, epsilon=epsilon,
                         compression_ratio=result.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"kept": len(result), "stopped_by":
                                result.metadata.get("stopped_by")})


def run_line_simplifier(name: str, series: TimeSeries, epsilon: float, *,
                        metric="mae", target_ratio: float | None = None) -> CompressorRun:
    """Run one ACF-constrained line-simplification baseline (by label or name)."""
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    spec = _spec_for(name)
    codec = get_codec(spec.name, max_lag=max_lag, epsilon=epsilon, metric=metric,
                      agg_window=agg_window, target_ratio=target_ratio)
    start = time.perf_counter()
    result = codec.compress(series)
    elapsed = time.perf_counter() - start
    reconstruction = result.decompress()
    deviation = acf_deviation_of(series.values, reconstruction, max_lag,
                                 metric=metric, agg_window=agg_window)
    return CompressorRun(method=spec.label, dataset=series.name, epsilon=epsilon,
                         compression_ratio=result.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"kept": len(result)})


def _baseline_factory(name: str, series: TimeSeries) -> Callable[[float], object]:
    """Parameter -> CompressedModel factory for one model-family codec.

    The tuned knob comes from the codec registry (``spec.tune``): absolute
    error bounds are scaled by the series' value range, keep-fractions are
    clamped to their valid domain.
    """
    spec = _spec_for(name)
    if spec.family != "model" or spec.tune is None:
        raise ValueError(f"{name!r} is not a tunable model-family codec "
                         f"(available: {', '.join(LOSSY_BASELINES)})")
    value_range = float(np.max(series.values) - np.min(series.values)) or 1.0
    if spec.tune == "keep_fraction":
        return lambda parameter: get_codec(
            spec.name, keep_fraction=min(max(parameter, 1e-4), 1.0)).model(series)
    return lambda parameter: get_codec(
        spec.name, **{spec.tune: parameter * value_range}).model(series)


def run_lossy_baseline(name: str, series: TimeSeries, epsilon: float, *,
                       metric="mae") -> CompressorRun:
    """Trial-and-error tune a lossy baseline for the target ACF deviation."""
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    spec = _spec_for(name)
    factory = _baseline_factory(name, series)
    start = time.perf_counter()
    if spec.tune == "keep_fraction":
        # A larger keep-fraction means *less* deviation, so invert the knob.
        model, _param, deviation = search_parameter_for_acf(
            lambda parameter: factory(1.0 - parameter), series.values, max_lag, epsilon,
            metric=metric, agg_window=agg_window, low=1e-3, high=1.0 - 1e-3)
    else:
        model, _param, deviation = search_parameter_for_acf(
            factory, series.values, max_lag, epsilon,
            metric=metric, agg_window=agg_window, low=1e-4, high=0.5)
    elapsed = time.perf_counter() - start
    reconstruction = model.decompress()
    return CompressorRun(method=spec.label, dataset=series.name, epsilon=epsilon,
                         compression_ratio=model.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"stored_values": model.stored_values})


def run_codec(name: str, series: TimeSeries, *, codec_options: dict | None = None,
              metric="mae") -> CompressorRun:
    """Run any registered codec through the uniform encode/decode interface.

    Unlike the family-specific runners above, the compression ratio here is
    the *bits*-based ratio of the encoded block (raw bits over encoded
    bits), which is comparable across every family including the lossless
    codecs.
    """
    import time

    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    spec = _spec_for(name)
    options = dict(codec_options or {})
    codec = get_codec(spec.name, **options)
    start = time.perf_counter()
    block = codec.encode(series.values)
    elapsed = time.perf_counter() - start
    reconstruction = codec.decode(block)
    deviation = acf_deviation_of(series.values, reconstruction, max_lag,
                                 metric=metric, agg_window=agg_window)
    return CompressorRun(method=spec.label, dataset=series.name,
                         epsilon=options.get("epsilon"),
                         compression_ratio=block.compression_ratio(),
                         acf_deviation=deviation,
                         nrmse=_nrmse(series.values, reconstruction),
                         elapsed_seconds=elapsed,
                         extra={"bits_per_value": block.bits_per_value(),
                                "lossless": block.lossless, **block.metadata})


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Fixed-width text table, printed by every benchmark for inspection."""
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)
