"""Benchmark-harness utilities shared by the ``benchmarks/`` targets."""

from .perf import BenchResult, PerfReport, bench, time_best_of
from .harness import (
    LINE_SIMPLIFIERS,
    LOSSY_BASELINES,
    CompressorRun,
    bench_dataset,
    bench_scale,
    format_table,
    run_cameo,
    run_codec,
    run_line_simplifier,
    run_lossy_baseline,
    scaled_length,
)

__all__ = [
    "BenchResult",
    "PerfReport",
    "bench",
    "time_best_of",
    "bench_scale",
    "scaled_length",
    "bench_dataset",
    "CompressorRun",
    "run_cameo",
    "run_codec",
    "run_line_simplifier",
    "run_lossy_baseline",
    "format_table",
    "LINE_SIMPLIFIERS",
    "LOSSY_BASELINES",
]
