"""Benchmark-harness utilities shared by the ``benchmarks/`` targets."""

from .perf import BenchResult, PerfReport, bench, time_best_of
from .harness import (
    LINE_SIMPLIFIERS,
    LOSSY_BASELINES,
    CompressorRun,
    bench_dataset,
    bench_scale,
    format_table,
    run_cameo,
    run_codec,
    run_line_simplifier,
    run_lossy_baseline,
    scaled_length,
)
from .scorecard import (
    SCORECARD_FORMAT,
    SCORECARD_SCHEMA,
    SCORECARD_VERSION,
    build_scorecard,
    derive_codec_options,
    render_markdown,
    scorecard_json,
    validate_scorecard,
    write_scorecard,
)

__all__ = [
    "SCORECARD_FORMAT",
    "SCORECARD_SCHEMA",
    "SCORECARD_VERSION",
    "build_scorecard",
    "derive_codec_options",
    "render_markdown",
    "scorecard_json",
    "validate_scorecard",
    "write_scorecard",
    "BenchResult",
    "PerfReport",
    "bench",
    "time_best_of",
    "bench_scale",
    "scaled_length",
    "bench_dataset",
    "CompressorRun",
    "run_cameo",
    "run_codec",
    "run_line_simplifier",
    "run_lossy_baseline",
    "format_table",
    "LINE_SIMPLIFIERS",
    "LOSSY_BASELINES",
]
