"""The statistical-fidelity scorecard: every codec × every corpus series.

The scorecard is the repository's standing answer to "does each codec keep
what the paper promises?".  :func:`build_scorecard` encodes every registered
codec over every bundled corpus series (:mod:`repro.ingest`), decodes the
blocks, and scores each reconstruction with every registered fidelity metric
(:mod:`repro.fidelity`).  The result is a versioned JSON document that is

* **offline** — the corpus ships as checksum-pinned snapshots;
* **deterministic** — no timestamps, canonical key order, values rounded to
  12 significant digits, non-finite scores stored as ``null`` (JSON has no
  ``inf``), so two back-to-back builds are byte-identical;
* **schema-validated** — :func:`validate_scorecard` checks the committed
  ``SCORECARD.json`` against :data:`SCORECARD_SCHEMA` in CI, including full
  codec × series × metric coverage.

``python -m repro.cli scorecard`` regenerates the document and
``tools/render_scorecard.py`` splices :func:`render_markdown` into
``docs/evaluation.md``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from ..codecs import codec_spec, codec_specs, get_codec
from ..codecs.registry import CodecSpec
from ..data.timeseries import TimeSeries
from ..exceptions import ScorecardError
from ..fidelity import FidelityContext, context_for_series, fidelity_spec, fidelity_specs
from ..ingest import corpus_source, load_corpus

__all__ = [
    "SCORECARD_FORMAT",
    "SCORECARD_VERSION",
    "SCORECARD_SCHEMA",
    "derive_codec_options",
    "build_scorecard",
    "scorecard_json",
    "write_scorecard",
    "validate_scorecard",
    "render_markdown",
]

#: Document-format marker, checked by :func:`validate_scorecard`.
SCORECARD_FORMAT = "repro-scorecard"

#: Bumped whenever the document layout changes incompatibly.
SCORECARD_VERSION = 1


# --------------------------------------------------------------------------- #
# deterministic number handling
# --------------------------------------------------------------------------- #
def _round(value: float) -> float:
    """Round to 12 significant digits: plenty for a scorecard, and it keeps
    the committed document stable against last-bit floating-point drift."""
    value = float(value)
    if not math.isfinite(value):
        return value
    return float(f"{value:.12g}")


def _score_value(value: float) -> float | None:
    """JSON disallows ``inf``/``nan``; non-finite scores are stored as null."""
    value = _round(value)
    return value if math.isfinite(value) else None


# --------------------------------------------------------------------------- #
# building
# --------------------------------------------------------------------------- #
def derive_codec_options(spec: CodecSpec, series: TimeSeries) -> dict:
    """Concrete codec options for one (codec, series) scorecard cell.

    Expands the declarative ``spec.fidelity`` knobs against the series:

    * ``"epsilon"`` keeps its value and adds the series' own ``max_lag``
      (and ``agg_window`` when the series tracks aggregates);
    * ``"error_bound_fraction"`` becomes an absolute ``error_bound`` scaled
      by the series' value range;
    * anything else is forwarded verbatim (e.g. ``keep_fraction``).
    """
    options = dict(spec.fidelity)
    context = context_for_series(series)
    if "epsilon" in options:
        options["max_lag"] = context.max_lag
        if context.agg_window > 1:
            options["agg_window"] = context.agg_window
    if "error_bound_fraction" in options:
        fraction = float(options.pop("error_bound_fraction"))
        values = np.asarray(series.values, dtype=np.float64)
        value_range = float(np.max(values) - np.min(values))
        options["error_bound"] = _round(fraction * value_range)
    return options


def _score_cell(spec: CodecSpec, series: TimeSeries, metric_specs,
                context: FidelityContext) -> dict:
    """Encode/decode one series with one codec and score the reconstruction."""
    options = derive_codec_options(spec, series)
    codec = get_codec(spec.name, **options)
    values = np.asarray(series.values, dtype=np.float64)
    block = codec.encode(values)
    reconstruction = np.asarray(codec.decode(block), dtype=np.float64)
    scores = {metric.name: _score_value(metric.fn(values, reconstruction, context))
              for metric in metric_specs}
    return {
        "codec": spec.name,
        "series": series.name,
        "options": options,
        "lossless": bool(block.lossless),
        "bits_per_value": _round(block.bits_per_value()),
        "compression_ratio": _round(block.compression_ratio()),
        "scores": scores,
    }


def build_scorecard(*, codecs: list[str] | None = None,
                    series: dict[str, TimeSeries] | None = None,
                    metrics: list[str] | None = None) -> dict:
    """Build the scorecard document: codecs × corpus series × metrics.

    Parameters
    ----------
    codecs:
        Codec names to score (default: every registered codec, in
        registration order).
    series:
        Name → :class:`TimeSeries` map (default: the bundled corpus via
        :func:`repro.ingest.load_corpus`).  Series must carry corpus-style
        metadata (``sha256``, ``license``, ``origin``) for provenance.
    metrics:
        Fidelity-metric names (default: every registered metric, in
        registration order).
    """
    codec_entries = ([codec_spec(name) for name in codecs] if codecs
                     else codec_specs())
    metric_entries = ([fidelity_spec(name) for name in metrics] if metrics
                      else fidelity_specs())
    corpus = load_corpus() if series is None else series

    corpus_block: dict[str, dict] = {}
    for name, entry in corpus.items():
        metadata = entry.metadata or {}
        corpus_block[name] = {
            "points": int(np.asarray(entry.values).size),
            "sha256": str(metadata.get("sha256", "")),
            "license": str(metadata.get("license", "")),
            "origin": str(metadata.get("origin", "")),
            "period": int(entry.period or 0),
            "acf_lags": int(metadata.get("acf_lags", 0)),
        }

    results = []
    for spec in codec_entries:
        for entry in corpus.values():
            context = context_for_series(entry)
            results.append(_score_cell(spec, entry, metric_entries, context))

    return {
        "format": SCORECARD_FORMAT,
        "version": SCORECARD_VERSION,
        "corpus": corpus_block,
        "metrics": [{
            "name": metric.name, "label": metric.label, "kind": metric.kind,
            "symmetric": metric.symmetric, "description": metric.description,
        } for metric in metric_entries],
        "codecs": [{
            "name": spec.name, "family": spec.family, "label": spec.label,
        } for spec in codec_entries],
        "results": results,
    }


def scorecard_json(document: dict) -> str:
    """Canonical byte-stable serialization (sorted keys, no NaN, newline-terminated)."""
    return json.dumps(document, indent=2, sort_keys=True, allow_nan=False) + "\n"


def write_scorecard(document: dict, path) -> Path:
    """Validate and write ``document`` to ``path`` in canonical form."""
    validate_scorecard(document)
    path = Path(path)
    path.write_text(scorecard_json(document), encoding="utf-8")
    return path


# --------------------------------------------------------------------------- #
# schema validation (stdlib-only, intentionally small JSON-Schema subset)
# --------------------------------------------------------------------------- #
_SCORE_SCHEMA = {"type": ["number", "null"]}

#: JSON-Schema-style description of the document.  The validator implements
#: the subset used here: ``type``, ``enum``, ``required``, ``properties``,
#: ``additionalProperties`` (as a schema for map-like objects), ``items``.
SCORECARD_SCHEMA = {
    "type": "object",
    "required": ["format", "version", "corpus", "metrics", "codecs", "results"],
    "properties": {
        "format": {"enum": [SCORECARD_FORMAT]},
        "version": {"type": "integer"},
        "corpus": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["points", "sha256", "license", "origin",
                             "period", "acf_lags"],
                "properties": {
                    "points": {"type": "integer"},
                    "sha256": {"type": "string"},
                    "license": {"type": "string"},
                    "origin": {"type": "string"},
                    "period": {"type": "integer"},
                    "acf_lags": {"type": "integer"},
                },
            },
        },
        "metrics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "label", "kind", "symmetric", "description"],
                "properties": {
                    "name": {"type": "string"},
                    "label": {"type": "string"},
                    "kind": {"enum": ["statistical", "pointwise", "downstream"]},
                    "symmetric": {"type": "boolean"},
                    "description": {"type": "string"},
                },
            },
        },
        "codecs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["name", "family", "label"],
                "properties": {
                    "name": {"type": "string"},
                    "family": {"type": "string"},
                    "label": {"type": "string"},
                },
            },
        },
        "results": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["codec", "series", "options", "lossless",
                             "bits_per_value", "compression_ratio", "scores"],
                "properties": {
                    "codec": {"type": "string"},
                    "series": {"type": "string"},
                    "options": {"type": "object"},
                    "lossless": {"type": "boolean"},
                    "bits_per_value": {"type": "number"},
                    "compression_ratio": {"type": "number"},
                    "scores": {"type": "object",
                               "additionalProperties": _SCORE_SCHEMA},
                },
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _check_schema(value, schema: dict, path: str) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            raise ScorecardError(
                f"{path}: expected {' or '.join(types)}, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        raise ScorecardError(f"{path}: {value!r} not in {schema['enum']!r}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                raise ScorecardError(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for key, item in value.items():
            if key in properties:
                _check_schema(item, properties[key], f"{path}.{key}")
            elif isinstance(extra, dict):
                _check_schema(item, extra, f"{path}.{key}")
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _check_schema(item, schema["items"], f"{path}[{index}]")


def validate_scorecard(document: dict) -> None:
    """Validate a scorecard document; raises :class:`ScorecardError`.

    Beyond the structural :data:`SCORECARD_SCHEMA` check, the full
    codec × series × metric cross product must be covered: every declared
    codec scored on every declared series under every declared metric,
    exactly once, with no stray result rows.
    """
    if not isinstance(document, dict):
        raise ScorecardError(
            f"scorecard must be a JSON object, got {type(document).__name__}")
    _check_schema(document, SCORECARD_SCHEMA, "scorecard")
    if document["version"] != SCORECARD_VERSION:
        raise ScorecardError(
            f"scorecard version {document['version']} != {SCORECARD_VERSION}")

    codec_names = [entry["name"] for entry in document["codecs"]]
    series_names = list(document["corpus"])
    metric_names = {entry["name"] for entry in document["metrics"]}
    expected = {(codec, series)
                for codec in codec_names for series in series_names}
    seen: set[tuple[str, str]] = set()
    for index, row in enumerate(document["results"]):
        cell = (row["codec"], row["series"])
        if cell not in expected:
            raise ScorecardError(
                f"results[{index}]: unknown codec/series pair {cell!r}")
        if cell in seen:
            raise ScorecardError(f"results[{index}]: duplicate cell {cell!r}")
        seen.add(cell)
        if set(row["scores"]) != metric_names:
            missing = sorted(metric_names.symmetric_difference(row["scores"]))
            raise ScorecardError(
                f"results[{index}]: metric coverage mismatch: {missing}")
    if seen != expected:
        missing = sorted(expected - seen)
        raise ScorecardError(f"scorecard is missing cells: {missing[:5]}"
                             f"{'...' if len(missing) > 5 else ''}")


# --------------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------------- #
def _format_score(value) -> str:
    if value is None:
        return "inf"
    return f"{value:.4g}"


def render_markdown(document: dict) -> str:
    """Render the scorecard as GitHub-flavoured markdown (one table per series)."""
    validate_scorecard(document)
    metric_labels = [(entry["name"], entry["label"]) for entry in document["metrics"]]
    by_cell = {(row["codec"], row["series"]): row for row in document["results"]}
    lines: list[str] = []
    for series_name, info in document["corpus"].items():
        lines.append(f"#### `{series_name}` — {info['points']} points"
                     + (f", period {info['period']}" if info["period"] else "")
                     + f", {info['acf_lags']} ACF lags")
        lines.append("")
        header = ["codec", "family", "ratio", "bits/val"]
        header += [label for _, label in metric_labels]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "|".join("---" for _ in header) + "|")
        for codec in document["codecs"]:
            row = by_cell[(codec["name"], series_name)]
            cells = [f"`{codec['name']}`", codec["family"],
                     f"{row['compression_ratio']:.2f}x",
                     f"{row['bits_per_value']:.2f}"]
            cells += [_format_score(row["scores"][name])
                      for name, _ in metric_labels]
            lines.append("| " + " | ".join(cells) + " |")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
