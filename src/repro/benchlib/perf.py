"""Micro-benchmark timing utilities for the kernel perf-regression harness.

``benchmarks/test_perf_kernels.py`` uses these helpers to time the hot-path
kernels (bitstream, Gorilla/Chimp codecs, CAMEO inner loop), compare them
against the preserved per-bit reference implementations on the *same*
machine, and emit a ``BENCH_kernels.json`` trajectory file so future PRs
have concrete numbers to beat.

The helpers are deliberately simple: best-of-N wall-clock timing via
``time.perf_counter``, no warmup magic beyond an untimed first call, and a
plain-JSON report with enough environment metadata to interpret the numbers
later.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["BenchResult", "PerfReport", "time_best_of", "bench"]

#: Environment variable overriding where the JSON report is written.
REPORT_PATH_ENV = "REPRO_BENCH_KERNELS_OUT"

#: Default report filename (written into the current working directory).
DEFAULT_REPORT_NAME = "BENCH_kernels.json"


@dataclass
class BenchResult:
    """One timed operation: its best wall time and derived throughput."""

    name: str
    seconds: float          # best-of-N wall time for one invocation
    ops: int                # logical operations per invocation (values, bits, ...)
    repeats: int
    meta: dict = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        """Throughput implied by the best run."""
        if self.seconds <= 0.0:
            return float("inf")
        return self.ops / self.seconds

    def as_dict(self) -> dict:
        return {
            "seconds": self.seconds,
            "ops": self.ops,
            "ops_per_sec": self.ops_per_sec,
            "repeats": self.repeats,
            **({"meta": self.meta} if self.meta else {}),
        }


def time_best_of(fn: Callable[[], object], *, repeats: int = 5,
                 warmup: bool = True) -> float:
    """Best wall-clock time of ``fn()`` over ``repeats`` runs."""
    if warmup:
        fn()
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench(name: str, fn: Callable[[], object], *, ops: int, repeats: int = 5,
          warmup: bool = True, **meta) -> BenchResult:
    """Time ``fn`` and wrap the result in a :class:`BenchResult`."""
    seconds = time_best_of(fn, repeats=repeats, warmup=warmup)
    return BenchResult(name=name, seconds=seconds, ops=ops, repeats=repeats,
                       meta=dict(meta))


class PerfReport:
    """Collects :class:`BenchResult` entries and writes the JSON trajectory.

    The report records, per benchmark, the best wall time and ops/sec, plus
    any ``speedup_vs`` ratios registered against sibling entries — these are
    the hardware-independent numbers the regression assertions use.
    """

    SCHEMA = 1

    def __init__(self, path: str | None = None):
        if path is None:
            path = os.environ.get(REPORT_PATH_ENV, DEFAULT_REPORT_NAME)
        self.path = path
        self.results: dict[str, BenchResult] = {}
        self.ratios: dict[str, float] = {}

    def add(self, result: BenchResult) -> BenchResult:
        """Register a result (later additions with the same name overwrite)."""
        self.results[result.name] = result
        return result

    def speedup(self, name: str, fast: str, slow: str) -> float:
        """Record and return ``results[slow].seconds / results[fast].seconds``."""
        ratio = self.results[slow].seconds / max(self.results[fast].seconds, 1e-12)
        self.ratios[name] = ratio
        return ratio

    def write(self) -> str:
        """Write the JSON report; returns the path written."""
        from repro import _kernels

        build = _kernels.native_build_info()
        payload = {
            "schema": self.SCHEMA,
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
            "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
            "native_available": _kernels.native_available(),
            "native_build": {
                "status": build["status"],
                "compiler": build["compiler"],
                "openmp": build["openmp"],
                "omp_threads": build["max_threads"],
            },
            "results": {name: result.as_dict()
                        for name, result in sorted(self.results.items())},
            "speedups": dict(sorted(self.ratios.items())),
        }
        with open(self.path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")
        return self.path
