"""Exception hierarchy for the CAMEO reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Errors are grouped by the subsystem that raises
them (compression, statistics, data handling, codecs).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class InvalidSeriesError(ReproError):
    """A time series input is malformed (empty, non-finite, wrong shape)."""


class PolicyViolationError(InvalidSeriesError):
    """Input violated an explicit :class:`repro.sanitize.InputPolicy` rule.

    Subclasses :class:`InvalidSeriesError` so callers that already treat
    malformed series as recoverable per-series failures keep working; the
    distinct type records that the rejection came from a configured policy,
    not from built-in validation.
    """


class ChunkTimeoutError(ReproError):
    """A batch-engine chunk exceeded its per-chunk execution timeout."""


class DeadlineExceededError(ChunkTimeoutError):
    """A request-level deadline expired before the work completed.

    Subclasses :class:`ChunkTimeoutError` so the supervisor's timeout
    discipline applies unchanged — work abandoned for a blown deadline must
    never fall through to the untimed serial rung.
    """


class InvalidParameterError(ReproError):
    """A user-provided parameter is outside its valid domain."""


class CompressionError(ReproError):
    """A compressor failed to produce a valid compressed representation."""


class ConstraintViolationError(CompressionError):
    """A compressed output violates the requested statistical constraint."""


class DecompressionError(ReproError):
    """A compressed representation cannot be reconstructed."""


class CodecError(ReproError):
    """A lossless codec (Gorilla/Chimp) failed to encode or decode."""


class ModelError(ReproError):
    """A forecasting or anomaly-detection model failed to fit or predict."""


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class IngestError(DatasetError):
    """A dataset-ingest pipeline failed (fetch, cache, parse, or verify).

    Subclasses :class:`DatasetError` so callers that already treat dataset
    problems uniformly keep working; the distinct type marks failures of the
    real-data ingest layer (:mod:`repro.ingest`).
    """


class ChecksumMismatchError(IngestError):
    """Fetched or cached dataset bytes do not match the pinned SHA-256."""


class ScorecardError(ReproError):
    """A fidelity-scorecard document is malformed or incomplete."""


class StorageError(ReproError):
    """A storage-engine operation (ingest, query, compaction) failed."""


class CodecMismatchError(CodecError, StorageError):
    """A compressed block was handed to a codec that did not produce it.

    Subclasses both :class:`CodecError` (it is a codec-layer failure) and
    :class:`StorageError` (the storage engine historically raised the latter
    for foreign chunks), so both catch styles keep working.
    """


class SeriesNotFoundError(StorageError):
    """The requested series does not exist in the store."""
