"""Checksum-pinned, fetch-once-with-cache dataset pipelines.

The ingest layer turns *real* public datasets into
:class:`~repro.data.timeseries.TimeSeries` objects under three hard rules:

1. **Offline by default.**  Every dataset ships as a bundled snapshot under
   ``repro/data/corpus/``; loading never touches the network unless the
   caller explicitly passes a network-capable fetcher.
2. **Checksum-pinned.**  Each source pins the SHA-256 of its raw bytes.
   Bytes that do not match — whether from the bundle, the cache, or a
   fetcher — raise :class:`~repro.exceptions.ChecksumMismatchError` instead
   of silently feeding drifted data into benchmarks.
3. **Fetch once.**  :class:`CachedFetcher` writes verified bytes to a cache
   directory (``REPRO_INGEST_CACHE`` or ``~/.cache/repro/ingest``) and
   serves every later request from there.

A :class:`DatasetSource` bundles the provenance (origin URL, license), the
pinned checksum, and the parse step; :func:`fetch_bytes` resolves the byte
source, and :func:`source_to_series` builds the final ``TimeSeries``.
"""

from __future__ import annotations

import csv
import hashlib
import io
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Protocol

import numpy as np

from ..data.timeseries import TimeSeries
from ..exceptions import ChecksumMismatchError, IngestError

__all__ = [
    "DatasetSource",
    "Fetcher",
    "BundledFetcher",
    "CachedFetcher",
    "sha256_hex",
    "default_cache_dir",
    "fetch_bytes",
    "parse_csv_column",
    "source_to_series",
]

#: Directory holding the bundled corpus snapshots.
BUNDLED_DIR = Path(__file__).resolve().parent.parent / "data" / "corpus"

#: Environment variable overriding the ingest cache directory.
CACHE_ENV = "REPRO_INGEST_CACHE"


def sha256_hex(payload: bytes) -> str:
    """Hex SHA-256 digest of ``payload``."""
    return hashlib.sha256(payload).hexdigest()


def default_cache_dir() -> Path:
    """The fetch-once cache directory (override with ``REPRO_INGEST_CACHE``)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "ingest"


@dataclass(frozen=True)
class DatasetSource:
    """Provenance, checksum, and parse recipe for one real dataset.

    Attributes
    ----------
    name:
        Corpus identifier (``"airline"``, ``"nile"``, ...).
    filename:
        Snapshot filename under ``repro/data/corpus/`` (and the cache key).
    sha256:
        Pinned hex SHA-256 of the raw snapshot bytes.
    description:
        One-line human summary of what the series measures.
    license:
        License / public-domain status of the data.
    origin:
        Canonical upstream reference (URL or citation).  Informational:
        loading never dereferences it unless a network fetcher is passed.
    column:
        CSV value column parsed into the series.
    period:
        Dominant seasonal period in samples (0 when none).
    acf_lags:
        Number of ACF lags the evaluation tracks for this series.
    agg_window:
        Tumbling-window size for the on-aggregates ACF variant (1 = direct).
    metadata:
        Extra attributes copied onto the loaded series.
    """

    name: str
    filename: str
    sha256: str
    description: str = ""
    license: str = ""
    origin: str = ""
    column: str = "value"
    period: int = 0
    acf_lags: int = 24
    agg_window: int = 1
    metadata: dict = field(default_factory=dict)


class Fetcher(Protocol):
    """Anything that can produce the raw bytes of a :class:`DatasetSource`."""

    def fetch(self, source: DatasetSource) -> bytes:  # pragma: no cover
        """Return the raw dataset bytes (checksum is verified by the caller)."""
        ...


class BundledFetcher:
    """Serve the snapshot bundled with the package — the offline default."""

    def __init__(self, directory: Path | None = None):
        self.directory = Path(directory) if directory is not None else BUNDLED_DIR

    def fetch(self, source: DatasetSource) -> bytes:
        path = self.directory / source.filename
        if not path.is_file():
            raise IngestError(
                f"bundled snapshot {source.filename!r} for dataset "
                f"{source.name!r} is missing from {self.directory}")
        return path.read_bytes()


class CachedFetcher:
    """Fetch-once wrapper: verified bytes are cached and reused forever.

    The cache key includes the pinned checksum, so bumping a source's
    ``sha256`` naturally invalidates stale cache entries.  Only bytes that
    pass verification are ever written, and a corrupted cache file is
    re-fetched rather than trusted.
    """

    def __init__(self, inner: Fetcher, cache_dir: Path | None = None):
        self.inner = inner
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def cache_path(self, source: DatasetSource) -> Path:
        return self.cache_dir / f"{source.sha256[:16]}-{source.filename}"

    def fetch(self, source: DatasetSource) -> bytes:
        path = self.cache_path(source)
        if path.is_file():
            payload = path.read_bytes()
            if sha256_hex(payload) == source.sha256:
                self.hits += 1
                return payload
            path.unlink()  # corrupted cache entry: fall through to re-fetch
        payload = self.inner.fetch(source)
        verify_checksum(source, payload)
        self.misses += 1
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(payload)
        tmp.replace(path)
        return payload


def verify_checksum(source: DatasetSource, payload: bytes) -> bytes:
    """Raise :class:`ChecksumMismatchError` unless ``payload`` matches the pin."""
    digest = sha256_hex(payload)
    if digest != source.sha256:
        raise ChecksumMismatchError(
            f"dataset {source.name!r} ({source.filename}): SHA-256 mismatch — "
            f"expected {source.sha256}, got {digest}")
    return payload


def fetch_bytes(source: DatasetSource, *, fetcher: Fetcher | None = None) -> bytes:
    """Resolve and verify the raw bytes of ``source``.

    Without a ``fetcher`` the bundled snapshot is used (fully offline).  A
    custom fetcher — e.g. a network fetcher wrapped in
    :class:`CachedFetcher` — replaces the byte source but never the
    verification: whatever produced the bytes, they must match the pin.
    """
    if fetcher is None:
        fetcher = BundledFetcher()
    return verify_checksum(source, fetcher.fetch(source))


def parse_csv_column(payload: bytes, column: str) -> np.ndarray:
    """Parse one numeric column out of a headered CSV byte snapshot."""
    text = payload.decode("utf-8")
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if len(rows) < 2:
        raise IngestError("CSV snapshot has no data rows")
    header = rows[0]
    try:
        index = header.index(column)
    except ValueError as exc:
        raise IngestError(
            f"column {column!r} not in CSV header {header}") from exc
    try:
        return np.asarray([float(row[index]) for row in rows[1:]],
                          dtype=np.float64)
    except (ValueError, IndexError) as exc:
        raise IngestError(f"cannot parse column {column!r}: {exc}") from exc


def source_to_series(source: DatasetSource, payload: bytes,
                     parse: Callable[[bytes], np.ndarray] | None = None) -> TimeSeries:
    """Build the normalized :class:`TimeSeries` from verified raw bytes."""
    values = (parse(payload) if parse is not None
              else parse_csv_column(payload, source.column))
    metadata = {
        "acf_lags": source.acf_lags,
        "agg_window": source.agg_window,
        "sha256": source.sha256,
        "license": source.license,
        "origin": source.origin,
        "corpus": True,
    }
    metadata.update(source.metadata)
    return TimeSeries(values=values, name=source.name, period=source.period,
                      description=source.description, metadata=metadata)
