"""The bundled real-data evaluation corpus.

Four classic public-domain series ship as CSV snapshots under
``repro/data/corpus/`` so the whole corpus loads offline and byte-identically
on every machine:

* ``airline`` — Box & Jenkins international airline passengers, monthly
  totals 1949–1960 (the canonical seasonal benchmark series).
* ``lynx`` — annual Canadian lynx trappings, MacKenzie River 1821–1934
  (Elton & Nicholson 1942; the classic nonlinear-cycle series).
* ``nile`` — annual Nile flow at Aswan 1871–1970 (Cobb 1978; the classic
  changepoint series).
* ``sunspots`` — Wolfer yearly sunspot numbers 1770–1869 (Box & Jenkins
  Series E; the classic 11-year-cycle series).

Every loader verifies the pinned SHA-256 before parsing, so the scorecard
and the golden kept-set digests are anchored to exact bytes.
"""

from __future__ import annotations

from ..data.timeseries import TimeSeries
from ..exceptions import IngestError
from ..storage.store import TimeSeriesStore
from .pipeline import DatasetSource, Fetcher, fetch_bytes, source_to_series

__all__ = [
    "CORPUS",
    "corpus_names",
    "corpus_source",
    "load_corpus_series",
    "load_corpus",
    "corpus_to_store",
    "verify_corpus",
]

#: The bundled corpus, in citation-year order.  The pinned SHA-256 digests
#: anchor the snapshots: a corrupted or edited CSV fails loudly at load time.
CORPUS: dict[str, DatasetSource] = {
    "airline": DatasetSource(
        name="airline", filename="airline.csv",
        sha256="d27dd74f3654ab4c688afccf2348870410902f480cea900d872be2ae33184411",
        description="monthly international airline passengers 1949-1960 (thousands)",
        license="public domain (Box & Jenkins 1976, Series G)",
        origin="Box, Jenkins & Reinsel, Time Series Analysis, Series G",
        column="passengers", period=12, acf_lags=24),
    "lynx": DatasetSource(
        name="lynx", filename="lynx.csv",
        sha256="7210bf1057112814c3f868e29555d5fff47ff907f791b3cfd8e63329e647887d",
        description="annual Canadian lynx trappings, MacKenzie River 1821-1934",
        license="public domain (Elton & Nicholson 1942)",
        origin="Elton & Nicholson, J. Animal Ecology 11 (1942)",
        column="trappings", period=10, acf_lags=20),
    "nile": DatasetSource(
        name="nile", filename="nile.csv",
        sha256="30c6cb6b0ee6858642dc8667f5ec99c8223ef623acf6f50a966f728edccf1599",
        description="annual Nile river flow at Aswan 1871-1970 (10^8 m^3)",
        license="public domain (Cobb 1978)",
        origin="Cobb, Biometrika 65 (1978)",
        column="flow", period=0, acf_lags=20),
    "sunspots": DatasetSource(
        name="sunspots", filename="sunspots.csv",
        sha256="9c374265a35176628655b698bde7879b76e4feca9c32a4117bed700b5cb50671",
        description="Wolfer yearly sunspot numbers 1770-1869",
        license="public domain (Box & Jenkins 1976, Series E)",
        origin="Box, Jenkins & Reinsel, Time Series Analysis, Series E",
        column="sunspots", period=11, acf_lags=22),
}


def corpus_names() -> list[str]:
    """Names of the bundled corpus series, in corpus order."""
    return list(CORPUS)


def corpus_source(name: str) -> DatasetSource:
    """The :class:`DatasetSource` of one corpus series."""
    key = str(name).strip().lower()
    try:
        return CORPUS[key]
    except KeyError as exc:
        raise IngestError(
            f"unknown corpus series {name!r}; available: {corpus_names()}"
        ) from exc


def load_corpus_series(name: str, *, fetcher: Fetcher | None = None) -> TimeSeries:
    """Load one bundled corpus series (offline, checksum-verified).

    Parameters
    ----------
    name:
        One of :func:`corpus_names` (case-insensitive).
    fetcher:
        Optional byte source replacing the bundled snapshot (e.g. a
        network fetcher wrapped in
        :class:`~repro.ingest.pipeline.CachedFetcher`).  The pinned
        checksum is enforced either way.
    """
    source = corpus_source(name)
    return source_to_series(source, fetch_bytes(source, fetcher=fetcher))


def load_corpus(*, fetcher: Fetcher | None = None) -> dict[str, TimeSeries]:
    """Load every bundled corpus series, keyed by name, in corpus order."""
    return {name: load_corpus_series(name, fetcher=fetcher)
            for name in corpus_names()}


def corpus_to_store(store: TimeSeriesStore | None = None, *, codec: str = "raw",
                    codec_options: dict | None = None,
                    segment_size: int | None = None,
                    fetcher: Fetcher | None = None) -> TimeSeriesStore:
    """Normalize the whole corpus into a :class:`TimeSeriesStore`.

    Each series is created (with its corpus metadata), appended, and
    flushed, so the returned store answers reads for every series
    immediately.  Pass an existing ``store`` to ingest into it.
    """
    if store is None:
        store = TimeSeriesStore()
    for name in corpus_names():
        series = load_corpus_series(name, fetcher=fetcher)
        store.create_series(series.name, codec=codec,
                            codec_options=dict(codec_options or {}) or None,
                            segment_size=segment_size,
                            metadata=dict(series.metadata))
        store.append(series.name, series.values)
        store.flush(series.name)
    return store


def verify_corpus() -> dict[str, str]:
    """Verify every bundled snapshot against its pin; returns name -> sha256.

    Raises :class:`~repro.exceptions.ChecksumMismatchError` on the first
    corrupted snapshot.
    """
    digests: dict[str, str] = {}
    for name, source in CORPUS.items():
        fetch_bytes(source)
        digests[name] = source.sha256
    return digests
