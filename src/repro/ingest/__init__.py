"""Real-data ingest layer: checksum-pinned pipelines and the bundled corpus."""

from .corpus import (
    CORPUS,
    corpus_names,
    corpus_source,
    corpus_to_store,
    load_corpus,
    load_corpus_series,
    verify_corpus,
)
from .pipeline import (
    BUNDLED_DIR,
    BundledFetcher,
    CachedFetcher,
    DatasetSource,
    Fetcher,
    default_cache_dir,
    fetch_bytes,
    parse_csv_column,
    sha256_hex,
    source_to_series,
)

__all__ = [
    "BUNDLED_DIR",
    "CORPUS",
    "corpus_names",
    "corpus_source",
    "corpus_to_store",
    "load_corpus",
    "load_corpus_series",
    "verify_corpus",
    "BundledFetcher",
    "CachedFetcher",
    "DatasetSource",
    "Fetcher",
    "default_cache_dir",
    "fetch_bytes",
    "parse_csv_column",
    "sha256_hex",
    "source_to_series",
]
