"""Figure 12a (EXP1) — forecasting accuracy vs CR for CAMEO distance variants.

The paper compresses Box-Cox-transformed, standardised Pedestrian series at
controlled compression ratios (compression-centric mode, Definition 3) with
CAMEO under different ACF-deviation measures (MAE, RMSE, MAPE, Chebyshev) and
with the line-simplification baselines, then forecasts the last 24 points
with Holt-Winters.  Chebyshev — which spreads the ACF error budget evenly
over lags — is the best CAMEO variant; all CAMEO variants degrade more
slowly than the baselines.
"""

from __future__ import annotations

import numpy as np

from bench_config import FORECAST_RATIOS
from repro.benchlib import bench_dataset, format_table
from repro.core import CameoCompressor
from repro.forecasting import BoxCoxTransform, HoltWinters, evaluate_forecast, train_test_split
from repro.simplify import AcfConstrainedSimplifier, make_simplifier

HORIZON = 24
CAMEO_METRICS = ("mae", "rmse", "cheb")
BASELINES = ("VW", "TPs", "PIPv")


def _prepare_series() -> tuple[np.ndarray, np.ndarray, int]:
    series = bench_dataset("Pedestrian")
    transform = BoxCoxTransform()
    transformed = transform.fit_transform(series.values + 1.0)
    train, test = train_test_split(transformed, HORIZON)
    return train, test, series.metadata["acf_lags"]


def _error(train: np.ndarray, test: np.ndarray, period: int) -> float:
    return evaluate_forecast(HoltWinters(period), train, test, metric="rmse").error


def _sweep() -> list:
    train, test, period = _prepare_series()
    raw_error = _error(train, test, period)
    rows = [["raw", "-", "-", f"{raw_error:.4f}"]]
    for ratio in FORECAST_RATIOS:
        for metric in CAMEO_METRICS:
            result = CameoCompressor(period, epsilon=None, target_ratio=ratio,
                                     metric=metric).compress(train)
            error = _error(result.decompress(), test, period)
            rows.append([f"CAMEO-{metric.upper()}", f"{ratio:.0f}",
                         f"{result.compression_ratio():.1f}", f"{error:.4f}"])
        for name in BASELINES:
            adapter = AcfConstrainedSimplifier(make_simplifier(name), period,
                                               epsilon=None, target_ratio=ratio)
            result = adapter.compress(train)
            error = _error(result.decompress(), test, period)
            rows.append([name, f"{ratio:.0f}", f"{result.compression_ratio():.1f}",
                         f"{error:.4f}"])
    return rows


def test_figure12a_distance_metric_evaluation(benchmark):
    """Regenerate the EXP1 accuracy-vs-CR table."""
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(["Method", "Target CR", "Achieved CR", "Forecast RMSE"], rows,
                       title="Figure 12a (EXP1): Holt-Winters forecast error on "
                             "compressed Pedestrian data"))

    raw_error = float(rows[0][3])
    cameo_errors = [float(r[3]) for r in rows if r[0].startswith("CAMEO")]
    baseline_errors = [float(r[3]) for r in rows if r[0] in BASELINES]
    # CAMEO variants stay within a sane multiple of the raw accuracy and are,
    # on average, no worse than the baselines at the same ratios.
    assert np.mean(cameo_errors) <= 3.0 * max(raw_error, 0.05)
    assert np.mean(cameo_errors) <= 1.25 * np.mean(baseline_errors)
