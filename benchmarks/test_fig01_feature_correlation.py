"""Figure 1 — correlation between feature deviations and forecasting impact.

The paper compresses three dataset families with the DFT at many levels,
measures (a) the deviation of several statistical features and (b) the impact
on forecasting accuracy, and reports the Pearson correlation between the two.
The headline observation: ACF/PACF-family features correlate with the
forecasting impact more strongly than NRMSE/PSNR.

This benchmark reproduces the protocol on synthetic stand-ins (Pedestrian- and
ElecPower-like families) with the FFT compressor and Holt-Winters forecasts.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.compressors import FFTCompressor
from repro.features import feature_deviations
from repro.forecasting import HoltWinters, evaluate_forecast, train_test_split
from repro.metrics import pearson_correlation

COMPRESSION_LEVELS = (0.5, 0.3, 0.2, 0.1, 0.05, 0.02)
FEATURES_REPORTED = ("trend_strength", "linearity", "curvature", "nonlinearity",
                     "psnr", "nrmse", "acf10", "acf1", "pacf5")
DATASETS = ("Pedestrian", "ElecPower", "UKElecDem")


def _collect(dataset_name: str) -> dict[str, float]:
    series = bench_dataset(dataset_name)
    period = max(series.metadata["acf_lags"], 8)
    train, test = train_test_split(series.values, period)
    baseline_error = evaluate_forecast(HoltWinters(period), train, test).error

    forecast_impact: list[float] = []
    deviations: dict[str, list[float]] = {name: [] for name in FEATURES_REPORTED}
    for level in COMPRESSION_LEVELS:
        reconstruction = FFTCompressor(level).compress(train).decompress()
        error = evaluate_forecast(HoltWinters(period), reconstruction, test).error
        forecast_impact.append(abs(error - baseline_error))
        per_feature = feature_deviations(train, reconstruction, period=period)
        for name in FEATURES_REPORTED:
            deviations[name].append(per_feature[name])

    impact = np.asarray(forecast_impact)
    return {name: pearson_correlation(np.asarray(values), impact)
            for name, values in deviations.items()}


def test_figure1_feature_forecast_correlation(benchmark):
    """Regenerate the Figure 1 correlation matrix."""
    correlations = benchmark.pedantic(
        lambda: {name: _collect(name) for name in DATASETS}, rounds=1, iterations=1)

    rows = []
    for dataset, values in correlations.items():
        rows.append([dataset] + [f"{values[name]:+.2f}" for name in FEATURES_REPORTED])
    average = [float(np.mean([correlations[d][name] for d in DATASETS]))
               for name in FEATURES_REPORTED]
    rows.append(["Average"] + [f"{value:+.2f}" for value in average])
    print()
    print(format_table(["Dataset"] + list(FEATURES_REPORTED), rows,
                       title="Figure 1: Pearson correlation of feature deviation vs "
                             "forecast impact (FFT compression levels)"))

    by_name = dict(zip(FEATURES_REPORTED, average))
    # Paper shape: the ACF-family features correlate at least as strongly as
    # the simple shape features (trend/linearity/curvature).
    acf_family = max(by_name["acf1"], by_name["acf10"], by_name["pacf5"])
    assert acf_family > by_name["trend_strength"] - 0.05
    assert acf_family > by_name["linearity"] - 0.05
    assert np.isfinite(list(by_name.values())).all()
