"""Table 3 — single-threaded compression times.

Times every baseline and CAMEO (with blocking neighbourhoods from 1x to 10x
log n and without blocking) on two representative datasets.  Absolute numbers
are not comparable to the paper's Cython/OpenMP implementation; the *shape* —
PMC/FFT fastest, CAMEO's cost growing roughly linearly with the blocking
size, no-blocking being far slower — is what the assertions check.
"""

from __future__ import annotations

import time

from repro.benchlib import (
    LINE_SIMPLIFIERS,
    LOSSY_BASELINES,
    bench_dataset,
    format_table,
    run_cameo,
    run_line_simplifier,
    run_lossy_baseline,
)

DATASETS = ("ElecPower", "Pedestrian")
EPSILON = 0.01
CAMEO_BLOCKINGS = ("logn", "5logn", "10logn")


def _collect() -> dict:
    timings: dict[str, dict[str, float]] = {}
    for name in DATASETS:
        series = bench_dataset(name)
        row: dict[str, float] = {}
        for baseline in LOSSY_BASELINES:
            row[baseline] = run_lossy_baseline(baseline, series, EPSILON).elapsed_seconds
        for baseline in LINE_SIMPLIFIERS[:3]:  # VW, TPs, TPm
            row[baseline] = run_line_simplifier(baseline, series, EPSILON).elapsed_seconds
        for blocking in CAMEO_BLOCKINGS:
            start = time.perf_counter()
            run_cameo(series, EPSILON, blocking=blocking)
            row[f"CAMEO {blocking}"] = time.perf_counter() - start
        timings[name] = row
    return timings


def test_table3_compression_times(benchmark):
    """Regenerate Table 3 (compression times)."""
    timings = benchmark.pedantic(_collect, rounds=1, iterations=1)

    columns = list(next(iter(timings.values())).keys())
    rows = [[name] + [f"{timings[name][col]:.3f}" for col in columns] for name in timings]
    print()
    print(format_table(["Dataset"] + columns, rows,
                       title=f"Table 3: Compression times [s] (epsilon={EPSILON})"))

    for name, row in timings.items():
        # The cheap functional baselines are faster than any CAMEO setting.
        fastest_baseline = min(row[b] for b in LOSSY_BASELINES)
        assert fastest_baseline <= row["CAMEO 10logn"], name
        # Wider blocking costs at least as much as the narrowest setting
        # (allowing small timer noise).
        assert row["CAMEO 10logn"] >= 0.5 * row["CAMEO logn"], name
