"""Table 4 — decompression times.

Measures the time to reconstruct the regular series from each compressed
representation at a shared 10x compression ratio.  The paper's observation:
line-simplification decompression (a single linear-interpolation pass) is the
fastest, while the FFT pays an O(n log n) inverse transform.
"""

from __future__ import annotations

import time

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.compressors import FFTCompressor, PoorMansCompressionMean, SimPiece, SwingFilter
from repro.core import CameoCompressor

DATASETS = ("AUSElecDem", "Humidity", "IRBioTemp", "SolarPower")
TARGET_RATIO = 10.0


def _prepare(series):
    """Build every method's representation at roughly the target ratio."""
    values = series.values
    n = values.size
    value_range = float(values.max() - values.min()) or 1.0
    representations = {}
    representations["CAMEO"] = CameoCompressor(
        series.metadata["acf_lags"], epsilon=None, target_ratio=TARGET_RATIO,
        agg_window=series.metadata["agg_window"]).compress(values)

    # Tune each baseline's knob to land near the target stored-value budget.
    target_stored = n / TARGET_RATIO
    for name, factory in (
            ("PMC", lambda b: PoorMansCompressionMean(b * value_range)),
            ("SWING", lambda b: SwingFilter(b * value_range)),
            ("SP", lambda b: SimPiece(b * value_range))):
        bound, model = 0.005, None
        for _ in range(12):
            model = factory(bound).compress(values)
            if model.stored_values <= target_stored:
                break
            bound *= 2.0
        representations[name] = model
    representations["FFT"] = FFTCompressor(
        keep_components=max(int(n / TARGET_RATIO / 3), 2)).compress(values)
    return representations


def _time_decompression(representation, repeats: int = 5) -> float:
    start = time.perf_counter()
    for _ in range(repeats):
        representation.decompress()
    return (time.perf_counter() - start) / repeats * 1000.0


def test_table4_decompression_times(benchmark):
    """Regenerate Table 4 (decompression times in milliseconds)."""
    def collect():
        table = {}
        for name in DATASETS:
            series = bench_dataset(name)
            representations = _prepare(series)
            table[name] = {method: _time_decompression(rep)
                           for method, rep in representations.items()}
        return table

    table = benchmark.pedantic(collect, rounds=1, iterations=1)
    columns = ["PMC", "SWING", "SP", "FFT", "CAMEO"]
    rows = [[name] + [f"{table[name][c]:.3f}" for c in columns] for name in table]
    print()
    print(format_table(["Dataset"] + columns, rows,
                       title="Table 4: Decompression times [ms] at ~10x compression"))

    for name, timings in table.items():
        assert all(np.isfinite(list(timings.values())))
        # Linear-interpolation decompression is never the slowest method.
        slowest = max(timings, key=timings.get)
        assert slowest != "CAMEO", f"CAMEO decompression slowest on {name}"
