"""Figure 12c (EXP3) — highly seasonal series, CAMEO vs VW at large ratios.

On strongly seasonal data (UKElecDem- and MinTemp-like), the paper shows that
CAMEO keeps DHR-ARIMA and LSTM forecasting accuracy essentially flat even as
the compression ratio grows large, because the few retained points preserve
the seasonal autocorrelation.  This benchmark reproduces the sweep with the
DHR and MLP models at two target ratios per dataset.
"""

from __future__ import annotations

import numpy as np

from bench_config import SEASONAL_RATIOS
from repro.benchlib import bench_dataset, format_table
from repro.core import CameoCompressor
from repro.forecasting import evaluate_forecast, make_forecaster, train_test_split
from repro.simplify import AcfConstrainedSimplifier, VisvalingamWhyatt

DATASETS = ("UKElecDem", "MinTemp")
MODELS = ("dhr-arima", "mlp")


def _sweep() -> list:
    rows = []
    for dataset_name in DATASETS:
        series = bench_dataset(dataset_name)
        period = min(series.metadata["acf_lags"], len(series) // 4)
        horizon = min(period, 48)
        train, test = train_test_split(series.values, horizon)

        for model_name in MODELS:
            raw_error = evaluate_forecast(
                make_forecaster(model_name, period=period), train, test).error
            rows.append([dataset_name, model_name, "raw", "-", f"{raw_error:.4f}"])
            for ratio in SEASONAL_RATIOS:
                cameo = CameoCompressor(period, epsilon=None,
                                        target_ratio=ratio).compress(train)
                vw = AcfConstrainedSimplifier(VisvalingamWhyatt(), period, epsilon=None,
                                              target_ratio=ratio).compress(train)
                for method, result in (("CAMEO", cameo), ("VW", vw)):
                    error = evaluate_forecast(
                        make_forecaster(model_name, period=period),
                        result.decompress(), test).error
                    rows.append([dataset_name, model_name, method, f"{ratio:.0f}",
                                 f"{error:.4f}"])
    return rows


def test_figure12c_highly_seasonal_forecasting(benchmark):
    """Regenerate the EXP3 accuracy-vs-CR sweep."""
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(["Dataset", "Model", "Method", "Target CR", "mSMAPE"], rows,
                       title="Figure 12c (EXP3): forecasting on highly seasonal data"))

    for dataset_name in DATASETS:
        for model_name in MODELS:
            raw = [float(r[4]) for r in rows
                   if r[0] == dataset_name and r[1] == model_name and r[2] == "raw"][0]
            cameo_errors = [float(r[4]) for r in rows
                            if r[0] == dataset_name and r[1] == model_name
                            and r[2] == "CAMEO"]
            # CAMEO keeps the error in the same band as the raw training data
            # even at the largest ratio.  The factor is generous because the
            # smoke-scale datasets are short and the MLP (LSTM stand-in) is a
            # noisy learner at 15x compression of an 800-point series.
            assert max(cameo_errors) <= max(5.0 * raw, raw + 0.6), (
                f"{dataset_name}/{model_name}: CAMEO degraded too much")
            assert all(np.isfinite(cameo_errors))
