"""Figure 7 — compression ratio vs ACF error bound, lossy compressor baselines.

PMC, SWING, Sim-Piece and FFT cannot bound the ACF directly, so (as in the
paper) their own error knob is tuned by trial-and-error until the measured
ACF deviation meets the target.  CAMEO is run with the bound enforced
directly.  The figure records the compression ratio each method reaches at
the same ACF deviation budget.
"""

from __future__ import annotations

import numpy as np

from bench_config import SWEEP_EPSILONS
from repro.benchlib import LOSSY_BASELINES, format_table, run_cameo, run_lossy_baseline


def _sweep(datasets) -> list:
    records = []
    for series in datasets.values():
        for epsilon in SWEEP_EPSILONS:
            records.append(run_cameo(series, epsilon))
            for name in LOSSY_BASELINES:
                records.append(run_lossy_baseline(name, series, epsilon))
    return records


def test_figure7_compression_ratio_lossy_baselines(benchmark, sweep_datasets):
    """Regenerate the Figure 7 CR-vs-epsilon series."""
    records = benchmark.pedantic(lambda: _sweep(sweep_datasets), rounds=1, iterations=1)

    headers = ["Method", "Dataset", "Epsilon", "CR", "ACF dev", "NRMSE", "Time [s]"]
    print()
    print(format_table(headers, [r.as_row() for r in records],
                       title="Figure 7: Compression ratio vs ACF error bound "
                             "(lossy compressor baselines)"))

    # CAMEO always meets the bound; the tuned baselines must not overshoot
    # the bound either (the search only accepts parameters below it unless no
    # parameter at all was feasible).
    for record in records:
        if record.method == "CAMEO":
            assert record.acf_deviation <= record.epsilon + 1e-6

    # Paper shape: averaged over datasets and bounds, CAMEO is at least
    # competitive with every baseline family (it may lose on individual
    # datasets, e.g. FFT on low-frequency-dominated data).
    cameo_mean = np.mean([r.compression_ratio for r in records if r.method == "CAMEO"])
    baseline_best = max(
        np.mean([r.compression_ratio for r in records if r.method == name])
        for name in LOSSY_BASELINES)
    assert cameo_mean >= 0.5 * baseline_best
