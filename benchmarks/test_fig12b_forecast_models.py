"""Figure 12b (EXP2) — forecasting accuracy of CAMEO vs lossy baselines.

Follows the Monash-benchmark protocol on the Pedestrian stand-in: compress
the training window at increasing compression ratios with CAMEO and with the
functional-approximation baselines, train STL-ETS, STL-ARIMA, and the MLP
(LSTM stand-in) on the decompressed data, and measure mSMAPE against the raw
hold-out.
"""

from __future__ import annotations

import numpy as np

from bench_config import FORECAST_RATIOS
from repro.benchlib import bench_dataset, format_table
from repro.compressors import FFTCompressor, SwingFilter
from repro.core import CameoCompressor
from repro.forecasting import evaluate_forecast, make_forecaster, train_test_split

HORIZON = 24
MODELS = ("stl-ets", "mlp")


def _compressed_training_sets(train: np.ndarray, period: int, ratio: float) -> dict:
    outputs = {}
    cameo = CameoCompressor(period, epsilon=None, target_ratio=ratio).compress(train)
    outputs["CAMEO"] = cameo.decompress()

    value_range = float(train.max() - train.min()) or 1.0
    bound, model = 0.01, None
    for _ in range(14):
        model = SwingFilter(bound * value_range).compress(train)
        if model.compression_ratio() >= ratio:
            break
        bound *= 1.8
    outputs["SWING"] = model.decompress()

    keep = max(int(train.size / ratio / 3), 2)
    outputs["FFT"] = FFTCompressor(keep_components=keep).compress(train).decompress()
    return outputs


def _sweep() -> list:
    series = bench_dataset("Pedestrian")
    period = series.metadata["acf_lags"]
    train, test = train_test_split(series.values, HORIZON)

    rows = []
    raw_errors = {}
    for model_name in MODELS:
        raw_errors[model_name] = evaluate_forecast(
            make_forecaster(model_name, period=period), train, test).error
        rows.append([model_name, "raw", "-", f"{raw_errors[model_name]:.4f}"])

    for ratio in FORECAST_RATIOS:
        training_sets = _compressed_training_sets(train, period, ratio)
        for model_name in MODELS:
            for compressor_name, training in training_sets.items():
                error = evaluate_forecast(
                    make_forecaster(model_name, period=period), training, test).error
                rows.append([model_name, compressor_name, f"{ratio:.0f}", f"{error:.4f}"])
    return rows


def test_figure12b_forecast_models(benchmark):
    """Regenerate the EXP2 mSMAPE table."""
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    print()
    print(format_table(["Model", "Compressor", "Target CR", "mSMAPE"], rows,
                       title="Figure 12b (EXP2): forecast accuracy on compressed "
                             "Pedestrian data"))

    for model_name in MODELS:
        raw = [float(r[3]) for r in rows if r[0] == model_name and r[1] == "raw"][0]
        cameo = np.mean([float(r[3]) for r in rows
                         if r[0] == model_name and r[1] == "CAMEO"])
        others = np.mean([float(r[3]) for r in rows
                          if r[0] == model_name and r[1] in ("SWING", "FFT")])
        # CAMEO's training data keeps the model within a reasonable band of the
        # raw accuracy and is competitive with the baselines on average.
        assert cameo <= max(3.0 * raw, raw + 0.5)
        assert cameo <= 1.5 * others
