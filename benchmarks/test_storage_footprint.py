"""Storage-engine footprint — Table 2's bits/value through the full ingest path.

Table 2 of the paper compares bits/value of CAMEO, VW, Gorilla and Chimp on
whole series.  This benchmark repeats the comparison through the storage
substrate (:mod:`repro.storage`): the same synthetic series is ingested into
one store per codec (sealed segments, buffered tail, per-segment summaries)
and the per-series footprint plus an aggregate-query pushdown statistic is
reported.

Shape assertions mirror the paper's conclusions: CAMEO's footprint undercuts
the lossless codecs and the raw representation at a small ACF deviation,
while the lossless codecs remain exact.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.stats import acf
from repro.storage import QueryEngine, TimeSeriesStore

SEGMENT_SIZE = 1_024
DATASET = "Humidity"


def _codec_specs(series) -> dict:
    max_lag = int(series.metadata.get("acf_lags", 24))
    agg_window = int(series.metadata.get("agg_window", 1))
    value_range = float(np.ptp(series.values))
    return {
        "raw": ("raw", {}),
        "gorilla": ("gorilla", {}),
        "chimp": ("chimp", {}),
        "cameo": ("cameo", {"max_lag": max_lag, "epsilon": 1e-3,
                            "agg_window": agg_window}),
        "vw": ("vw", {"max_lag": max_lag, "epsilon": 1e-3,
                      "agg_window": agg_window}),
        "swing": ("swing", {"error_bound": 0.01 * value_range}),
    }


def _ingest_all(series) -> dict:
    store = TimeSeriesStore(default_segment_size=SEGMENT_SIZE)
    records = {}
    max_lag = int(series.metadata.get("acf_lags", 24))
    for label, (codec, options) in _codec_specs(series).items():
        store.create_series(label, codec=codec, codec_options=options or None)
        store.append(label, series.values)
        store.flush(label)
        info = store.info(label)
        reconstruction = store.read(label)
        deviation = float(np.mean(np.abs(
            acf(series.values, max_lag) - acf(reconstruction, max_lag))))
        query = QueryEngine(store).aggregate(label, "mean", start=0,
                                             stop=SEGMENT_SIZE * 2)
        records[label] = {
            "bits_per_value": info.bits_per_value,
            "ratio": info.compression_ratio,
            "acf_deviation": deviation,
            "segments": info.segments,
            "pushdown": query.pushdown_fraction,
        }
    return records


def test_storage_footprint_per_codec(benchmark):
    """Regenerate the Table 2 comparison through the storage engine."""
    series = bench_dataset(DATASET)
    records = benchmark.pedantic(lambda: _ingest_all(series), rounds=1, iterations=1)

    print()
    print(format_table(
        ["Codec", "Bits/value", "CR", "ACF dev", "Segments", "Pushdown"],
        [[label, f"{r['bits_per_value']:.2f}", f"{r['ratio']:.2f}",
          f"{r['acf_deviation']:.5f}", str(r["segments"]), f"{r['pushdown']:.0%}"]
         for label, r in records.items()],
        title=f"Storage footprint on {DATASET} (segment size {SEGMENT_SIZE})"))

    # Raw is the 64 bits/value yardstick; lossless codecs must be exact.
    assert records["raw"]["bits_per_value"] == 64.0
    for lossless in ("raw", "gorilla", "chimp"):
        assert records[lossless]["acf_deviation"] <= 1e-12
    # CAMEO and VW hold the ACF bound per sealed segment; the end-to-end
    # deviation stays the same order of magnitude (cross-segment slack).
    for bounded in ("cameo", "vw"):
        assert records[bounded]["acf_deviation"] <= 1e-2
    # Paper Table 2's shape: CAMEO's footprint undercuts the lossless codecs
    # and VW at matching (small) ACF deviation.
    assert records["cameo"]["bits_per_value"] < records["gorilla"]["bits_per_value"]
    assert records["cameo"]["bits_per_value"] < records["chimp"]["bits_per_value"]
    assert records["cameo"]["bits_per_value"] <= records["vw"]["bits_per_value"] + 1e-9
    # Aggregate queries over full segments are answered from summaries alone.
    assert records["cameo"]["pushdown"] == 1.0
