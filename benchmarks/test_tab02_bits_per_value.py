"""Table 2 — bits/value of lossless codecs vs VW and CAMEO.

Gorilla and Chimp compress the raw doubles losslessly; VW and CAMEO are run
at small ACF error bounds and charged 64 bits per retained point.  The table
reports, per dataset, the bits/value of each method and the bound used for
the lossy ones, mirroring the paper's Table 2 (where CAMEO reaches lower
bits/value than both lossless codecs at very small ACF deviation).
"""

from __future__ import annotations

from repro.benchlib import bench_dataset, format_table
from repro.core import CameoCompressor
from repro.data import dataset_names
from repro.lossless import ChimpCodec, GorillaCodec
from repro.simplify import AcfConstrainedSimplifier, VisvalingamWhyatt

#: ACF error bounds per group (the paper uses dataset-specific bounds in the
#: 1e-5..7e-3 range; group-2 datasets get the tighter bound).
EPSILON_GROUP1 = 5e-3
EPSILON_GROUP2 = 1e-3


def _row(name: str) -> list:
    series = bench_dataset(name)
    values = series.values
    max_lag = series.metadata["acf_lags"]
    agg_window = series.metadata["agg_window"]
    epsilon = EPSILON_GROUP1 if agg_window == 1 else EPSILON_GROUP2

    gorilla = GorillaCodec().bits_per_value(values)
    chimp = ChimpCodec().bits_per_value(values)

    vw = AcfConstrainedSimplifier(VisvalingamWhyatt(), max_lag, epsilon,
                                  agg_window=agg_window).compress(values)
    cameo = CameoCompressor(max_lag, epsilon, agg_window=agg_window).compress(values)
    return [name, f"{gorilla:.2f}", f"{chimp:.2f}",
            f"{vw.bits_per_value():.2f}", f"{epsilon:g}",
            f"{cameo.bits_per_value():.2f}", f"{epsilon:g}"]


def test_table2_bits_per_value(benchmark):
    """Regenerate Table 2 (bits/value comparison)."""
    rows = benchmark.pedantic(lambda: [_row(name) for name in dataset_names()],
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["Dataset", "Gorilla", "Chimp", "VW bits/v", "VW eps", "CAMEO bits/v", "CAMEO eps"],
        rows, title="Table 2: Bits/value of lossless codecs vs ACF-bounded compression"))

    for row in rows:
        name = row[0]
        gorilla, chimp = float(row[1]), float(row[2])
        vw_bits, cameo_bits = float(row[3]), float(row[5])
        # Lossless codecs stay in a plausible band for 64-bit doubles.
        assert 1.0 <= gorilla <= 80.0 and 1.0 <= chimp <= 80.0
        # CAMEO (and VW) reach lower bits/value than the best lossless codec
        # on these smooth, seasonal series — the paper's Table 2 shape.
        assert cameo_bits <= min(gorilla, chimp) + 1e-9, f"CAMEO not smaller on {name}"
        assert vw_bits <= 64.0
