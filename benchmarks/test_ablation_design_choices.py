"""Ablations of CAMEO's design choices (DESIGN.md Section 5).

Three ablations complement the paper's figures:

* constraint metric (MAE vs Chebyshev vs RMSE) at a fixed budget,
* ACF on the raw series vs on window aggregates of different sizes,
* greedy policy at the stopping point (``stop`` vs ``skip``).
"""

from __future__ import annotations

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.compressors import acf_deviation_of
from repro.core import CameoCompressor


def _metric_ablation(series) -> list:
    max_lag = series.metadata["acf_lags"]
    rows = []
    for metric in ("mae", "cheb", "rmse"):
        result = CameoCompressor(max_lag, 0.01, metric=metric).compress(series.values)
        deviation = acf_deviation_of(series.values, result.decompress(), max_lag,
                                     metric=metric)
        rows.append(["metric", metric, f"{result.compression_ratio():.2f}",
                     f"{deviation:.5f}"])
    return rows


def _aggregation_ablation(series) -> list:
    rows = []
    for window in (1, 12, 24):
        result = CameoCompressor(12, 0.01, agg_window=window).compress(series.values)
        deviation = acf_deviation_of(series.values, result.decompress(), 12,
                                     agg_window=window)
        rows.append(["agg_window", str(window), f"{result.compression_ratio():.2f}",
                     f"{deviation:.5f}"])
    return rows


def _policy_ablation(series) -> list:
    max_lag = series.metadata["acf_lags"]
    rows = []
    for policy in ("stop", "skip"):
        result = CameoCompressor(max_lag, 0.01, on_violation=policy).compress(series.values)
        deviation = acf_deviation_of(series.values, result.decompress(), max_lag)
        rows.append(["on_violation", policy, f"{result.compression_ratio():.2f}",
                     f"{deviation:.5f}"])
    return rows


def test_ablation_design_choices(benchmark):
    """Run the three ablations and verify the expected orderings."""
    series = bench_dataset("Pedestrian")
    rows = benchmark.pedantic(
        lambda: _metric_ablation(series) + _aggregation_ablation(series)
        + _policy_ablation(series),
        rounds=1, iterations=1)
    print()
    print(format_table(["Ablation", "Setting", "CR", "Deviation"], rows,
                       title=f"CAMEO design-choice ablations on {series.name}"))

    by_key = {(r[0], r[1]): float(r[2]) for r in rows}
    deviations = {(r[0], r[1]): float(r[3]) for r in rows}
    # Every configuration honours its bound.
    assert all(value <= 0.01 + 1e-6 for value in deviations.values())
    # The exhaustive policy can only improve compression over early stopping.
    assert by_key[("on_violation", "skip")] >= by_key[("on_violation", "stop")] - 1e-9
    # All settings achieve real compression.
    assert all(value > 1.0 for value in by_key.values())
    assert np.isfinite(list(by_key.values())).all()
