"""Figure 6 — compression ratio vs ACF error bound, line-simplification baselines.

For each dataset and each ACF error bound, run CAMEO and the ACF-constrained
adaptations of VW, TPs, TPm, PIPv, PIPe, and record the achieved compression
ratio.  The paper's finding: CAMEO consistently achieves the highest CR at
the same bound because it is the only method whose removal order optimises
the ACF directly.
"""

from __future__ import annotations

import numpy as np

from bench_config import SWEEP_EPSILONS
from repro.benchlib import LINE_SIMPLIFIERS, format_table, run_cameo, run_line_simplifier


def _sweep(datasets) -> list:
    records = []
    for series in datasets.values():
        for epsilon in SWEEP_EPSILONS:
            records.append(run_cameo(series, epsilon))
            for name in LINE_SIMPLIFIERS:
                records.append(run_line_simplifier(name, series, epsilon))
    return records


def test_figure6_compression_ratio_line_simplification(benchmark, sweep_datasets):
    """Regenerate the Figure 6 CR-vs-epsilon series."""
    records = benchmark.pedantic(lambda: _sweep(sweep_datasets), rounds=1, iterations=1)

    headers = ["Method", "Dataset", "Epsilon", "CR", "ACF dev", "NRMSE", "Time [s]"]
    print()
    print(format_table(headers, [r.as_row() for r in records],
                       title="Figure 6: Compression ratio vs ACF error bound "
                             "(line-simplification baselines)"))

    # --- paper-shape assertions ------------------------------------------ #
    methods = ["CAMEO"] + list(LINE_SIMPLIFIERS)
    for record in records:
        assert record.acf_deviation <= record.epsilon + 1e-6, (
            f"{record.method} violated the bound on {record.dataset}")

    for dataset in sweep_datasets:
        for method in methods:
            ratios = [r.compression_ratio for r in records
                      if r.dataset == dataset and r.method == method]
            # CR is monotone (non-decreasing) in the error bound.
            assert all(b >= a - 1e-9 for a, b in zip(ratios, ratios[1:])), (
                f"{method} CR not monotone on {dataset}")

    # CAMEO wins (or ties within 10%) against the best baseline on average.
    cameo_mean = np.mean([r.compression_ratio for r in records if r.method == "CAMEO"])
    for method in LINE_SIMPLIFIERS:
        baseline_mean = np.mean([r.compression_ratio for r in records
                                 if r.method == method])
        assert cameo_mean >= 0.9 * baseline_mean, (
            f"CAMEO ({cameo_mean:.2f}) should not lose clearly to {method} "
            f"({baseline_mean:.2f}) on average")
