"""Figure 8 — NRMSE of the reconstruction as the compression ratio increases.

All methods (CAMEO, the line-simplification baselines, and the lossy
compressors) are driven to comparable compression ratios and the NRMSE of the
reconstruction is recorded.  The paper's observation: no method dominates;
CAMEO sits in the middle of the field (it optimises the ACF, not the
point-wise error) and is never the worst.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib import (
    LINE_SIMPLIFIERS,
    LOSSY_BASELINES,
    format_table,
    run_cameo,
    run_line_simplifier,
    run_lossy_baseline,
)

EPSILON = 0.02


def _collect(datasets) -> list:
    records = []
    for series in datasets.values():
        records.append(run_cameo(series, EPSILON))
        for name in LINE_SIMPLIFIERS:
            records.append(run_line_simplifier(name, series, EPSILON))
        for name in LOSSY_BASELINES:
            records.append(run_lossy_baseline(name, series, EPSILON))
    return records


def test_figure8_nrmse_vs_compression(benchmark, sweep_datasets):
    """Regenerate the Figure 8 NRMSE-vs-CR points (one bound per method)."""
    records = benchmark.pedantic(lambda: _collect(sweep_datasets), rounds=1, iterations=1)

    headers = ["Method", "Dataset", "Epsilon", "CR", "ACF dev", "NRMSE", "Time [s]"]
    print()
    print(format_table(headers, [r.as_row() for r in records],
                       title=f"Figure 8: NRMSE at a shared ACF budget (eps={EPSILON})"))

    all_methods = ["CAMEO"] + list(LINE_SIMPLIFIERS) + list(LOSSY_BASELINES)
    for dataset in sweep_datasets:
        nrmse_by_method = {r.method: r.nrmse for r in records if r.dataset == dataset}
        # CAMEO optimises the ACF, not the point-wise error, yet the paper's
        # observation (Section 5.3) is that its NRMSE stays on par with the
        # field: never dramatically worse than the typical method.
        baseline_median = float(np.median([v for k, v in nrmse_by_method.items() if k != "CAMEO"]))
        assert nrmse_by_method["CAMEO"] <= max(2.0 * baseline_median, 0.05)
        for method in all_methods:
            assert np.isfinite(nrmse_by_method[method])
            assert nrmse_by_method[method] < 1.0
