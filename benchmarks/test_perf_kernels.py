"""Kernel perf-regression harness (opt-in: ``pytest benchmarks -m perf``).

Times the vectorized hot-path kernels — block bitstream, Gorilla/Chimp
codecs, and the end-to-end CAMEO compressor — and emits ``BENCH_kernels.json``
(ops/sec + speedup ratios) so future PRs have a trajectory to beat.

The codec/bitstream regression thresholds are *relative*: the block kernels
are compared against the preserved per-bit reference implementations
(:mod:`repro._kernels.reference`) measured in the same process, which makes
the ≥5× assertions hardware-independent.  The end-to-end CAMEO check also
asserts against the recorded seed-era absolute throughput; disable that one
comparison with ``REPRO_PERF_NO_ABSOLUTE=1`` on incomparable hardware.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from bench_config import (
    PERF_BITSTREAM_FIELDS,
    PERF_CAMEO_EPSILON,
    PERF_CAMEO_LENGTH,
    PERF_CAMEO_MAX_LAG,
    PERF_CAMEO_PACF_LENGTH,
    PERF_CAMEO_PACF_MAX_LAG,
    PERF_CODEC_LENGTH,
    PERF_ENGINE_LENGTH,
    PERF_ENGINE_LOCKSTEP_LENGTH,
    PERF_ENGINE_LOCKSTEP_MAX_LAG,
    PERF_ENGINE_LOCKSTEP_SERIES,
    PERF_ENGINE_MAX_LAG,
    PERF_ENGINE_SERIES,
    PERF_ENGINE_TARGET_RATIO,
    PERF_ENGINE_WORKERS,
    PERF_ENGINE_XOR_LENGTH,
    PERF_ENGINE_XOR_SERIES,
    PERF_HEAP_CAPACITY,
    PERF_HEAP_REKEY_ROUNDS,
    PERF_HOPS_BATCH_INDICES,
    PERF_HOPS_H,
    PERF_MARKER,
    PERF_MIN_BITSTREAM_SPEEDUP,
    PERF_MIN_CAMEO_SPEEDUP,
    PERF_MIN_CAMEO_SPECULATIVE_SPEEDUP,
    PERF_MIN_CODEC_SPEEDUP,
    PERF_MIN_ENGINE_PROCESS_SPEEDUP,
    PERF_MIN_HEAP_BULK_SPEEDUP,
    PERF_MIN_HOPS_BATCH_SPEEDUP,
    PERF_MIN_NATIVE_E2E_SPEEDUP,
    PERF_MIN_NATIVE_INTERIOR_SPEEDUP,
    PERF_MIN_PACF_SPEEDUP,
    PERF_NATIVE_ACF_SEGMENT_LEN,
    PERF_NATIVE_ACF_SEGMENTS,
    PERF_NATIVE_HEAP_DRAINS,
    PERF_PACF_MAX_LAG,
    PERF_PACF_ROWS,
    SEED_CAMEO_POINTS_PER_SEC,
)
from repro import _kernels
from repro._kernels import BlockBitReader, BlockBitWriter, pacf_from_acf_batched
from repro._kernels.reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
    ReferenceIndexedMinHeap,
    reference_batched_contiguous_acf,
    reference_chimp_decode,
    reference_chimp_encode,
    reference_gorilla_decode,
    reference_gorilla_encode,
    reference_pacf_from_acf,
)
from repro.benchlib import PerfReport, bench
from repro.core import cameo_compress
from repro.core.heap import IndexedMinHeap, NativeIndexedMinHeap
from repro.core.impact import batched_contiguous_acf
from repro.core.neighbors import NeighborList
from repro.lossless import ChimpCodec, GorillaCodec
from repro.stats.aggregates import ACFAggregateState

pytestmark = pytest.mark.perf


@pytest.fixture()
def numpy_tier():
    """Force the pure-NumPy kernels for trajectory-comparable entries.

    The PR 1-5 trajectory in ``BENCH_kernels.json`` was recorded on the
    NumPy tier; the existing CAMEO/engine entries keep measuring that tier
    so the numbers stay comparable release over release.  The native tier
    gets its own ``native.*`` / ``cameo.compress_10k_native`` entries.
    """
    _kernels.set_native_enabled(False)
    try:
        yield
    finally:
        _kernels.set_native_enabled(None)


@pytest.fixture(scope="module")
def report():
    """Module-wide report; written to ``BENCH_kernels.json`` at teardown."""
    perf_report = PerfReport()
    yield perf_report
    path = perf_report.write()
    print(f"\n[perf] wrote {path}")
    for name, ratio in perf_report.ratios.items():
        print(f"[perf]   {name}: {ratio:.1f}x")


@pytest.fixture(scope="module")
def codec_signal():
    """Rounded-sensor style data: the codecs' target workload."""
    rng = np.random.default_rng(42)
    return np.round(rng.normal(100, 5, PERF_CODEC_LENGTH), 2)


@pytest.fixture(scope="module")
def bit_fields():
    """Random (value, width) pairs for the raw bitstream timings."""
    rng = np.random.default_rng(7)
    widths = rng.integers(1, 65, PERF_BITSTREAM_FIELDS)
    values = rng.integers(0, 1 << 62, PERF_BITSTREAM_FIELDS, dtype=np.uint64)
    return values, widths.astype(np.int64)


class TestBitstreamKernels:
    def test_block_write_read_vs_reference(self, report, bit_fields):
        values, widths = bit_fields
        value_list = values.tolist()
        width_list = widths.tolist()
        pairs = list(zip(value_list, width_list))

        def block_write():
            writer = BlockBitWriter()
            write = writer.write_bits
            for value, width in pairs:
                write(value, width)
            return writer

        def block_write_array():
            writer = BlockBitWriter()
            writer.write_bits_array(values, widths)
            return writer

        def reference_write():
            writer = ReferenceBitWriter()
            write = writer.write_bits
            for value, width in pairs:
                write(value, width)
            return writer

        fields = len(pairs)
        report.add(bench("bitstream.block_write_bits", block_write, ops=fields))
        report.add(bench("bitstream.block_write_bits_array", block_write_array,
                         ops=fields))
        report.add(bench("bitstream.reference_write_bits", reference_write,
                         ops=fields, repeats=2))

        block_writer = block_write()
        reference_writer = reference_write()
        payload = block_writer.to_bytes()
        assert payload == reference_writer.to_bytes()
        bit_length = block_writer.bit_length

        def block_read():
            reader = BlockBitReader(payload, bit_length)
            read = reader.read_bits
            return [read(width) for width in width_list]

        def block_read_array():
            return BlockBitReader(payload, bit_length).read_bits_array(widths)

        def reference_read():
            reader = ReferenceBitReader(payload, bit_length)
            read = reader.read_bits
            return [read(width) for width in width_list]

        report.add(bench("bitstream.block_read_bits", block_read, ops=fields))
        report.add(bench("bitstream.block_read_bits_array", block_read_array,
                         ops=fields))
        report.add(bench("bitstream.reference_read_bits", reference_read,
                         ops=fields, repeats=2))
        expected = [value & ((1 << width) - 1) for value, width in pairs]
        assert block_read() == expected
        assert block_read_array().tolist() == expected
        assert reference_read() == expected

        write_speedup = report.speedup("bitstream_write", "bitstream.block_write_bits",
                                       "bitstream.reference_write_bits")
        read_speedup = report.speedup("bitstream_read", "bitstream.block_read_bits",
                                      "bitstream.reference_read_bits")
        report.speedup("bitstream_write_array", "bitstream.block_write_bits_array",
                       "bitstream.reference_write_bits")
        report.speedup("bitstream_read_array", "bitstream.block_read_bits_array",
                       "bitstream.reference_read_bits")
        assert write_speedup >= PERF_MIN_BITSTREAM_SPEEDUP
        assert read_speedup >= PERF_MIN_BITSTREAM_SPEEDUP


class TestCodecKernels:
    @pytest.mark.parametrize("codec_cls,reference_encode,reference_decode", [
        (GorillaCodec, reference_gorilla_encode, reference_gorilla_decode),
        (ChimpCodec, reference_chimp_encode, reference_chimp_decode),
    ], ids=["gorilla", "chimp"])
    def test_roundtrip_speedup(self, report, codec_signal, codec_cls,
                               reference_encode, reference_decode):
        codec = codec_cls()
        label = codec.name.lower()
        n = codec_signal.size
        payload, bit_length, count = codec.encode(codec_signal)

        # Byte-identical payloads are a hard requirement of the kernel PR.
        reference_payload, reference_bits, _ = reference_encode(codec_signal)
        assert payload == reference_payload and bit_length == reference_bits
        assert np.array_equal(codec.decode(payload, bit_length, count),
                              codec_signal)

        report.add(bench(f"{label}.encode", lambda: codec.encode(codec_signal),
                         ops=n))
        report.add(bench(f"{label}.decode",
                         lambda: codec.decode(payload, bit_length, count), ops=n))
        report.add(bench(
            f"{label}.roundtrip",
            lambda: codec.decode(*codec.encode(codec_signal)[0:2], count), ops=n))
        report.add(bench(f"{label}.reference_encode",
                         lambda: reference_encode(codec_signal), ops=n, repeats=2))
        report.add(bench(
            f"{label}.reference_decode",
            lambda: reference_decode(payload, bit_length, count), ops=n, repeats=2))
        report.add(bench(
            f"{label}.reference_roundtrip",
            lambda: reference_decode(*reference_encode(codec_signal)[0:2], count),
            ops=n, repeats=2))

        speedup = report.speedup(f"{label}_roundtrip", f"{label}.roundtrip",
                                 f"{label}.reference_roundtrip")
        report.speedup(f"{label}_encode", f"{label}.encode",
                       f"{label}.reference_encode")
        report.speedup(f"{label}_decode", f"{label}.decode",
                       f"{label}.reference_decode")
        assert speedup >= PERF_MIN_CODEC_SPEEDUP, (
            f"{codec.name} round-trip speedup {speedup:.1f}x below the "
            f"{PERF_MIN_CODEC_SPEEDUP}x regression floor")


class TestPacfKernels:
    def test_batched_durbin_levinson_speedup(self, report):
        """Batched PACF tracking vs the preserved per-row recursion."""
        rng = np.random.default_rng(31)
        lags = np.arange(1, PERF_PACF_MAX_LAG + 1)
        # Perturbed geometric-decay rows: the shape of the candidate ACF
        # vectors the fused ReHeap hands to the statistic transform.
        rows = np.clip(0.9 ** lags + rng.normal(0.0, 0.05,
                                                (PERF_PACF_ROWS, lags.size)),
                       -0.99, 0.99)

        def batched():
            return pacf_from_acf_batched(rows)

        def per_row():
            out = np.empty_like(rows)
            for index in range(rows.shape[0]):
                out[index] = reference_pacf_from_acf(rows[index])
            return out

        # The batched kernel must reproduce the reference bit for bit.
        assert np.array_equal(batched(), per_row())

        ops = rows.size
        report.add(bench("pacf.batched_tracking", batched, ops=ops))
        report.add(bench("pacf.reference_tracking", per_row, ops=ops, repeats=2))
        speedup = report.speedup("pacf_tracking", "pacf.batched_tracking",
                                 "pacf.reference_tracking")
        assert speedup >= PERF_MIN_PACF_SPEEDUP, (
            f"batched Durbin-Levinson at {speedup:.1f}x is below the "
            f"{PERF_MIN_PACF_SPEEDUP}x regression floor")


class TestHeapBulkKernels:
    def test_update_many_bulk_speedup(self, report):
        """Full heap re-key: argsort rebuild vs per-item reference sifts."""
        rng = np.random.default_rng(77)
        items = np.arange(PERF_HEAP_CAPACITY)
        initial = rng.normal(0.0, 1.0, PERF_HEAP_CAPACITY)
        rekeys = [rng.normal(0.0, 1.0, PERF_HEAP_CAPACITY)
                  for _ in range(PERF_HEAP_REKEY_ROUNDS)]
        fast = IndexedMinHeap(PERF_HEAP_CAPACITY)
        slow = ReferenceIndexedMinHeap(PERF_HEAP_CAPACITY)
        fast.heapify(items, initial)
        slow.heapify(items, initial)

        def bulk():
            for keys in rekeys:
                fast.update_many(items, keys)

        def reference():
            for keys in rekeys:
                slow.update_many(items, keys)

        ops = PERF_HEAP_CAPACITY * PERF_HEAP_REKEY_ROUNDS
        report.add(bench("heap.update_many_bulk", bulk, ops=ops,
                         capacity=PERF_HEAP_CAPACITY))
        report.add(bench("heap.reference_update_many", reference, ops=ops,
                         repeats=2))
        assert fast.check_invariants()
        # Same final contents either way.
        final = rekeys[-1]
        assert all(fast.key_of(item) == final[item] == slow.key_of(item)
                   for item in range(0, PERF_HEAP_CAPACITY, 997))
        speedup = report.speedup("heap_update_many_bulk",
                                 "heap.update_many_bulk",
                                 "heap.reference_update_many")
        assert speedup >= PERF_MIN_HEAP_BULK_SPEEDUP, (
            f"bulk update_many at {speedup:.1f}x is below the "
            f"{PERF_MIN_HEAP_BULK_SPEEDUP}x regression floor")


class TestNeighborHops:
    def test_hops_batch_speedup(self, report):
        """Batch blocking-neighbourhood resolution vs the pointer chase."""
        rng = np.random.default_rng(88)
        n = PERF_CAMEO_LENGTH
        neighbours = NeighborList(n)
        removals = rng.permutation(np.arange(1, n - 1))[:int(0.9 * n)]
        for index in removals.tolist():
            neighbours.remove(index)
        survivors = np.flatnonzero(neighbours.alive_mask())[1:-1]
        indices = rng.choice(survivors, PERF_HOPS_BATCH_INDICES, replace=False)

        def batch():
            return neighbours.hops_batch(indices, PERF_HOPS_H)

        def scalar():
            return [neighbours.hops(int(index), PERF_HOPS_H)
                    for index in indices.tolist()]

        offsets, flat = batch()
        for position, index in enumerate(indices.tolist()):
            expected = np.asarray(neighbours.hops(index, PERF_HOPS_H),
                                  dtype=np.int64)
            assert np.array_equal(flat[offsets[position]:offsets[position + 1]],
                                  expected)
        ops = int(flat.size)
        report.add(bench("neighbors.hops_batch", batch, ops=ops,
                         indices=PERF_HOPS_BATCH_INDICES, h=PERF_HOPS_H))
        report.add(bench("neighbors.hops_scalar", scalar, ops=ops, repeats=2))
        speedup = report.speedup("neighbors_hops_batch", "neighbors.hops_batch",
                                 "neighbors.hops_scalar")
        assert speedup >= PERF_MIN_HOPS_BATCH_SPEEDUP, (
            f"batched hops at {speedup:.1f}x is below the "
            f"{PERF_MIN_HOPS_BATCH_SPEEDUP}x regression floor")


@pytest.mark.usefixtures("numpy_tier")
class TestCameoEndToEnd:
    def test_cameo_points_per_sec(self, report):
        """Speculative loop vs seed baseline and vs the rebuilt PR 3 loop.

        The PR 3 loop is reconstructed in-process: ``batch_size=1`` (the
        exact sequential code path) on the preserved reference heap and the
        preserved pre-partitioning ReHeap kernel.  Both runs execute in the
        same process, so the ≥1.5x floor is hardware-independent; the
        reconstruction still benefits from this PR's windowed neighbour
        gathers, which only makes the floor conservative.
        """
        rng = np.random.default_rng(123)
        t = np.arange(PERF_CAMEO_LENGTH)
        signal = (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
                  + 0.5 * np.sin(2 * np.pi * t / 168)
                  + rng.normal(0, 0.3, t.size))

        def run():
            return cameo_compress(signal, max_lag=PERF_CAMEO_MAX_LAG,
                                  epsilon=PERF_CAMEO_EPSILON)

        def run_pr3_loop():
            import repro.core.compressor as compressor_module
            import repro.core.tracker as tracker_module
            saved_heap = compressor_module.make_heap
            saved_kernel = tracker_module.batched_contiguous_acf
            compressor_module.make_heap = ReferenceIndexedMinHeap
            tracker_module.batched_contiguous_acf = (
                reference_batched_contiguous_acf)
            try:
                return cameo_compress(signal, max_lag=PERF_CAMEO_MAX_LAG,
                                      epsilon=PERF_CAMEO_EPSILON, batch_size=1)
            finally:
                compressor_module.make_heap = saved_heap
                tracker_module.batched_contiguous_acf = saved_kernel

        result = run()  # warmup + sanity
        assert result.metadata["stopped_by"] == "error-bound"
        timed = report.add(bench(
            "cameo.compress_10k_speculative", run, ops=PERF_CAMEO_LENGTH,
            repeats=2, warmup=False, max_lag=PERF_CAMEO_MAX_LAG,
            epsilon=PERF_CAMEO_EPSILON, kept=len(result),
            batch_size=result.metadata["batch_size"]))
        pr3_result = run_pr3_loop()
        # The whole stack — speculation, hybrid heap, partitioned kernel —
        # must keep the PR 3 loop's point set exactly.
        assert pr3_result.indices.tolist() == result.indices.tolist()
        timed_pr3 = report.add(bench(
            "cameo.compress_10k_pr3loop", run_pr3_loop, ops=PERF_CAMEO_LENGTH,
            repeats=1, warmup=False, kept=len(pr3_result)))

        points_per_sec = timed.ops_per_sec
        report.ratios["cameo_vs_seed"] = points_per_sec / SEED_CAMEO_POINTS_PER_SEC
        speculative_speedup = report.speedup(
            "cameo_speculative_vs_pr3", "cameo.compress_10k_speculative",
            "cameo.compress_10k_pr3loop")
        assert speculative_speedup >= PERF_MIN_CAMEO_SPECULATIVE_SPEEDUP, (
            f"speculative loop at {speculative_speedup:.2f}x the PR 3 loop is "
            f"below the {PERF_MIN_CAMEO_SPECULATIVE_SPEEDUP}x floor")
        assert timed_pr3.seconds > 0
        if os.environ.get("REPRO_PERF_NO_ABSOLUTE", "0") in ("0", "", "false"):
            assert points_per_sec >= PERF_MIN_CAMEO_SPEEDUP * SEED_CAMEO_POINTS_PER_SEC, (
                f"end-to-end CAMEO at {points_per_sec:.0f} points/s is below "
                f"{PERF_MIN_CAMEO_SPEEDUP}x the recorded seed baseline "
                f"({SEED_CAMEO_POINTS_PER_SEC} points/s)")

    def test_cameo_pacf_points_per_sec(self, report):
        """End-to-end ``statistic="pacf"`` run through the batched DL path."""
        rng = np.random.default_rng(456)
        t = np.arange(PERF_CAMEO_PACF_LENGTH)
        signal = (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
                  + 0.5 * np.sin(2 * np.pi * t / 168)
                  + rng.normal(0, 0.3, t.size))

        def run():
            return cameo_compress(signal, max_lag=PERF_CAMEO_PACF_MAX_LAG,
                                  epsilon=PERF_CAMEO_EPSILON, statistic="pacf")

        result = run()  # warmup + sanity
        assert result.metadata["stopped_by"] == "error-bound"
        report.add(bench(
            "cameo.compress_pacf_4k", run, ops=PERF_CAMEO_PACF_LENGTH, repeats=1,
            warmup=False, max_lag=PERF_CAMEO_PACF_MAX_LAG,
            epsilon=PERF_CAMEO_EPSILON, statistic="pacf", kept=len(result)))


@pytest.mark.skipif(not _kernels.native_available(),
                    reason="native extension not built")
class TestNativeTier:
    """The compiled tier vs the NumPy tier, measured in the same process."""

    @pytest.fixture(autouse=True)
    def _restore_tier(self):
        yield
        _kernels.set_native_enabled(None)

    def test_interior_acf_block_speedup(self, report):
        """``native.interior_acf_block``: fused C loop vs the NumPy kernel.

        Interior-only segments (every position at least ``max_lag`` away
        from both edges) so both tiers run their fast path end to end; the
        outputs must agree bit for bit before anything is timed.
        """
        rng = np.random.default_rng(2026)
        t = np.arange(PERF_CAMEO_LENGTH)
        signal = (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
                  + rng.normal(0, 0.3, t.size))
        state = ACFAggregateState(signal, PERF_CAMEO_MAX_LAG)
        margin = PERF_CAMEO_MAX_LAG + PERF_NATIVE_ACF_SEGMENT_LEN + 1
        starts = rng.choice(
            np.arange(margin, PERF_CAMEO_LENGTH - margin),
            PERF_NATIVE_ACF_SEGMENTS, replace=False)
        lengths = np.full(PERF_NATIVE_ACF_SEGMENTS,
                          PERF_NATIVE_ACF_SEGMENT_LEN, dtype=np.int64)
        positions = (starts[:, None]
                     + np.arange(PERF_NATIVE_ACF_SEGMENT_LEN)).ravel()
        deltas = rng.normal(0.0, 0.3, positions.size)

        def run():
            return batched_contiguous_acf(state, lengths, positions, deltas)

        _kernels.set_native_enabled(True)
        native_rows = run()
        _kernels.set_native_enabled(False)
        assert np.array_equal(native_rows, run())

        ops = PERF_NATIVE_ACF_SEGMENTS * state.lags.size
        timed_numpy = report.add(bench("numpy.interior_acf_block", run,
                                       ops=ops, repeats=7,
                                       segments=PERF_NATIVE_ACF_SEGMENTS,
                                       segment_len=PERF_NATIVE_ACF_SEGMENT_LEN))
        _kernels.set_native_enabled(True)
        report.add(bench("native.interior_acf_block", run, ops=ops, repeats=7,
                         segments=PERF_NATIVE_ACF_SEGMENTS,
                         segment_len=PERF_NATIVE_ACF_SEGMENT_LEN))
        speedup = report.speedup("native_interior_acf_block",
                                 "native.interior_acf_block",
                                 "numpy.interior_acf_block")
        assert timed_numpy.seconds > 0
        assert speedup >= PERF_MIN_NATIVE_INTERIOR_SPEEDUP, (
            f"native interior kernel at {speedup:.2f}x the NumPy kernel is "
            f"below the {PERF_MIN_NATIVE_INTERIOR_SPEEDUP}x floor")

    def test_pop_loop_throughput(self, report):
        """``native.pop_loop``: heapify + full drain, C sifts vs hybrid.

        Recorded without a hard floor — single pops are already cheap in
        the hybrid heap; the entry documents the greedy-loop win.
        """
        rng = np.random.default_rng(99)
        items = np.arange(PERF_HEAP_CAPACITY)
        key_rounds = [rng.normal(0.0, 1.0, PERF_HEAP_CAPACITY)
                      for _ in range(PERF_NATIVE_HEAP_DRAINS)]

        def drain(factory):
            out = 0
            for keys in key_rounds:
                heap = factory(PERF_HEAP_CAPACITY)
                heap.heapify(items, keys)
                pop = heap.pop
                while heap:
                    out ^= pop()[0]
            return out

        _kernels.set_native_enabled(True)
        assert drain(NativeIndexedMinHeap) == drain(IndexedMinHeap)
        ops = PERF_HEAP_CAPACITY * PERF_NATIVE_HEAP_DRAINS
        report.add(bench("native.pop_loop",
                         lambda: drain(NativeIndexedMinHeap), ops=ops,
                         capacity=PERF_HEAP_CAPACITY))
        report.add(bench("heap.pop_loop_hybrid",
                         lambda: drain(IndexedMinHeap), ops=ops, repeats=2))
        report.speedup("native_pop_loop", "native.pop_loop",
                       "heap.pop_loop_hybrid")

    def test_cameo_native_end_to_end(self, report):
        """``cameo.compress_10k_native``: the full greedy loop on the
        native tier, kept set identical to the NumPy-tier run."""
        rng = np.random.default_rng(123)
        t = np.arange(PERF_CAMEO_LENGTH)
        signal = (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
                  + 0.5 * np.sin(2 * np.pi * t / 168)
                  + rng.normal(0, 0.3, t.size))

        def run():
            return cameo_compress(signal, max_lag=PERF_CAMEO_MAX_LAG,
                                  epsilon=PERF_CAMEO_EPSILON)

        _kernels.set_native_enabled(False)
        numpy_result = run()
        _kernels.set_native_enabled(True)
        native_result = run()
        # Hard requirement of the native tier: not one kept point differs.
        assert native_result.indices.tolist() == numpy_result.indices.tolist()
        assert np.array_equal(native_result.values, numpy_result.values)

        timed = report.add(bench(
            "cameo.compress_10k_native", run, ops=PERF_CAMEO_LENGTH,
            repeats=2, warmup=False, max_lag=PERF_CAMEO_MAX_LAG,
            epsilon=PERF_CAMEO_EPSILON, kept=len(native_result)))
        report.ratios["cameo_native_vs_seed"] = (
            timed.ops_per_sec / SEED_CAMEO_POINTS_PER_SEC)
        if "cameo.compress_10k_speculative" in report.results:
            speedup = report.speedup("cameo_native_vs_numpy",
                                     "cameo.compress_10k_native",
                                     "cameo.compress_10k_speculative")
            assert speedup >= PERF_MIN_NATIVE_E2E_SPEEDUP, (
                f"native end-to-end at {speedup:.2f}x the NumPy tier is "
                f"below the {PERF_MIN_NATIVE_E2E_SPEEDUP}x floor")


@pytest.mark.usefixtures("numpy_tier")
class TestBatchEngine:
    """Fleet throughput: the batch engine's backends and fast paths."""

    @staticmethod
    def _fleet(count: int, length: int, seed: int = 2026) -> list[np.ndarray]:
        rng = np.random.default_rng(seed)
        t = np.arange(length)
        base = (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
                + 0.5 * np.sin(2 * np.pi * t / 168))
        return [base + rng.normal(0.0, 0.3, length) for _ in range(count)]

    def test_process_vs_serial_throughput(self, report):
        """``engine.batch_64x4k``: process backend vs serial, results identical.

        The serial backend *is* the per-series sequential run (the 4k series
        are far above the lock-step eligibility ceiling), so the identity
        assertion compares every process-backend block against it.  The ≥3x
        ratio is asserted only on machines with at least
        ``PERF_ENGINE_WORKERS`` CPUs — with fewer cores the parallel
        speedup is physically unreachable and the ratio is recorded
        without gating.
        """
        from repro.engine import BatchEngine

        fleet = self._fleet(PERF_ENGINE_SERIES, PERF_ENGINE_LENGTH)
        options = dict(max_lag=PERF_ENGINE_MAX_LAG, epsilon=None,
                       target_ratio=PERF_ENGINE_TARGET_RATIO)
        ops = PERF_ENGINE_SERIES * PERF_ENGINE_LENGTH

        serial_engine = BatchEngine("cameo", codec_options=options,
                                    backend="serial")
        serial_result = serial_engine.compress(fleet)
        assert serial_result.report.failed == 0
        timed_serial = report.add(bench(
            "engine.batch_64x4k_serial",
            lambda: serial_engine.compress(fleet), ops=ops, repeats=1,
            warmup=False, series=PERF_ENGINE_SERIES,
            length=PERF_ENGINE_LENGTH))

        process_engine = BatchEngine("cameo", codec_options=options,
                                     backend="process",
                                     workers=PERF_ENGINE_WORKERS)
        process_result = process_engine.compress(fleet)
        assert process_result.report.failed == 0
        timed_process = report.add(bench(
            "engine.batch_64x4k_process",
            lambda: process_engine.compress(fleet), ops=ops, repeats=1,
            warmup=False, workers=PERF_ENGINE_WORKERS))

        # Hard requirement: batch results identical to the per-series
        # sequential run — CAMEO kept-point sets bit for bit.
        for serial_outcome, process_outcome in zip(serial_result,
                                                   process_result):
            left = serial_outcome.unwrap().payload
            right = process_outcome.unwrap().payload
            assert left.indices.tolist() == right.indices.tolist()
            assert np.array_equal(left.values, right.values)

        speedup = report.speedup("engine_process_vs_serial",
                                 "engine.batch_64x4k_process",
                                 "engine.batch_64x4k_serial")
        report.ratios["engine_batch_points_per_sec"] = timed_process.ops_per_sec
        assert timed_serial.seconds > 0
        if (os.cpu_count() or 1) >= PERF_ENGINE_WORKERS:
            assert speedup >= PERF_MIN_ENGINE_PROCESS_SPEEDUP, (
                f"process backend at {speedup:.2f}x the serial backend is "
                f"below the {PERF_MIN_ENGINE_PROCESS_SPEEDUP}x floor")

    def test_xor_stacked_fastpath(self, report):
        """``engine.xor_stack``: stacked encode vs per-series, byte-identical."""
        from repro.codecs import get_codec
        from repro.engine import BatchEngine

        rng = np.random.default_rng(11)
        fleet = [np.round(rng.normal(100.0, 5.0, PERF_ENGINE_XOR_LENGTH), 2)
                 for _ in range(PERF_ENGINE_XOR_SERIES)]
        ops = PERF_ENGINE_XOR_SERIES * PERF_ENGINE_XOR_LENGTH
        stacked_engine = BatchEngine("gorilla", backend="serial",
                                     fastpath=True)
        scalar_engine = BatchEngine("gorilla", backend="serial",
                                    fastpath=False)
        stacked = stacked_engine.compress(fleet)
        assert stacked.report.fastpath_series == PERF_ENGINE_XOR_SERIES
        codec = get_codec("gorilla")
        for outcome, series in zip(stacked, fleet):
            assert outcome.unwrap().payload == codec.encode(series).payload
        report.add(bench("engine.xor_stack_512x64",
                         lambda: stacked_engine.compress(fleet), ops=ops))
        report.add(bench("engine.xor_perseries_512x64",
                         lambda: scalar_engine.compress(fleet), ops=ops,
                         repeats=2))
        report.speedup("engine_xor_stacked", "engine.xor_stack_512x64",
                       "engine.xor_perseries_512x64")

    def test_cameo_lockstep_fastpath(self, report):
        """``engine.cameo_lockstep``: lock-step vs per-series, kept sets equal."""
        from repro.engine import BatchEngine

        fleet = self._fleet(PERF_ENGINE_LOCKSTEP_SERIES,
                            PERF_ENGINE_LOCKSTEP_LENGTH, seed=31)
        options = dict(max_lag=PERF_ENGINE_LOCKSTEP_MAX_LAG,
                       epsilon=PERF_CAMEO_EPSILON)
        ops = PERF_ENGINE_LOCKSTEP_SERIES * PERF_ENGINE_LOCKSTEP_LENGTH
        stacked_engine = BatchEngine("cameo", codec_options=options,
                                     backend="serial", fastpath=True)
        scalar_engine = BatchEngine("cameo", codec_options=options,
                                    backend="serial", fastpath=False)
        stacked = stacked_engine.compress(fleet)
        scalar = scalar_engine.compress(fleet)
        assert stacked.report.fastpath_series == PERF_ENGINE_LOCKSTEP_SERIES
        for left, right in zip(stacked, scalar):
            assert (left.unwrap().payload.indices.tolist()
                    == right.unwrap().payload.indices.tolist())
        report.add(bench("engine.cameo_lockstep_64x192",
                         lambda: stacked_engine.compress(fleet), ops=ops,
                         repeats=1, warmup=False))
        report.add(bench("engine.cameo_perseries_64x192",
                         lambda: scalar_engine.compress(fleet), ops=ops,
                         repeats=1, warmup=False))
        report.speedup("engine_cameo_lockstep", "engine.cameo_lockstep_64x192",
                       "engine.cameo_perseries_64x192")


# Keep a module-level reference so static analysers see the marker is used.
_ = PERF_MARKER
