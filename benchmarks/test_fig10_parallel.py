"""Figure 10 — fine-grained and coarse-grained parallelization.

(a) Fine-grained: the ReHeap look-ahead is split over worker threads; the
    figure reports execution-time speed-up vs. the single-threaded run for
    different blocking sizes.
(b) Coarse-grained: the series is partitioned across workers with a local
    error budget; the figure reports speed-up, the achieved global ACF
    deviation (must stay below the bound), and the compression ratio
    relative to the single-worker run.

Pure-Python threads cannot reproduce the paper's absolute OpenMP speed-ups,
so the assertions target correctness (bound always met, results consistent)
and report the measured timings for inspection.
"""

from __future__ import annotations

import time

from repro.benchlib import bench_dataset, format_table
from repro.compressors import acf_deviation_of
from repro.core import CoarseGrainedCameo, FineGrainedCameo

EPSILON = 0.01
THREAD_COUNTS = (1, 2, 4)


def _fine_grained(series) -> list:
    max_lag = series.metadata["acf_lags"]
    rows = []
    baseline_time = None
    for threads in THREAD_COUNTS:
        start = time.perf_counter()
        result = FineGrainedCameo(max_lag, EPSILON, threads=threads,
                                  blocking="5logn").compress(series.values)
        elapsed = time.perf_counter() - start
        if baseline_time is None:
            baseline_time = elapsed
        deviation = acf_deviation_of(series.values, result.decompress(), max_lag)
        rows.append(["fine", threads, f"{elapsed:.2f}",
                     f"{baseline_time / elapsed:.2f}x",
                     f"{result.compression_ratio():.2f}", f"{deviation:.5f}"])
    return rows


def _coarse_grained(series) -> list:
    max_lag = series.metadata["acf_lags"]
    rows = []
    baseline_time = None
    baseline_ratio = None
    for workers in THREAD_COUNTS:
        compressor = CoarseGrainedCameo(max_lag, EPSILON, workers=workers,
                                        agg_window=series.metadata["agg_window"],
                                        blocking="5logn")
        start = time.perf_counter()
        result, report = compressor.compress(series)
        elapsed = time.perf_counter() - start
        if baseline_time is None:
            baseline_time = elapsed
            baseline_ratio = max(result.compression_ratio(), 1e-9)
        rows.append(["coarse", workers, f"{elapsed:.2f}",
                     f"{baseline_time / elapsed:.2f}x",
                     f"{result.compression_ratio() / baseline_ratio:.2f}",
                     f"{report.global_deviation:.5f}"])
    return rows


def test_figure10_parallel_strategies(benchmark, group1_dataset):
    """Regenerate the Figure 10 scaling measurements."""
    rows = benchmark.pedantic(
        lambda: _fine_grained(group1_dataset) + _coarse_grained(group1_dataset),
        rounds=1, iterations=1)
    print()
    print(format_table(
        ["Strategy", "Workers", "Time [s]", "Speed-up", "CR (rel. for coarse)", "ACF dev"],
        rows, title=f"Figure 10: Parallelization on {group1_dataset.name} "
                    f"(epsilon={EPSILON})"))

    for row in rows:
        deviation = float(row[5])
        assert deviation <= EPSILON + 1e-6, f"{row[0]} with {row[1]} workers broke the bound"
