"""Shared configuration constants for the benchmark suite.

The values below define the smoke-scale sweeps; they are deliberately small so
``pytest benchmarks/ --benchmark-only`` completes in minutes.  Scale the
datasets up with ``REPRO_BENCH_SCALE`` for paper-scale runs.
"""

from __future__ import annotations

#: Error bounds swept by the compression-ratio figures (Figures 6, 7, 9).
SWEEP_EPSILONS = (0.005, 0.02)

#: Target compression ratios used by the forecasting experiments (EXP1/EXP2).
FORECAST_RATIOS = (2.0, 6.0)

#: Target compression ratios for the highly seasonal EXP3 sweep.
SEASONAL_RATIOS = (5.0, 15.0)
