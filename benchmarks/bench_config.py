"""Shared configuration constants for the benchmark suite.

The values below define the smoke-scale sweeps; they are deliberately small so
``pytest benchmarks/ --benchmark-only`` completes in minutes.  Scale the
datasets up with ``REPRO_BENCH_SCALE`` for paper-scale runs.
"""

from __future__ import annotations

#: Error bounds swept by the compression-ratio figures (Figures 6, 7, 9).
SWEEP_EPSILONS = (0.005, 0.02)

#: Target compression ratios used by the forecasting experiments (EXP1/EXP2).
FORECAST_RATIOS = (2.0, 6.0)

#: Target compression ratios for the highly seasonal EXP3 sweep.
SEASONAL_RATIOS = (5.0, 15.0)

# --------------------------------------------------------------------- #
# kernel perf-regression harness (test_perf_kernels.py)
# --------------------------------------------------------------------- #

#: Marker name for the opt-in perf benchmarks.  Tests carrying this marker
#: are auto-skipped unless the run selects them with ``-m perf`` (or sets
#: ``REPRO_RUN_PERF=1``), so the tier-1 suite never pays for timing runs.
PERF_MARKER = "perf"

#: Environment variable that force-enables the perf benchmarks.
PERF_ENV = "REPRO_RUN_PERF"

#: Series length for the codec round-trip timings (smoke scale).
PERF_CODEC_LENGTH = 10_000

#: Series length / lag count for the end-to-end CAMEO timing — matches the
#: configuration the kernel-PR acceptance numbers were measured at.
PERF_CAMEO_LENGTH = 10_000
PERF_CAMEO_MAX_LAG = 50
PERF_CAMEO_EPSILON = 0.05

#: Field count for the raw bitstream write/read timings.
PERF_BITSTREAM_FIELDS = 20_000

#: Row / lag counts for the batched Durbin-Levinson (PACF tracking) timing —
#: sized like one fused ReHeap batch of candidate ACF rows.
PERF_PACF_ROWS = 400
PERF_PACF_MAX_LAG = 50

#: Required speedup of the batched Durbin-Levinson kernel over the preserved
#: per-row reference recursion, measured in the same process
#: (hardware-independent, like the codec thresholds).
PERF_MIN_PACF_SPEEDUP = 3.0

#: Series length / lag count for the end-to-end CAMEO ``statistic="pacf"``
#: timing (smaller than the ACF run: the recursion adds an O(L^2) factor).
PERF_CAMEO_PACF_LENGTH = 4_000
PERF_CAMEO_PACF_MAX_LAG = 24

#: Required speedup of the block codecs over the preserved per-bit
#: reference implementations, measured on the same machine in the same run
#: (hardware-independent).
PERF_MIN_CODEC_SPEEDUP = 5.0
PERF_MIN_BITSTREAM_SPEEDUP = 5.0

#: Seed-era end-to-end CAMEO throughput (points/sec) for the configuration
#: above, measured on the original pure-Python implementation (59.1 s for
#: n=10k, max_lag=50, epsilon=0.05, default blocking).  The harness asserts
#: the current implementation is at least ``PERF_MIN_CAMEO_SPEEDUP`` times
#: this on comparable hardware; set ``REPRO_PERF_NO_ABSOLUTE=1`` on slower
#: machines where an absolute baseline is meaningless.
SEED_CAMEO_POINTS_PER_SEC = 169.0
PERF_MIN_CAMEO_SPEEDUP = 2.0

# --------------------------------------------------------------------- #
# speculative-batch loop (PR 4)
# --------------------------------------------------------------------- #

#: Required in-process speedup of the speculative multi-pop loop (default
#: ``batch_size``) over the reconstructed PR 3 loop — ``batch_size=1`` on
#: the preserved reference heap and reference ReHeap kernel, measured in
#: the same run (hardware-independent).  PR 4 measured 1.51x; single-repeat
#: runs on the PR 5 container fluctuate 1.46-1.53x (including on the
#: unmodified PR 4 code), so the floor sits below that noise band rather
#: than at the point estimate.
PERF_MIN_CAMEO_SPECULATIVE_SPEEDUP = 1.35

#: Heap size for the bulk-update benchmark (one full re-key of the heap,
#: the workload the argsort rebuild targets) and its regression floor
#: against the preserved list-based reference heap.
PERF_HEAP_CAPACITY = 10_000
PERF_HEAP_REKEY_ROUNDS = 10
PERF_MIN_HEAP_BULK_SPEEDUP = 3.0

#: Neighbour-hops benchmark: resolve the blocking neighbourhoods of a batch
#: of indices on a heavily compacted list (90% removed), batched gather vs
#: the scalar pointer chase per index.
PERF_HOPS_BATCH_INDICES = 16
PERF_HOPS_H = 67
PERF_MIN_HOPS_BATCH_SPEEDUP = 1.5

# --------------------------------------------------------------------- #
# batch engine (PR 5)
# --------------------------------------------------------------------- #

#: The fleet workload of the engine throughput benchmark: 64 series of
#: 4k points each, compressed with CAMEO in target-ratio mode (bounded
#: iteration count keeps the harness fast while staying CPU-bound).
PERF_ENGINE_SERIES = 64
PERF_ENGINE_LENGTH = 4_000
PERF_ENGINE_MAX_LAG = 16
PERF_ENGINE_TARGET_RATIO = 1.15

#: Workers of the process-backend run and its required throughput ratio
#: over the serial backend, measured in the same process.  The ratio is
#: only asserted when the machine actually has that many CPUs — on fewer
#: cores a 3x parallel speedup is physically impossible and the benchmark
#: records the ratio without gating.
PERF_ENGINE_WORKERS = 4
PERF_MIN_ENGINE_PROCESS_SPEEDUP = 3.0

#: Cross-series fast-path benchmarks: many small series, where per-call
#: NumPy dispatch dominates.  Ratios are recorded (stacked vs per-series
#: execution, identical results asserted); no hard floor — the win is
#: size-dependent and modest by design.
PERF_ENGINE_XOR_SERIES = 512
PERF_ENGINE_XOR_LENGTH = 64
PERF_ENGINE_LOCKSTEP_SERIES = 64
PERF_ENGINE_LOCKSTEP_LENGTH = 192
PERF_ENGINE_LOCKSTEP_MAX_LAG = 16

# --------------------------------------------------------------------- #
# native kernel tier (PR 7)
# --------------------------------------------------------------------- #

#: Interior ReHeap ACF kernel workload: a batch of interior-only segments
#: (well away from the series edges) large enough that kernel time, not
#: dispatch, dominates.  The fused C loop must beat the NumPy kernel by
#: >= 2x measured in the same process (ISSUE floor).
PERF_NATIVE_ACF_SEGMENTS = 400
PERF_NATIVE_ACF_SEGMENT_LEN = 8
PERF_MIN_NATIVE_INTERIOR_SPEEDUP = 2.0

#: End-to-end CAMEO with the native tier vs the same run on the NumPy
#: tier (kept-point sets asserted identical).  Measured ~3x on the dev
#: container; the floor is deliberately conservative for slow CI runners.
PERF_MIN_NATIVE_E2E_SPEEDUP = 1.15

#: The native pop-loop (heapify + full drain) ratio vs the hybrid heap is
#: recorded without a hard floor: single pops are already cheap in the
#: hybrid heap and the win is capacity-dependent.
PERF_NATIVE_HEAP_DRAINS = 5
