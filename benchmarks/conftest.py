"""Shared fixtures and configuration for the paper-reproduction benchmarks.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  The workloads run at "smoke" scale
by default so the whole suite finishes in minutes; set ``REPRO_BENCH_SCALE``
(e.g. ``=5``) to enlarge the synthetic datasets towards paper scale, and
``REPRO_BENCH_ALL_DATASETS=1`` to sweep all eight datasets where the default
uses a representative subset.
"""

from __future__ import annotations

import os

import pytest

from repro.benchlib import bench_dataset


def pytest_report_header(config):  # noqa: D103 - pytest hook
    scale = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    return f"repro benchmarks: REPRO_BENCH_SCALE={scale} (raise it for paper-scale runs)"


def pytest_configure(config):  # noqa: D103 - pytest hook
    from bench_config import PERF_MARKER

    config.addinivalue_line(
        "markers",
        f"{PERF_MARKER}: kernel perf-regression benchmarks "
        f"(opt-in: run with -m {PERF_MARKER})")


def pytest_collection_modifyitems(config, items):
    """Skip perf-marked benchmarks unless they were asked for.

    The timing runs are meaningful only when executed deliberately (idle
    machine, ``-m perf``); inside the functional tier-1 suite they would
    just slow collection down, so they are skipped unless the marker
    expression mentions the marker or ``REPRO_RUN_PERF`` is set.
    """
    from bench_config import PERF_ENV, PERF_MARKER

    markexpr = getattr(config.option, "markexpr", "") or ""
    if PERF_MARKER in markexpr:
        return
    if os.environ.get(PERF_ENV, "0") not in ("0", "", "false"):
        return
    skip_perf = pytest.mark.skip(
        reason=f"perf benchmarks run only with -m {PERF_MARKER} "
               f"(or {PERF_ENV}=1)")
    for item in items:
        if PERF_MARKER in item.keywords:
            item.add_marker(skip_perf)


@pytest.fixture(autouse=True)
def _show_tables(capsys):
    """Disable output capture so every regenerated paper table is visible in
    the live benchmark log (and in ``bench_output.txt``)."""
    with capsys.disabled():
        yield


def all_datasets_requested() -> bool:
    """Whether the full eight-dataset sweep was requested via environment."""
    return os.environ.get("REPRO_BENCH_ALL_DATASETS", "0") not in ("0", "", "false")


#: Representative subset used by the sweep figures when the full set is not
#: requested: one dataset from each group.
DEFAULT_SWEEP_DATASETS = ("Pedestrian", "Humidity")


@pytest.fixture(scope="session")
def sweep_datasets():
    """Datasets used by the CR sweep figures."""
    if all_datasets_requested():
        from repro.data import dataset_names

        names = dataset_names()
    else:
        names = DEFAULT_SWEEP_DATASETS
    return {name: bench_dataset(name) for name in names}


@pytest.fixture(scope="session")
def group1_dataset():
    """A group-1 dataset (direct ACF preservation)."""
    return bench_dataset("Pedestrian")


@pytest.fixture(scope="session")
def group2_dataset():
    """A group-2 dataset (ACF on window aggregates)."""
    return bench_dataset("Humidity")
