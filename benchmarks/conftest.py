"""Shared fixtures and configuration for the paper-reproduction benchmarks.

Every module in this directory regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  The workloads run at "smoke" scale
by default so the whole suite finishes in minutes; set ``REPRO_BENCH_SCALE``
(e.g. ``=5``) to enlarge the synthetic datasets towards paper scale, and
``REPRO_BENCH_ALL_DATASETS=1`` to sweep all eight datasets where the default
uses a representative subset.
"""

from __future__ import annotations

import os

import pytest

from repro.benchlib import bench_dataset


def pytest_report_header(config):  # noqa: D103 - pytest hook
    scale = os.environ.get("REPRO_BENCH_SCALE", "1.0")
    return f"repro benchmarks: REPRO_BENCH_SCALE={scale} (raise it for paper-scale runs)"


@pytest.fixture(autouse=True)
def _show_tables(capsys):
    """Disable output capture so every regenerated paper table is visible in
    the live benchmark log (and in ``bench_output.txt``)."""
    with capsys.disabled():
        yield


def all_datasets_requested() -> bool:
    """Whether the full eight-dataset sweep was requested via environment."""
    return os.environ.get("REPRO_BENCH_ALL_DATASETS", "0") not in ("0", "", "false")


#: Representative subset used by the sweep figures when the full set is not
#: requested: one dataset from each group.
DEFAULT_SWEEP_DATASETS = ("Pedestrian", "Humidity")


@pytest.fixture(scope="session")
def sweep_datasets():
    """Datasets used by the CR sweep figures."""
    if all_datasets_requested():
        from repro.data import dataset_names

        names = dataset_names()
    else:
        names = DEFAULT_SWEEP_DATASETS
    return {name: bench_dataset(name) for name in names}


@pytest.fixture(scope="session")
def group1_dataset():
    """A group-1 dataset (direct ACF preservation)."""
    return bench_dataset("Pedestrian")


@pytest.fixture(scope="session")
def group2_dataset():
    """A group-2 dataset (ACF on window aggregates)."""
    return bench_dataset("Humidity")
