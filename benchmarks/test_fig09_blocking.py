"""Figure 9 — impact of the blocking-neighbourhood size on compression ratio.

CAMEO is run with blocking sizes from ``log n`` up to ``n/2`` under several
ACF error bounds.  The paper's finding: small multiples of ``log n`` recover
almost the full compression ratio of brute-force updating, while plain
``log n`` is too narrow on larger datasets.
"""

from __future__ import annotations

import numpy as np

from bench_config import SWEEP_EPSILONS
from repro.benchlib import format_table, run_cameo

BLOCKING_SIZES = ("logn", "3logn", "5logn", "10logn", "sqrt")


def _sweep(series) -> list:
    records = []
    for blocking in BLOCKING_SIZES:
        for epsilon in SWEEP_EPSILONS:
            record = run_cameo(series, epsilon, blocking=blocking)
            record.extra["blocking"] = blocking
            records.append(record)
    return records


def test_figure9_blocking_strategy(benchmark, group1_dataset):
    """Regenerate the Figure 9 blocking-size sweep."""
    records = benchmark.pedantic(lambda: _sweep(group1_dataset), rounds=1, iterations=1)

    rows = [[r.extra["blocking"], f"{r.epsilon:g}", f"{r.compression_ratio:.2f}",
             f"{r.acf_deviation:.5f}", f"{r.elapsed_seconds:.2f}"] for r in records]
    print()
    print(format_table(["Blocking", "Epsilon", "CR", "ACF dev", "Time [s]"], rows,
                       title=f"Figure 9: Blocking-size sweep on {group1_dataset.name}"))

    # The bound holds for every configuration (blocking only affects quality).
    for record in records:
        assert record.acf_deviation <= record.epsilon + 1e-6

    # Larger neighbourhoods never reduce the compression ratio dramatically:
    # the widest setting is within a small factor of the narrowest, and the
    # mid-size settings recover most of the brute-force quality.
    for epsilon in SWEEP_EPSILONS:
        by_blocking = {r.extra["blocking"]: r.compression_ratio
                       for r in records if r.epsilon == epsilon}
        widest = by_blocking["sqrt"]
        assert by_blocking["5logn"] >= 0.6 * widest
        assert by_blocking["10logn"] >= 0.6 * widest
        assert np.isfinite(widest)
