"""Table 1 — dataset summary statistics.

Regenerates the dataset-characteristics table (length, ACF configuration,
ACF1/ACF10/PACF5, value range, median, standard deviation, up/equal/down
probabilities, mean delta) for the synthetic stand-ins of the eight paper
datasets.  Absolute values differ from the paper (the data is synthetic) but
the structural properties — strong ACF1, the configured seasonal lags, the
SolarPower zero-plateau — are reproduced.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.data import dataset_names
from repro.stats import acf, pacf, tumbling_window_aggregate


def _summarise(name: str) -> list:
    series = bench_dataset(name)
    meta = series.metadata
    values = series.values
    tracked = values
    if meta["agg_window"] > 1:
        tracked = tumbling_window_aggregate(values, meta["agg_window"])
    lags = min(meta["acf_lags"], tracked.size - 2)
    acf_values = acf(tracked, max(lags, 10))
    pacf_values = pacf(tracked, min(5, tracked.size - 2))
    summary = series.summary()
    return [
        name,
        summary["length"],
        f"{meta['acf_lags']}" + (f" on {meta['agg_window']}" if meta["agg_window"] > 1 else ""),
        f"{acf_values[0]:.3f}",
        f"{float(np.sum(acf_values[:10] ** 2)):.2f}",
        f"{float(np.sum(pacf_values ** 2)):.2f}",
        f"{summary['min']:.2f}",
        f"{summary['value_range']:.1f}",
        f"{summary['median']:.1f}",
        f"{summary['std']:.1f}",
        f"{summary['p_up'] * 100:.0f}/{summary['p_eq'] * 100:.0f}/{summary['p_down'] * 100:.0f}",
        f"{summary['mean_delta']:.2g}",
    ]


def test_table1_dataset_summary(benchmark):
    """Regenerate Table 1 and check the structural expectations."""
    rows = benchmark.pedantic(lambda: [_summarise(name) for name in dataset_names()],
                              rounds=1, iterations=1)
    print()
    print(format_table(
        ["Dataset", "Length", "ACF #Lag", "ACF1", "ACF10", "PACF5", "Min", "Range",
         "Median", "Std", "p_up/p_eq/p_down", "MeanDelta"],
        rows, title="Table 1: Datasets Summary (synthetic stand-ins)"))

    by_name = {row[0]: row for row in rows}
    # Every dataset must show meaningful first-lag autocorrelation, as in the paper.
    for name, row in by_name.items():
        assert float(row[3]) > 0.3, f"{name} lost its autocorrelation structure"
    # SolarPower's night plateau yields a visibly elevated p_eq (Table 1
    # reports 75%).  At smoke scale the series covers only part of one
    # 2,880-sample day, so the plateau share is smaller; it approaches the
    # paper's figure as REPRO_BENCH_SCALE grows towards several full days.
    p_eq = float(by_name["SolarPower"][10].split("/")[1])
    others_max_p_eq = max(float(row[10].split("/")[1])
                          for name, row in by_name.items() if name != "SolarPower")
    assert p_eq > 8.0
    assert p_eq > others_max_p_eq
