"""Section 5.5 (PACF paragraph) — runtime cost of preserving the PACF.

The paper reports that preserving the PACF instead of the ACF keeps the
compression-ratio advantage but is markedly slower (≈6x on ElecPower at
10·log n blocking) because the Durbin-Levinson recursion is O(L²) and runs on
every candidate evaluation.  This benchmark regenerates that comparison on
the synthetic ElecPower stand-in: same bound, statistic switched between
``acf`` and ``pacf``.

Shape assertions: both statistics respect their deviation bound, both achieve
non-trivial compression, and the PACF run costs more time than the ACF run.
"""

from __future__ import annotations

import time

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.core import CameoCompressor
from repro.metrics import mae
from repro.stats import acf, pacf

EPSILON = 0.01
BLOCKING = "5logn"


def _run(series, statistic: str) -> dict:
    max_lag = int(series.metadata.get("acf_lags", 24))
    compressor = CameoCompressor(max_lag, EPSILON, statistic=statistic, blocking=BLOCKING)
    start = time.perf_counter()
    result = compressor.compress(series.values)
    elapsed = time.perf_counter() - start
    reconstruction = result.decompress()
    if statistic == "acf":
        deviation = mae(acf(series.values, max_lag), acf(reconstruction, max_lag))
    else:
        deviation = mae(pacf(series.values, max_lag), pacf(reconstruction, max_lag))
    return {
        "statistic": statistic.upper(),
        "ratio": result.compression_ratio(),
        "deviation": float(deviation),
        "seconds": elapsed,
    }


def test_section55_pacf_preservation_runtime(benchmark):
    """Regenerate the ACF-vs-PACF runtime comparison of Section 5.5."""
    series = bench_dataset("ElecPower")

    def _collect():
        return [_run(series, "acf"), _run(series, "pacf")]

    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    print()
    print(format_table(
        ["Statistic", "CR", "Deviation", "Time [s]"],
        [[r["statistic"], f"{r['ratio']:.2f}", f"{r['deviation']:.5f}",
          f"{r['seconds']:.3f}"] for r in rows],
        title=f"Section 5.5: preserving the PACF vs the ACF (eps={EPSILON}, "
              f"blocking={BLOCKING})"))

    by_stat = {row["statistic"]: row for row in rows}
    acf_row, pacf_row = by_stat["ACF"], by_stat["PACF"]

    # Both respect their bound and achieve real compression.
    for row in rows:
        assert row["deviation"] <= EPSILON + 1e-9
        assert row["ratio"] > 1.2
        assert np.isfinite(row["seconds"])
    # The paper's observation: the O(L^2) Durbin-Levinson recursion makes the
    # PACF variant substantially slower than the ACF variant.
    assert pacf_row["seconds"] > acf_row["seconds"]
