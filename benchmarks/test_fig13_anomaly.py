"""Figure 13 — anomaly detection on compressed data.

Left: UCR-style detection score as the compression ratio increases for CAMEO,
VW, SWING, and FFT on a labelled synthetic corpus.
Right: runtime of the Matrix-Profile-style discord search on the irregular
(compressed) series (iMP) vs. the dense reference (rMP).
"""

from __future__ import annotations

import time

import numpy as np

from repro.anomaly import irregular_matrix_profile, regular_matrix_profile_naive, ucr_score
from repro.benchlib import format_table
from repro.compressors import FFTCompressor, SwingFilter
from repro.core import CameoCompressor
from repro.data import generate_anomaly_corpus
from repro.simplify import AcfConstrainedSimplifier, VisvalingamWhyatt

NUM_CASES = 3
SERIES_LENGTH = 1200
PERIOD = 75
TARGET_RATIOS = (6.0,)
DETECTION_WINDOW = (100, 100)


def _decompressors(values: np.ndarray, ratio: float) -> dict:
    outputs = {}
    outputs["CAMEO"] = CameoCompressor(PERIOD, epsilon=None,
                                       target_ratio=ratio).compress(values).decompress()
    outputs["VW"] = AcfConstrainedSimplifier(
        VisvalingamWhyatt(), PERIOD, epsilon=None,
        target_ratio=ratio).compress(values).decompress()
    value_range = float(values.max() - values.min()) or 1.0
    bound, model = 0.01, None
    for _ in range(14):
        model = SwingFilter(bound * value_range).compress(values)
        if model.compression_ratio() >= ratio:
            break
        bound *= 1.8
    outputs["SWING"] = model.decompress()
    outputs["FFT"] = FFTCompressor(
        keep_components=max(int(values.size / ratio / 3), 2)).compress(values).decompress()
    return outputs


def _accuracy_sweep(corpus) -> list:
    rows = []
    raw_score, _ = ucr_score(corpus, window_range=DETECTION_WINDOW)
    rows.append(["raw", "-", f"{raw_score:.2f}"])
    for ratio in TARGET_RATIOS:
        reconstructions = {case.name: _decompressors(case.values, ratio)
                           for case in corpus}
        for method in ("CAMEO", "VW", "SWING", "FFT"):
            score, _ = ucr_score(
                corpus, lambda case, m=method: reconstructions[case.name][m],
                window_range=DETECTION_WINDOW)
            rows.append([method, f"{ratio:.0f}", f"{score:.2f}"])
    return rows


def _runtime_comparison(corpus) -> list:
    case = corpus[0]
    compressed = CameoCompressor(PERIOD, epsilon=None, target_ratio=10.0).compress(case.values)
    start = time.perf_counter()
    dense = regular_matrix_profile_naive(case.values, 150)
    dense_time = time.perf_counter() - start
    start = time.perf_counter()
    sparse = irregular_matrix_profile(compressed, 150)
    sparse_time = time.perf_counter() - start
    return [["rMP (dense)", f"{150.0:.0f}", f"{dense_time * 1000:.1f}",
             str(dense.discord_index())],
            ["iMP (irregular)", f"{sparse.points_per_segment:.1f}",
             f"{sparse_time * 1000:.1f}", str(sparse.discord_index())]]


def test_figure13_anomaly_detection(benchmark):
    """Regenerate the Figure 13 accuracy and runtime measurements."""
    corpus = generate_anomaly_corpus(NUM_CASES, length=SERIES_LENGTH, period=PERIOD, seed=17)
    accuracy_rows, runtime_rows = benchmark.pedantic(
        lambda: (_accuracy_sweep(corpus), _runtime_comparison(corpus)),
        rounds=1, iterations=1)

    print()
    print(format_table(["Method", "Target CR", "UCR-score"], accuracy_rows,
                       title="Figure 13 (left): UCR-score vs compression ratio"))
    print()
    print(format_table(["Variant", "Points/segment", "Time [ms]", "Discord index"],
                       runtime_rows,
                       title="Figure 13 (right): discord-search runtime"))

    raw_score = float(accuracy_rows[0][2])
    assert raw_score >= 0.5, "the detector must solve most raw cases"
    cameo_scores = [float(r[2]) for r in accuracy_rows if r[0] == "CAMEO"]
    # Compression costs at most a bounded amount of detection accuracy at
    # these ratios (paper: CAMEO holds up to ~28x).
    assert min(cameo_scores) >= raw_score - 0.5
    # The irregular variant uses far fewer points per segment.
    assert float(runtime_rows[1][1]) < float(runtime_rows[0][1])
