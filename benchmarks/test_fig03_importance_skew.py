"""Figure 3 — skew of the initial ACF-importance distribution.

The paper motivates CAMEO by showing that the impact of removing a point on
the ACF is highly non-uniform: most points barely matter, a few matter a lot.
This benchmark recomputes the initial per-point ACF impact (Algorithm 2) on
four datasets and reports distributional statistics that quantify the skew.
"""

from __future__ import annotations

import numpy as np

from repro.benchlib import bench_dataset, format_table
from repro.core.tracker import StatisticTracker

DATASETS = ("ElecPower", "Pedestrian", "UKElecDem", "MinTemp")


def _impact_distribution(name: str) -> dict:
    series = bench_dataset(name)
    max_lag = min(series.metadata["acf_lags"], len(series) // 4)
    tracker = StatisticTracker(series.values, max_lag,
                               agg_window=series.metadata["agg_window"])
    _positions, impacts = tracker.initial_impacts("mae")
    impacts = impacts[np.isfinite(impacts)]
    mean = float(np.mean(impacts)) or 1e-30
    return {
        "dataset": name,
        "points": int(impacts.size),
        "mean": mean,
        "median": float(np.median(impacts)),
        "p99": float(np.percentile(impacts, 99)),
        "max": float(np.max(impacts)),
        "skewness": float(((impacts - mean) ** 3).mean() / (impacts.std() ** 3 + 1e-30)),
        "top1pct_share": float(np.sort(impacts)[-max(impacts.size // 100, 1):].sum()
                               / (impacts.sum() + 1e-30)),
    }


def test_figure3_acf_importance_skew(benchmark):
    """Regenerate the Figure 3 skew statistics."""
    stats = benchmark.pedantic(lambda: [_impact_distribution(name) for name in DATASETS],
                               rounds=1, iterations=1)
    rows = [[s["dataset"], s["points"], f"{s['mean']:.2e}", f"{s['median']:.2e}",
             f"{s['p99']:.2e}", f"{s['max']:.2e}", f"{s['skewness']:.1f}",
             f"{s['top1pct_share'] * 100:.1f}%"] for s in stats]
    print()
    print(format_table(
        ["Dataset", "Points", "Mean", "Median", "P99", "Max", "Skewness", "Top-1% share"],
        rows, title="Figure 3: ACF-importance skew (initial impact distribution)"))

    for s in stats:
        # Non-uniform importance: the distribution is right-skewed and the
        # 99th percentile dominates the median.
        assert s["skewness"] > 0.5, f"{s['dataset']} impact distribution is not skewed"
        assert s["p99"] > 2.0 * max(s["median"], 1e-30)
