"""Figure 11 — joint fine- and coarse-grained parallelization.

The paper combines both strategies: the series is partitioned across
coarse-grained workers and each worker's ReHeap look-ahead is additionally
chunked over fine-grained threads.  This benchmark sweeps a small
(fine x coarse) grid and reports the speed-up relative to the (1, 1)
configuration, checking that the error bound survives every combination.
"""

from __future__ import annotations

import time

from repro.benchlib import bench_dataset, format_table
from repro.compressors import acf_deviation_of
from repro.core import CoarseGrainedCameo, FineGrainedCameo
from repro.data.timeseries import TimeSeries

EPSILON = 0.01
FINE_THREADS = (1, 2)
COARSE_WORKERS = (1, 2, 4)


class _HybridCameo(CoarseGrainedCameo):
    """Coarse-grained partitioning whose per-partition compressor is fine-grained."""

    def __init__(self, *args, fine_threads: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.fine_threads = fine_threads

    def _compress_partition(self, values, local_epsilon):
        compressor = FineGrainedCameo(
            self.max_lag, local_epsilon, threads=self.fine_threads, metric=self.metric,
            statistic=self.statistic, agg_window=self.agg_window, agg=self.agg,
            blocking=self.blocking)
        return compressor.compress(values)


def _sweep(series: TimeSeries) -> list:
    max_lag = series.metadata["acf_lags"]
    rows = []
    baseline_time = None
    for fine in FINE_THREADS:
        for coarse in COARSE_WORKERS:
            compressor = _HybridCameo(max_lag, EPSILON, workers=coarse,
                                      fine_threads=fine, blocking="5logn",
                                      agg_window=series.metadata["agg_window"])
            start = time.perf_counter()
            result, report = compressor.compress(series)
            elapsed = time.perf_counter() - start
            if baseline_time is None:
                baseline_time = elapsed
            rows.append([fine, coarse, f"{elapsed:.2f}", f"{baseline_time / elapsed:.2f}x",
                         f"{result.compression_ratio():.2f}",
                         f"{report.global_deviation:.5f}"])
    return rows


def test_figure11_hybrid_parallelization(benchmark):
    """Regenerate the Figure 11 hybrid-parallelization grid."""
    series = bench_dataset("MinTemp")
    rows = benchmark.pedantic(lambda: _sweep(series), rounds=1, iterations=1)
    print()
    print(format_table(
        ["Fine threads", "Coarse workers", "Time [s]", "Speed-up", "CR", "ACF dev"],
        rows, title=f"Figure 11: Hybrid parallelization on {series.name} "
                    f"(epsilon={EPSILON})"))

    for row in rows:
        assert float(row[5]) <= EPSILON + 1e-6
        assert float(row[4]) >= 1.0
