"""Tests for the line-simplification baselines (VW, TP, PIP, RDP)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simplify import (
    PerceptualImportantPoints,
    RamerDouglasPeucker,
    TurningPoints,
    VisvalingamWhyatt,
    make_simplifier,
    rdp_mask,
    triangle_areas,
    turning_point_mask,
)


def _zigzag(n: int = 200, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 5.0) * 3 + rng.normal(0, 0.3, n)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("VW", VisvalingamWhyatt),
        ("TPs", TurningPoints),
        ("TPm", TurningPoints),
        ("PIPv", PerceptualImportantPoints),
        ("PIPe", PerceptualImportantPoints),
        ("RDP", RamerDouglasPeucker),
    ])
    def test_make_simplifier(self, name, cls):
        assert isinstance(make_simplifier(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_simplifier("XYZ")


class TestRemovalOrderContract:
    @pytest.mark.parametrize("name", ["VW", "TPs", "TPm", "PIPv", "PIPe", "RDP"])
    def test_order_is_permutation_of_interior(self, name):
        values = _zigzag(150)
        order = make_simplifier(name).removal_order(values)
        assert set(order.tolist()) == set(range(1, 149))
        assert order.size == 148

    @pytest.mark.parametrize("name", ["VW", "TPs", "PIPv", "RDP"])
    def test_short_series(self, name):
        assert make_simplifier(name).removal_order(np.array([1.0, 2.0])).size == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_vw_order_valid_for_random_series(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 60))
        values = rng.normal(0, 1, n)
        order = VisvalingamWhyatt().removal_order(values)
        assert sorted(order.tolist()) == list(range(1, n - 1))


class TestVisvalingam:
    def test_triangle_areas_formula(self):
        values = np.array([0.0, 1.0, 0.0])
        areas = triangle_areas(values)
        assert areas[1] == pytest.approx(1.0)
        assert np.isinf(areas[0]) and np.isinf(areas[2])

    def test_collinear_point_removed_first(self):
        values = np.array([0.0, 1.0, 2.0, 10.0, 2.0, 1.0, 0.0])
        order = VisvalingamWhyatt().removal_order(values)
        # Points 1, 2, 4, 5 are on straight lines; the peak (3) must be last.
        assert order[-1] == 3

    def test_importance_matches_initial_areas(self):
        values = _zigzag(50)
        importance = VisvalingamWhyatt().importance(values)
        assert np.allclose(importance[1:-1], triangle_areas(values)[1:-1])


class TestTurningPoints:
    def test_mask_marks_extrema(self):
        values = np.array([0.0, 2.0, 1.0, 3.0, 0.0])
        mask = turning_point_mask(values)
        assert mask[1] and mask[2] and mask[3]
        assert mask[0] and mask[-1]

    def test_monotone_series_has_no_interior_turning_points(self):
        mask = turning_point_mask(np.arange(10.0))
        assert not mask[1:-1].any()

    def test_non_turning_points_removed_before_turning_points(self):
        values = np.array([0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 3.0, 2.0, 0.0])
        mask = turning_point_mask(values)
        order = TurningPoints("sum").removal_order(values)
        turning_interior = set(np.flatnonzero(mask[1:-1]) + 1)
        seen_turning = False
        for index in order:
            if index in turning_interior:
                seen_turning = True
            else:
                assert not seen_turning, "non-turning point removed after a turning point"

    def test_invalid_evaluation(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            TurningPoints("median")

    def test_names(self):
        assert TurningPoints("sum").name == "TPs"
        assert TurningPoints("mae").name == "TPm"


class TestPip:
    def test_selection_starts_with_most_prominent_point(self):
        values = np.zeros(50)
        values[20] = 10.0
        selection = PerceptualImportantPoints("vertical").selection_order(values)
        assert selection[0] == 20

    def test_euclidean_and_vertical_differ_on_steep_series(self):
        values = np.cumsum(np.r_[np.ones(50) * 5, -np.ones(50) * 5])
        vertical = PerceptualImportantPoints("vertical").removal_order(values)
        euclidean = PerceptualImportantPoints("euclidean").removal_order(values)
        assert vertical.size == euclidean.size

    def test_invalid_distance(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            PerceptualImportantPoints("manhattan")

    def test_importance_monotone_with_selection(self):
        values = _zigzag(80)
        pip = PerceptualImportantPoints("vertical")
        selection = pip.selection_order(values)
        importance = pip.importance(values)
        assert importance[selection[0]] >= importance[selection[-1]]


class TestRdp:
    def test_mask_keeps_prominent_peak(self):
        values = np.zeros(100)
        values[60] = 5.0
        mask = rdp_mask(values, tolerance=1.0)
        assert mask[60]
        assert mask.sum() <= 5

    def test_mask_tolerance_zero_keeps_everything_nonlinear(self):
        rng = np.random.default_rng(0)
        values = rng.normal(0, 1, 50)
        mask = rdp_mask(values, tolerance=0.0)
        assert mask.sum() >= 45

    def test_straight_line_keeps_only_endpoints(self):
        mask = rdp_mask(np.linspace(0, 1, 100), tolerance=0.01)
        assert mask.sum() == 2
