"""Tests for the ACF-constrained adapter shared by all line simplifiers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.metrics import mae
from repro.simplify import AcfConstrainedSimplifier, VisvalingamWhyatt, make_simplifier
from repro.stats import acf, tumbling_window_aggregate


def _series(n: int = 800, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 10 + 3 * np.sin(2 * np.pi * np.arange(n) / 24) + rng.normal(0, 0.4, n)


class TestAdapter:
    @pytest.mark.parametrize("name", ["VW", "TPs", "TPm", "PIPv", "PIPe"])
    def test_acf_bound_respected(self, name):
        x = _series(seed=1)
        adapter = AcfConstrainedSimplifier(make_simplifier(name), 24, 0.01)
        result = adapter.compress(x)
        deviation = mae(acf(x, 24), acf(result.decompress(), 24))
        assert deviation <= 0.01 + 1e-9

    def test_epsilon_or_ratio_required(self):
        with pytest.raises(InvalidParameterError):
            AcfConstrainedSimplifier(VisvalingamWhyatt(), 10, epsilon=None)

    def test_target_ratio_mode(self):
        x = _series(seed=2)
        adapter = AcfConstrainedSimplifier(VisvalingamWhyatt(), 24, epsilon=None,
                                           target_ratio=4.0)
        result = adapter.compress(x)
        assert result.compression_ratio() >= 4.0 - 1e-9

    def test_larger_epsilon_never_decreases_compression(self):
        x = _series(seed=3)
        small = AcfConstrainedSimplifier(VisvalingamWhyatt(), 24, 0.005).compress(x)
        large = AcfConstrainedSimplifier(VisvalingamWhyatt(), 24, 0.05).compress(x)
        assert large.compression_ratio() >= small.compression_ratio() - 1e-9

    def test_aggregated_constraint(self):
        x = _series(1200, seed=4)
        adapter = AcfConstrainedSimplifier(VisvalingamWhyatt(), 8, 0.01, agg_window=24)
        result = adapter.compress(x)
        original = tumbling_window_aggregate(x, 24)
        reconstructed = tumbling_window_aggregate(result.decompress(), 24)
        assert mae(acf(original, 8), acf(reconstructed, 8)) <= 0.01 + 1e-9

    def test_metadata(self):
        x = _series(400, seed=5)
        result = AcfConstrainedSimplifier(VisvalingamWhyatt(), 12, 0.02).compress(x)
        assert result.metadata["compressor"] == "VW"
        assert result.metadata["achieved_deviation"] <= 0.02
        assert "elapsed_seconds" in result.metadata

    def test_short_series_passthrough(self):
        result = AcfConstrainedSimplifier(VisvalingamWhyatt(), 2, 0.1).compress(
            np.array([1.0, 2.0, 3.0]))
        assert len(result) == 3

    def test_acf_deviation_helper_matches_direct(self):
        x = _series(500, seed=6)
        adapter = AcfConstrainedSimplifier(VisvalingamWhyatt(), 24, 0.02)
        result = adapter.compress(x)
        helper = adapter.acf_deviation(x, result)
        direct = mae(acf(x, 24), acf(result.decompress(), 24))
        assert helper == pytest.approx(direct, abs=1e-12)

    def test_cameo_beats_or_matches_vw_on_seasonal_data(self):
        """The paper's headline claim at small scale: CAMEO's ACF-aware
        ranking achieves at least the compression of VW under the same
        bound."""
        from repro.core import CameoCompressor

        x = _series(900, seed=7)
        epsilon = 0.01
        vw = AcfConstrainedSimplifier(VisvalingamWhyatt(), 24, epsilon).compress(x)
        cameo = CameoCompressor(24, epsilon).compress(x)
        assert cameo.compression_ratio() >= 0.9 * vw.compression_ratio()
