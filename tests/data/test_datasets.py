"""Tests for the synthetic dataset registry and generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    dataset_names,
    generate_anomaly_case,
    generate_anomaly_corpus,
    generate_ar_process,
    generate_intermittent_series,
    generate_random_walk,
    generate_seasonal_series,
    generate_sine_mixture,
    load_dataset,
)
from repro.data.generators import SeasonalSpec, SyntheticSeriesConfig
from repro.exceptions import DatasetError, InvalidParameterError
from repro.stats import acf, tumbling_window_aggregate


class TestRegistry:
    def test_eight_paper_datasets_present(self):
        names = dataset_names()
        assert len(names) == 8
        for expected in ("ElecPower", "MinTemp", "Pedestrian", "UKElecDem",
                         "AUSElecDem", "Humidity", "IRBioTemp", "SolarPower"):
            assert expected in names

    def test_load_is_deterministic(self):
        a = load_dataset("Pedestrian", length=1000, seed=3)
        b = load_dataset("Pedestrian", length=1000, seed=3)
        assert np.array_equal(a.values, b.values)

    def test_load_case_insensitive(self):
        series = load_dataset("pedestrian", length=500)
        assert series.name == "Pedestrian"

    def test_unknown_dataset_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("NotADataset")

    def test_metadata_carries_experiment_configuration(self):
        series = load_dataset("Humidity", length=2000)
        assert series.metadata["acf_lags"] == 24
        assert series.metadata["agg_window"] == 60
        assert series.metadata["group"] == 2

    def test_group1_has_no_aggregation(self):
        for name in ("ElecPower", "MinTemp", "Pedestrian", "UKElecDem"):
            assert DATASETS[name].agg_window == 1

    def test_lengths_default_to_paper_length_capped(self):
        series = load_dataset("ElecPower")
        assert len(series) == DATASETS["ElecPower"].paper_length

    @pytest.mark.parametrize("name", dataset_names())
    def test_every_dataset_has_positive_seasonal_acf(self, name):
        """The generators must produce the seasonality the ACF configuration
        expects — otherwise the compression experiments are meaningless."""
        series = load_dataset(name, length=6000, seed=1)
        window = series.metadata["agg_window"]
        lags = series.metadata["acf_lags"]
        values = series.values
        if window > 1:
            values = tumbling_window_aggregate(values, window)
        lags = min(lags, values.size // 2 - 1)
        acf_values = acf(values, lags)
        assert acf_values[0] > 0.3, f"{name} lacks short-term autocorrelation"


class TestGenerators:
    def test_seasonal_series_has_expected_period(self):
        config = SyntheticSeriesConfig(length=2400,
                                       seasonalities=[SeasonalSpec(period=24, amplitude=2.0)],
                                       noise_std=0.1)
        x = generate_seasonal_series(config, seed=0)
        acf_values = acf(x, 30)
        assert acf_values[23] > 0.8

    def test_random_walk_length_and_start(self):
        x = generate_random_walk(500, level=10.0, seed=1)
        assert x.size == 500
        assert x[0] == pytest.approx(10.0)

    def test_ar_process_autocorrelation_sign(self):
        x = generate_ar_process(20_000, [0.9], seed=2)
        assert acf(x, 1)[0] > 0.8

    def test_ar_process_requires_coefficients(self):
        with pytest.raises(InvalidParameterError):
            generate_ar_process(100, [])

    def test_intermittent_series_has_zeros(self):
        x = generate_intermittent_series(5000, period=100, active_fraction=0.4, seed=3)
        assert np.mean(x == 0.0) > 0.4
        assert np.all(x >= 0.0)

    def test_sine_mixture_validation(self):
        with pytest.raises(InvalidParameterError):
            generate_sine_mixture(100, [])
        with pytest.raises(InvalidParameterError):
            generate_sine_mixture(100, [10, 20], amplitudes=[1.0])

    def test_invalid_ar_coefficient(self):
        config = SyntheticSeriesConfig(length=100, noise_std=1.0, ar_coefficient=1.5)
        with pytest.raises(InvalidParameterError):
            generate_seasonal_series(config, seed=0)


class TestAnomalyCorpus:
    def test_corpus_size_and_kinds(self):
        corpus = generate_anomaly_corpus(12, length=1000, period=50)
        assert len(corpus) == 12
        kinds = {case.kind for case in corpus}
        assert len(kinds) >= 5

    def test_case_hit_logic(self):
        case = generate_anomaly_case("spike", length=1000, period=50, seed=5)
        assert case.is_hit(case.anomaly_start)
        assert case.is_hit(case.anomaly_start - 50)
        assert not case.is_hit(case.anomaly_start - 500)

    def test_anomaly_in_second_half(self):
        for seed in range(5):
            case = generate_anomaly_case("dip", length=2000, period=100, seed=seed)
            assert case.anomaly_start >= 1000

    def test_unknown_kind_rejected(self):
        with pytest.raises(InvalidParameterError):
            generate_anomaly_case("alien")

    def test_spike_changes_values(self):
        case = generate_anomaly_case("spike", length=1000, period=50, seed=9)
        region = case.values[case.anomaly_start:case.anomaly_end]
        assert np.max(np.abs(region)) > 3.0
