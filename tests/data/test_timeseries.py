"""Tests for the TimeSeries / IrregularSeries containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BITS_PER_VALUE_RAW, IrregularSeries, MultivariateSeries, TimeSeries
from repro.exceptions import InvalidParameterError, InvalidSeriesError


class TestTimeSeries:
    def test_basic_construction(self):
        series = TimeSeries(values=[1.0, 2.0, 3.0], name="t", period=2)
        assert len(series) == 3
        assert series[1] == 2.0
        assert list(series) == [1.0, 2.0, 3.0]

    def test_summary_statistics(self):
        series = TimeSeries(values=[1.0, 3.0, 2.0, 2.0], name="s")
        summary = series.summary()
        assert summary["length"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["p_up"] == pytest.approx(1 / 3)
        assert summary["p_eq"] == pytest.approx(1 / 3)
        assert summary["p_down"] == pytest.approx(1 / 3)

    def test_slice(self):
        series = TimeSeries(values=np.arange(10.0), name="s")
        part = series.slice(2, 6)
        assert np.array_equal(part.values, [2.0, 3.0, 4.0, 5.0])

    def test_bits(self):
        series = TimeSeries(values=np.arange(10.0))
        assert series.bits() == 10 * BITS_PER_VALUE_RAW

    def test_invalid_inputs(self):
        with pytest.raises(InvalidSeriesError):
            TimeSeries(values=[])
        with pytest.raises(InvalidSeriesError):
            TimeSeries(values=[1.0, np.inf])
        with pytest.raises(InvalidParameterError):
            TimeSeries(values=[1.0, 2.0], period=-1)


class TestIrregularSeries:
    def _example(self) -> IrregularSeries:
        return IrregularSeries(indices=[0, 2, 5, 9], values=[0.0, 2.0, 5.0, 9.0],
                               original_length=10)

    def test_decompress_linear_interpolation(self):
        series = self._example()
        assert np.allclose(series.decompress(), np.arange(10.0))

    def test_value_at(self):
        series = IrregularSeries(indices=[0, 4], values=[0.0, 8.0], original_length=5)
        assert series.value_at(2) == pytest.approx(4.0)
        with pytest.raises(IndexError):
            series.value_at(10)

    def test_compression_ratio(self):
        assert self._example().compression_ratio() == pytest.approx(2.5)

    def test_bits_accounting(self):
        series = self._example()
        assert series.bits(store_indices=False) == 4 * 64
        assert series.bits(store_indices=True) == 4 * (64 + 32)
        assert series.bits_per_value() == pytest.approx(4 * 64 / 10)

    def test_segments_iteration(self):
        segments = list(self._example().segments())
        assert segments[0] == (0, 2, 0.0, 2.0)
        assert len(segments) == 3

    def test_validation_rules(self):
        with pytest.raises(InvalidSeriesError):
            IrregularSeries(indices=[0, 5], values=[1.0], original_length=10)
        with pytest.raises(InvalidSeriesError):
            IrregularSeries(indices=[0, 3, 2, 9], values=[1.0] * 4, original_length=10)
        with pytest.raises(InvalidSeriesError):
            IrregularSeries(indices=[1, 9], values=[1.0, 2.0], original_length=10)
        with pytest.raises(InvalidSeriesError):
            IrregularSeries(indices=[0, 5], values=[1.0, 2.0], original_length=10)
        with pytest.raises(InvalidSeriesError):
            IrregularSeries(indices=[0], values=[1.0], original_length=1)


class TestMultivariate:
    def test_column_access(self):
        mv = MultivariateSeries(columns={"a": [1.0, 2.0], "b": [3.0, 4.0]})
        assert len(mv) == 2
        assert np.array_equal(mv.column("a"), [1.0, 2.0])
        assert mv.as_matrix().shape == (2, 2)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidSeriesError):
            MultivariateSeries(columns={"a": [1.0, 2.0], "b": [3.0]})

    def test_unknown_column(self):
        mv = MultivariateSeries(columns={"a": [1.0, 2.0]})
        with pytest.raises(InvalidParameterError):
            mv.column("zzz")

    def test_empty_rejected(self):
        with pytest.raises(InvalidSeriesError):
            MultivariateSeries(columns={})
