"""Tests for the surviving-point neighbour list."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import NeighborList


class TestNeighborList:
    def test_initial_structure(self):
        nl = NeighborList(5)
        assert nl.alive_count() == 5
        assert nl.left_of(2) == 1
        assert nl.right_of(2) == 3
        assert nl.left_of(0) == -1
        assert nl.right_of(4) == 5

    def test_remove_links_neighbours(self):
        nl = NeighborList(6)
        nl.remove(2)
        assert not nl.is_alive(2)
        assert nl.right_of(1) == 3
        assert nl.left_of(3) == 1

    def test_remove_endpoints_rejected(self):
        nl = NeighborList(4)
        with pytest.raises(ValueError):
            nl.remove(0)
        with pytest.raises(ValueError):
            nl.remove(3)

    def test_double_remove_rejected(self):
        nl = NeighborList(5)
        nl.remove(2)
        with pytest.raises(ValueError):
            nl.remove(2)

    def test_remove_returns_former_neighbours(self):
        nl = NeighborList(7)
        assert nl.remove(3) == (2, 4)
        assert nl.remove(4) == (2, 5)

    def test_alive_indices_after_removals(self):
        nl = NeighborList(8)
        for index in (2, 4, 5):
            nl.remove(index)
        assert np.array_equal(nl.alive_indices(), [0, 1, 3, 6, 7])
        assert nl.alive_count() == 5

    def test_hops_excludes_removed_and_endpoints(self):
        nl = NeighborList(10)
        nl.remove(4)
        nl.remove(5)
        neighbours = nl.hops(4, 2)
        # Two hops left of 4: 3, 2; two hops right (skipping removed 5): 6, 7.
        assert sorted(neighbours) == [2, 3, 6, 7]
        assert 0 not in nl.hops(1, 5)

    def test_hops_with_endpoints_included(self):
        nl = NeighborList(6)
        neighbours = nl.hops(1, 3, include_endpoints=True)
        assert 0 in neighbours

    def test_gap_of_removed_point(self):
        nl = NeighborList(10)
        nl.remove(3)
        nl.remove(4)
        nl.remove(5)
        assert nl.gap(4) == (2, 6)
        # Surviving point: its direct neighbours.
        assert nl.gap(6) == (2, 7)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            NeighborList(1)
