"""The native kernel tier must reproduce the NumPy tier bit for bit.

Three layers, mirroring the guarantees the NumPy tier gives against the
preserved reference implementations:

* the compiled interior ReHeap ACF kernel, exercised through
  :func:`repro.core.impact.batched_contiguous_acf` with the tier flipped,
  must equal both the NumPy kernel and the preserved reference kernel on
  randomized segment batteries (hypothesis) — the same harness style that
  locked PR 3/PR 4;
* the compiled heap must evolve the *identical slot layout* as the hybrid
  :class:`repro.core.heap.IndexedMinHeap` under randomized operation
  sequences, so pop order (ties included) cannot change;
* the compiled gap-delta kernel must equal the NumPy formulation.

Everything here skips cleanly when the extension was not built — the
dispatch/kill-switch tests still run, asserting the pure-NumPy fallback.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import _kernels
from repro._kernels.reference import reference_batched_contiguous_acf
from repro.core.heap import IndexedMinHeap, NativeIndexedMinHeap, make_heap
from repro.core.impact import batched_contiguous_acf, segment_interpolation_deltas
from repro.stats.aggregates import ACFAggregateState

needs_native = pytest.mark.skipif(not _kernels.native_available(),
                                  reason="native extension not built")


@pytest.fixture(autouse=True)
def _restore_tier():
    yield
    _kernels.set_native_enabled(None)


def _random_case(rng: np.random.Generator):
    n = int(rng.integers(12, 400))
    max_lag = int(rng.integers(1, min(n - 2, 60)))
    values = rng.normal(0.0, 1.0, n) * 10.0 ** rng.integers(-4, 5, n)
    state = ACFAggregateState(values, max_lag)
    segments = int(rng.integers(1, 40))
    # occasionally force long segments so the partner-matrix cross path runs
    max_seg = 14 if rng.integers(0, 2) else 40
    lengths = rng.integers(0, min(max_seg, n - 1), segments)
    positions: list[int] = []
    for length in lengths:
        if length == 0:
            continue
        start = int(rng.integers(0, n - length + 1))
        positions.extend(range(start, start + int(length)))
    positions_arr = np.asarray(positions, dtype=np.int64)
    deltas = rng.normal(0.0, 0.5, positions_arr.size)
    return state, lengths, positions_arr, deltas


@needs_native
class TestInteriorKernelBitIdentity:
    @settings(max_examples=120, deadline=None)
    @given(seed=st.integers(0, 2 ** 31))
    def test_native_equals_numpy_and_reference(self, seed):
        rng = np.random.default_rng(seed)
        state, lengths, positions, deltas = _random_case(rng)
        _kernels.set_native_enabled(True)
        native = batched_contiguous_acf(state, lengths, positions, deltas)
        _kernels.set_native_enabled(False)
        numpy_tier = batched_contiguous_acf(state, lengths, positions, deltas)
        assert np.array_equal(native, numpy_tier)
        reference = reference_batched_contiguous_acf(state, lengths,
                                                     positions, deltas)
        assert np.array_equal(native, reference)

    def test_mixed_interior_edge_blocks(self):
        rng = np.random.default_rng(5)
        n, max_lag = 150, 25
        state = ACFAggregateState(rng.normal(0, 1, n), max_lag)
        lengths = np.array([3, 6, 4], dtype=np.int64)
        positions = np.concatenate([
            np.arange(0, 3),           # edge (left)
            np.arange(70, 76),         # interior
            np.arange(n - 4, n),       # edge (right)
        ]).astype(np.int64)
        deltas = rng.normal(0, 0.5, positions.size)
        _kernels.set_native_enabled(True)
        native = batched_contiguous_acf(state, lengths, positions, deltas)
        _kernels.set_native_enabled(False)
        numpy_tier = batched_contiguous_acf(state, lengths, positions, deltas)
        assert np.array_equal(native, numpy_tier)

    def test_gap_deltas_bitwise(self):
        rng = np.random.default_rng(17)
        for _ in range(200):
            n = int(rng.integers(5, 300))
            current = rng.normal(0.0, 5.0, n) * 10.0 ** rng.integers(-3, 4, n)
            left = int(rng.integers(0, n - 2))
            right = int(rng.integers(left + 2, n))
            _kernels.set_native_enabled(True)
            start_a, fast = segment_interpolation_deltas(current, left, right)
            _kernels.set_native_enabled(False)
            start_b, slow = segment_interpolation_deltas(current, left, right)
            assert start_a == start_b
            assert np.array_equal(fast, slow)


def _mirror_op(rng: np.random.Generator, heaps, capacity: int,
               present: set[int]) -> None:
    """Apply one random operation to every heap, asserting identical results."""
    absent = [i for i in range(capacity) if i not in present]
    choice = rng.integers(0, 7)
    if choice == 0 and absent:
        item = int(rng.choice(absent))
        key = float(rng.normal())
        for heap in heaps:
            heap.push(item, key)
        present.add(item)
    elif choice == 1 and present:
        results = [heap.pop() for heap in heaps]
        assert len({result for result in results}) == 1
        present.discard(results[0][0])
    elif choice == 2 and present:
        item = int(rng.choice(sorted(present)))
        for heap in heaps:
            heap.remove(item)
        present.discard(item)
    elif choice == 3:
        item = int(rng.integers(0, capacity))
        key = float(rng.normal())
        for heap in heaps:
            heap.update(item, key)
        present.add(item)
    elif choice == 4:
        count = int(rng.integers(1, max(2, capacity // 2)))
        items = rng.choice(capacity, size=min(count, capacity), replace=False)
        keys = rng.normal(size=items.size)
        for heap in heaps:
            heap.update_many(items, keys)
        present.update(int(i) for i in items)
    elif choice == 5 and present:
        k = int(rng.integers(1, len(present) + 1))
        results = [heap.pop_many(k) for heap in heaps]
        for items_out, keys_out in results[1:]:
            assert np.array_equal(items_out, results[0][0])
            assert np.array_equal(keys_out, results[0][1])
        present.difference_update(int(i) for i in results[0][0])
    elif choice == 6 and present:
        k = int(rng.integers(1, len(present) + 2))
        results = [heap.peek_many(k) for heap in heaps]
        for items_out, keys_out in results[1:]:
            assert np.array_equal(items_out, results[0][0])
            assert np.array_equal(keys_out, results[0][1])


@needs_native
class TestNativeHeapMirrorsHybrid:
    @pytest.fixture(autouse=True)
    def _force_native(self):
        # the suite must pass under REPRO_NATIVE=0 too: these tests verify
        # the native heap itself, so they opt in explicitly (the module
        # fixture restores the environment default afterwards)
        _kernels.set_native_enabled(True)

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2 ** 31))
    def test_random_operation_sequences(self, seed):
        rng = np.random.default_rng(seed)
        capacity = int(rng.integers(2, 40))
        native = NativeIndexedMinHeap(capacity)
        # the hybrid heap is the bit-identity anchor: it is itself locked to
        # ReferenceIndexedMinHeap by tests/core/test_heap.py, so matching its
        # layout transitively matches the reference semantics.
        hybrid = IndexedMinHeap(capacity)
        heaps = (native, hybrid)
        present: set[int] = set()
        if rng.integers(0, 2):
            count = int(rng.integers(0, capacity + 1))
            items = rng.choice(capacity, size=count, replace=False)
            keys = rng.normal(size=count)
            for heap in heaps:
                heap.heapify(items, keys)
            present = {int(i) for i in items}
        for _ in range(int(rng.integers(5, 60))):
            _mirror_op(rng, heaps, capacity, present)
            assert len(native) == len(hybrid)
            assert native.check_invariants()
        # identical *layout*, not just identical contents: this is what
        # makes tie-breaking — and with it the CAMEO pop order — invariant
        # across tiers.
        assert np.array_equal(native.items(), hybrid.items())
        assert np.array_equal(native.keys(), hybrid.keys())

    def test_exact_key_ties_pop_in_the_same_order(self):
        native = NativeIndexedMinHeap(16)
        hybrid = IndexedMinHeap(16)
        rng = np.random.default_rng(3)
        keys = rng.choice([0.0, 1.0, 2.0], size=16)  # heavy ties
        items = np.arange(16, dtype=np.int64)
        native.heapify(items, keys)
        hybrid.heapify(items, keys)
        pops_native = [native.pop() for _ in range(16)]
        pops_hybrid = [hybrid.pop() for _ in range(16)]
        assert pops_native == pops_hybrid

    def test_error_contract_matches(self):
        heap = NativeIndexedMinHeap(8)
        with pytest.raises(IndexError):
            heap.pop()
        heap.push(3, 1.0)
        with pytest.raises(ValueError):
            heap.push(3, 2.0)
        with pytest.raises(ValueError):
            heap.push(8, 1.0)
        with pytest.raises(ValueError):
            heap.update_many([1, 1], [0.0, 1.0])
        with pytest.raises(ValueError):
            heap.push_many([3], [0.0])
        with pytest.raises(KeyError):
            heap.key_of(5)
        heap.remove(7)  # absent: no-op
        assert len(heap) == 1 and 3 in heap


class TestTierDispatch:
    def test_kill_switch_forces_numpy(self):
        _kernels.set_native_enabled(False)
        assert _kernels.get_native() is None
        assert _kernels.active_tier()["interior_acf_block"] == "numpy"
        assert isinstance(make_heap(10), IndexedMinHeap)

    @needs_native
    def test_enabled_tier_reports_native(self):
        _kernels.set_native_enabled(True)
        tiers = _kernels.active_tier()
        assert set(tiers) == {"interior_acf_block", "heap", "gap_deltas"}
        assert all(tier == "native" for tier in tiers.values())
        assert isinstance(make_heap(10), NativeIndexedMinHeap)
        assert "native" in _kernels.describe_tiers()

    def test_env_variable_is_respected(self, monkeypatch):
        monkeypatch.setenv(_kernels.NATIVE_ENV, "0")
        _kernels.set_native_enabled(None)
        assert not _kernels.native_enabled()
        monkeypatch.delenv(_kernels.NATIVE_ENV)
        _kernels.set_native_enabled(None)
        assert _kernels.native_enabled() == _kernels.native_available()

    def test_build_info_shape(self):
        info = _kernels.native_build_info()
        assert {"status", "compiler", "openmp", "max_threads"} <= set(info)
        if _kernels.native_available():
            assert info["status"] == "active"

    @needs_native
    def test_native_heap_requires_active_tier(self):
        _kernels.set_native_enabled(False)
        with pytest.raises(RuntimeError):
            NativeIndexedMinHeap(4)
