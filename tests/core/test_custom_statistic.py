"""Tests for compression under user-provided statistics (repro.core.custom)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CameoCompressor, GenericStatisticTracker, StatisticTracker
from repro.exceptions import InvalidParameterError
from repro.stats import acf
from repro.stats.descriptors import (
    AcfStatistic,
    CompositeStatistic,
    CrossCorrelationStatistic,
    MomentStatistic,
    QuantileStatistic,
    SpectralStatistic,
)

RNG = np.random.default_rng(21)


def _seasonal(n: int = 300, period: int = 24, noise: float = 0.1) -> np.ndarray:
    t = np.arange(n)
    return (np.sin(2 * np.pi * t / period)
            + 0.3 * np.sin(2 * np.pi * t / (period * 4))
            + noise * RNG.standard_normal(n))


class TestGenericStatisticTracker:
    def test_reference_matches_direct_computation(self):
        x = _seasonal()
        tracker = GenericStatisticTracker(x, AcfStatistic(12))
        np.testing.assert_allclose(tracker.reference, acf(x, 12))

    def test_requires_statistic_instance(self):
        with pytest.raises(InvalidParameterError):
            GenericStatisticTracker(_seasonal(), statistic="acf")  # type: ignore[arg-type]

    def test_preview_does_not_mutate_state(self):
        x = _seasonal()
        tracker = GenericStatisticTracker(x, MomentStatistic())
        before = tracker.current_values.copy()
        tracker.preview(10, np.asarray([0.5]))
        np.testing.assert_array_equal(tracker.current_values, before)
        np.testing.assert_allclose(tracker.current_statistic(),
                                   MomentStatistic().compute(x))

    def test_apply_updates_current_statistic(self):
        x = _seasonal()
        tracker = GenericStatisticTracker(x, MomentStatistic())
        tracker.apply(5, np.asarray([1.0, -1.0]))
        modified = x.copy()
        modified[5:7] += np.asarray([1.0, -1.0])
        np.testing.assert_allclose(tracker.current_statistic(),
                                   MomentStatistic().compute(modified))

    def test_preview_equals_recompute_on_modified_copy(self):
        x = _seasonal()
        tracker = GenericStatisticTracker(x, AcfStatistic(8))
        deltas = np.asarray([0.25, -0.5, 0.1])
        preview = tracker.preview(40, deltas)
        modified = x.copy()
        modified[40:43] += deltas
        np.testing.assert_allclose(preview, acf(modified, 8))

    def test_empty_delta_preview_returns_current(self):
        tracker = GenericStatisticTracker(_seasonal(), MomentStatistic())
        np.testing.assert_array_equal(tracker.preview(3, np.asarray([])),
                                      tracker.current_statistic())

    def test_agg_window_wraps_statistic(self):
        x = _seasonal(240)
        tracker = GenericStatisticTracker(x, AcfStatistic(6), agg_window=4, agg="mean")
        aggregated = x[: 240 - 240 % 4].reshape(-1, 4).mean(axis=1)
        np.testing.assert_allclose(tracker.reference, acf(aggregated, 6))

    def test_matches_builtin_acf_tracker_reference(self):
        x = _seasonal()
        generic = GenericStatisticTracker(x, AcfStatistic(16))
        builtin = StatisticTracker(x, 16, statistic="acf")
        np.testing.assert_allclose(generic.reference, builtin.reference, atol=1e-9)

    def test_batch_impacts_match_individual_previews(self):
        x = _seasonal(120)
        tracker = GenericStatisticTracker(x, MomentStatistic())
        changes = [(10, np.asarray([0.3])), (50, np.asarray([-0.7, 0.2])), (90, np.asarray([]))]
        batch = tracker.batch_impacts(changes, "mae")
        for (start, deltas), impact in zip(changes, batch):
            if len(deltas) == 0:
                expected = tracker.deviation("mae", tracker.current_statistic())
            else:
                expected = tracker.deviation("mae", tracker.preview(start, deltas))
            assert impact == pytest.approx(expected)

    def test_initial_impacts_cover_interior_points(self):
        x = _seasonal(80)
        tracker = GenericStatisticTracker(x, MomentStatistic(["mean", "std"]))
        positions, impacts = tracker.initial_impacts("mae")
        assert positions.size == x.size - 2
        assert np.all(np.isfinite(impacts)) and np.all(impacts >= 0)


class TestCompressionWithCustomStatistics:
    @pytest.mark.parametrize("statistic", [
        MomentStatistic(),
        QuantileStatistic((0.1, 0.5, 0.9)),
        SpectralStatistic(8),
        AcfStatistic(12),
    ], ids=["moments", "quantiles", "spectrum", "acf-object"])
    def test_bound_is_honoured(self, statistic):
        x = _seasonal(250)
        epsilon = 0.02
        compressor = CameoCompressor(max_lag=12, epsilon=epsilon, statistic=statistic,
                                     blocking="3logn")
        result = compressor.compress(x)
        reconstruction = result.decompress()
        deviation = float(np.mean(np.abs(
            statistic.compute(x) - statistic.compute(reconstruction))))
        assert deviation <= epsilon + 1e-9
        assert result.compression_ratio() >= 1.0
        assert result.metadata["statistic"] == statistic.name

    def test_acf_object_tracks_builtin_behaviour(self):
        """The generic path and the incremental path preserve the same bound."""
        x = _seasonal(250)
        epsilon = 0.05
        generic = CameoCompressor(max_lag=12, epsilon=epsilon,
                                  statistic=AcfStatistic(12)).compress(x)
        builtin = CameoCompressor(max_lag=12, epsilon=epsilon,
                                  statistic="acf").compress(x)
        for result in (generic, builtin):
            deviation = float(np.mean(np.abs(
                acf(x, 12) - acf(result.decompress(), 12))))
            assert deviation <= epsilon + 1e-9
        # Both should achieve a non-trivial reduction on a smooth seasonal series.
        assert generic.compression_ratio() > 1.5
        assert builtin.compression_ratio() > 1.5

    def test_composite_statistic_compression(self):
        x = _seasonal(200)
        statistic = CompositeStatistic(
            [AcfStatistic(8), MomentStatistic(["mean", "std"])], weights=[1.0, 0.25])
        result = CameoCompressor(max_lag=8, epsilon=0.03,
                                 statistic=statistic).compress(x)
        deviation = float(np.mean(np.abs(
            statistic.compute(x) - statistic.compute(result.decompress()))))
        assert deviation <= 0.03 + 1e-9

    def test_cross_correlation_statistic_compression(self):
        x = _seasonal(200)
        companion = np.roll(x, -2) + 0.05 * RNG.standard_normal(x.size)
        statistic = CrossCorrelationStatistic(companion, max_lag=4)
        result = CameoCompressor(max_lag=4, epsilon=0.02,
                                 statistic=statistic).compress(x)
        deviation = float(np.mean(np.abs(
            statistic.compute(x) - statistic.compute(result.decompress()))))
        assert deviation <= 0.02 + 1e-9

    def test_target_ratio_mode_with_custom_statistic(self):
        x = _seasonal(240)
        result = CameoCompressor(max_lag=8, epsilon=None, target_ratio=4.0,
                                 statistic=MomentStatistic()).compress(x)
        assert result.compression_ratio() >= 4.0 - 1e-9

    def test_custom_statistic_with_agg_window(self):
        x = _seasonal(320)
        statistic = MomentStatistic(["mean", "std"])
        result = CameoCompressor(max_lag=4, epsilon=0.02, statistic=statistic,
                                 agg_window=4, agg="mean").compress(x)
        original_agg = x[: 320 - 320 % 4].reshape(-1, 4).mean(axis=1)
        recon = result.decompress()
        recon_agg = recon[: 320 - 320 % 4].reshape(-1, 4).mean(axis=1)
        deviation = float(np.mean(np.abs(
            statistic.compute(original_agg) - statistic.compute(recon_agg))))
        assert deviation <= 0.02 + 1e-9

    @given(st.floats(min_value=0.005, max_value=0.1))
    @settings(max_examples=8, deadline=None)
    def test_bound_honoured_across_epsilons(self, epsilon):
        x = _seasonal(150)
        statistic = MomentStatistic(["mean", "std"])
        result = CameoCompressor(max_lag=8, epsilon=epsilon,
                                 statistic=statistic).compress(x)
        deviation = float(np.mean(np.abs(
            statistic.compute(x) - statistic.compute(result.decompress()))))
        assert deviation <= epsilon + 1e-9

    def test_larger_epsilon_never_reduces_compression(self):
        x = _seasonal(200)
        statistic = SpectralStatistic(8)
        tight = CameoCompressor(max_lag=8, epsilon=0.001, statistic=statistic).compress(x)
        loose = CameoCompressor(max_lag=8, epsilon=0.05, statistic=statistic).compress(x)
        assert loose.compression_ratio() >= tight.compression_ratio() - 1e-9
