"""Kept-set equivalence of the speculative multi-pop loop.

``batch_size=1`` runs the exact pre-speculation sequential loop (scalar
pop-time previews, no fresh-key reuse).  Every speculative configuration
must keep **bit-identical point sets** to it: the speculative paths resolve
a candidate's deviation from values computed against the same tracker
state, so no accept/reject decision may flip.

The config matrix intentionally mirrors (and extends) the fixed-seed
regression style of ``test_pacf_fastpath.py``: both statistics, the default
``"5logn"`` blocking, aggregated series, skip mode, target-ratio mode,
non-default metrics, and the generic-statistic tracker.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CameoCompressor
from repro.core.compressor import DEFAULT_SPECULATIVE_BATCH
from repro.core.parallel import FineGrainedCameo
from repro.stats.descriptors import Statistic

# The sequential-vs-speculative equivalences must hold under both kernel
# tiers; the native extension may not flip a single accept/reject decision.
pytestmark = pytest.mark.usefixtures("kernel_tier")


def _series(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (3.0 + np.sin(2 * np.pi * t / 24) + 0.4 * np.sin(2 * np.pi * t / 160)
            + rng.normal(0.0, 0.3, n))


#: The fixed-seed regression matrix: (kwargs, seed, n).  Every entry is run
#: with the sequential loop and the speculative loop and must produce the
#: same kept indices, stop reason, and iteration count.
CONFIGS = [
    (dict(max_lag=12, epsilon=0.05), 21, 400),
    (dict(max_lag=12, epsilon=0.05, blocking="5logn"), 3, 700),
    (dict(max_lag=24, epsilon=0.03, blocking="5logn"), 7, 1200),
    (dict(max_lag=8, epsilon=0.02, blocking="logn"), 13, 500),
    (dict(max_lag=10, epsilon=0.05, blocking=9), 17, 600),
    (dict(max_lag=12, epsilon=0.04, metric="cheb"), 23, 500),
    (dict(max_lag=10, epsilon=0.10, metric="rmse"), 29, 450),
    (dict(max_lag=8, epsilon=0.05, agg_window=4), 31, 640),
    (dict(max_lag=6, epsilon=0.05, agg_window=5, agg="sum"), 37, 600),
    (dict(max_lag=6, epsilon=0.08, agg_window=5, agg="max"), 41, 400),
    (dict(max_lag=12, epsilon=0.04, on_violation="skip"), 43, 500),
    (dict(max_lag=12, epsilon=None, target_ratio=4.0), 47, 600),
    (dict(max_lag=12, epsilon=0.05, target_ratio=2.0), 53, 500),
    (dict(max_lag=12, epsilon=0.02, statistic="pacf"), 5, 800),
    (dict(max_lag=8, epsilon=0.08, statistic="pacf", blocking="5logn"), 21, 400),
    (dict(max_lag=6, epsilon=0.05, statistic="pacf", agg_window=4), 11, 640),
    (dict(max_lag=8, epsilon=0.04, statistic="pacf", on_violation="skip"), 19, 500),
]

_IDS = [f"cfg{i}-" + "-".join(
    f"{k}={v}" for k, v in sorted(cfg.items()) if k in
    ("statistic", "agg_window", "on_violation", "blocking", "metric",
     "target_ratio"))
    for i, (cfg, _s, _n) in enumerate(CONFIGS)]


@pytest.mark.parametrize("kwargs,seed,n", CONFIGS, ids=_IDS)
def test_speculative_matches_sequential(kwargs, seed, n):
    x = _series(seed, n)
    sequential = CameoCompressor(batch_size=1, **kwargs).compress(x)
    speculative = CameoCompressor(batch_size=DEFAULT_SPECULATIVE_BATCH,
                                  **kwargs).compress(x)
    assert speculative.indices.tolist() == sequential.indices.tolist()
    assert np.array_equal(speculative.values, sequential.values)
    assert (speculative.metadata["stopped_by"]
            == sequential.metadata["stopped_by"])
    assert (speculative.metadata["iterations"]
            == sequential.metadata["iterations"])
    # Something must be removed for the comparison to be meaningful.
    assert speculative.metadata["removed_points"] > 0


@pytest.mark.parametrize("batch_size", [2, 3, 5])
def test_intermediate_batch_sizes(batch_size):
    x = _series(61, 600)
    sequential = CameoCompressor(max_lag=12, epsilon=0.05,
                                 batch_size=1).compress(x)
    batched = CameoCompressor(max_lag=12, epsilon=0.05,
                              batch_size=batch_size).compress(x)
    assert batched.indices.tolist() == sequential.indices.tolist()


def test_auto_is_the_default_and_reports_reuse():
    x = _series(67, 500)
    result = CameoCompressor(max_lag=10, epsilon=0.05).compress(x)
    assert result.metadata["batch_size"] == DEFAULT_SPECULATIVE_BATCH
    reuse = result.metadata["preview_reuse"]
    assert set(reuse) == {"fresh_key_hits", "speculative_hits",
                          "scalar_previews"}
    decisions = (reuse["fresh_key_hits"] + reuse["speculative_hits"]
                 + reuse["scalar_previews"])
    assert decisions == result.metadata["iterations"]
    # The whole point: the vast majority of previews are reused.
    assert reuse["fresh_key_hits"] + reuse["speculative_hits"] > decisions // 2


def test_sequential_run_reports_no_reuse_counters():
    x = _series(67, 400)
    result = CameoCompressor(max_lag=10, epsilon=0.05, batch_size=1).compress(x)
    assert result.metadata["batch_size"] == 1
    assert "preview_reuse" not in result.metadata


def test_batch_size_validation():
    from repro.exceptions import InvalidParameterError
    with pytest.raises(InvalidParameterError):
        CameoCompressor(max_lag=8, epsilon=0.05, batch_size=0)
    CameoCompressor(max_lag=8, epsilon=0.05, batch_size="auto")


def test_generic_statistic_tracker_speculation_is_exact():
    # Custom Statistic objects preview one segment at a time, so their
    # fresh-key reuse is exact (keys *are* scalar preview values); the
    # speculative loop must reproduce the sequential kept set.
    class Mean5(Statistic):
        name = "mean5"

        def compute(self, values: np.ndarray) -> np.ndarray:
            kernel = np.ones(5) / 5.0
            return np.convolve(values, kernel, mode="valid")[:40]

    x = _series(71, 300)
    sequential = CameoCompressor(max_lag=8, epsilon=0.05, statistic=Mean5(),
                                 batch_size=1).compress(x)
    speculative = CameoCompressor(max_lag=8, epsilon=0.05, statistic=Mean5(),
                                  batch_size=8).compress(x)
    assert speculative.indices.tolist() == sequential.indices.tolist()


def test_fine_grained_pool_matches_sequential():
    # The chunked evaluator reuses the batched preview kernel, so the
    # threaded strategy stays identical to the plain compressor.
    x = _series(73, 600)
    plain = CameoCompressor(max_lag=12, epsilon=0.05).compress(x)
    threaded = FineGrainedCameo(max_lag=12, epsilon=0.05, threads=3).compress(x)
    assert threaded.indices.tolist() == plain.indices.tolist()
