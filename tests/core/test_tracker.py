"""Tests for the StatisticTracker facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tracker import StatisticTracker
from repro.core.impact import initial_interpolation_deltas
from repro.exceptions import InvalidParameterError
from repro.metrics import mae
from repro.stats import acf, pacf, tumbling_window_aggregate


def _series(seed: int = 0, n: int = 400) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 3 + np.sin(np.arange(n) / 8.0) + rng.normal(0, 0.3, n)


class TestDirectAcfTracking:
    def test_reference_matches_acf(self):
        x = _series()
        tracker = StatisticTracker(x, 15)
        assert np.allclose(tracker.reference, acf(x, 15))

    def test_apply_then_current_statistic(self):
        x = _series(1)
        tracker = StatisticTracker(x, 10)
        deltas = np.array([0.5, -0.5, 0.2])
        tracker.apply(100, deltas)
        modified = x.copy()
        modified[100:103] += deltas
        assert np.allclose(tracker.current_statistic(), acf(modified, 10), atol=1e-9)

    def test_preview_does_not_change_state(self):
        x = _series(2)
        tracker = StatisticTracker(x, 10)
        before = tracker.current_statistic()
        tracker.preview(50, np.array([1.0, 1.0]))
        assert np.allclose(before, tracker.current_statistic())

    def test_deviation_uses_metric(self):
        x = _series(3)
        tracker = StatisticTracker(x, 10)
        stat = tracker.preview(40, np.array([2.0]))
        assert tracker.deviation("mae", stat) == pytest.approx(mae(tracker.reference, stat))


class TestPacfTracking:
    def test_reference_matches_pacf(self):
        x = _series(4)
        tracker = StatisticTracker(x, 8, statistic="pacf")
        assert np.allclose(tracker.reference, pacf(x, 8), atol=1e-9)

    def test_unsupported_statistic_rejected(self):
        with pytest.raises(InvalidParameterError):
            StatisticTracker(_series(), 5, statistic="variance")


class TestAggregatedTracking:
    def test_reference_matches_aggregated_acf(self):
        x = _series(5, n=600)
        tracker = StatisticTracker(x, 6, agg_window=20)
        expected = acf(tumbling_window_aggregate(x, 20), 6)
        assert np.allclose(tracker.reference, expected)

    def test_invalid_window_rejected(self):
        with pytest.raises(InvalidParameterError):
            StatisticTracker(_series(), 5, agg_window=0)


class TestInitialImpacts:
    def test_direct_impacts_match_manual_previews(self):
        x = _series(6, n=200)
        tracker = StatisticTracker(x, 12)
        positions, impacts = tracker.initial_impacts("mae")
        assert positions.size == x.size - 2
        deltas = 0.5 * (x[2:] + x[:-2]) - x[1:-1]
        for index in [0, 10, 100, positions.size - 1]:
            stat = tracker.preview(int(positions[index]), np.asarray([deltas[index]]))
            assert impacts[index] == pytest.approx(tracker.deviation("mae", stat), abs=1e-9)

    def test_aggregated_mean_impacts_match_manual(self):
        x = _series(7, n=400)
        tracker = StatisticTracker(x, 5, agg_window=16)
        positions, impacts = tracker.initial_impacts("mae")
        deltas = 0.5 * (x[2:] + x[:-2]) - x[1:-1]
        for index in [0, 33, 200, positions.size - 1]:
            stat = tracker.preview(int(positions[index]), np.asarray([deltas[index]]))
            assert impacts[index] == pytest.approx(tracker.deviation("mae", stat), abs=1e-9)

    def test_pacf_impacts_finite(self):
        x = _series(8, n=120)
        tracker = StatisticTracker(x, 5, statistic="pacf")
        _positions, impacts = tracker.initial_impacts("mae")
        assert np.all(np.isfinite(impacts))


class TestBatchImpacts:
    def test_batch_matches_individual(self):
        x = _series(9, n=300)
        tracker = StatisticTracker(x, 10)
        changes = [
            (50, np.array([0.4])),
            (80, np.array([0.1, -0.2, 0.3])),
            (200, np.array([1.0])),
            (10, np.empty(0)),
        ]
        impacts = tracker.batch_impacts(changes, "mae")
        for index, (start, deltas) in enumerate(changes):
            if deltas.size == 0:
                expected = tracker.deviation("mae", tracker.current_statistic())
            else:
                expected = tracker.deviation("mae", tracker.preview(start, deltas))
            assert impacts[index] == pytest.approx(expected, abs=1e-10)

    def test_batch_empty(self):
        tracker = StatisticTracker(_series(10), 5)
        assert tracker.batch_impacts([], "mae").size == 0

    def test_batch_aggregated_mean(self):
        x = _series(11, n=400)
        tracker = StatisticTracker(x, 5, agg_window=10)
        changes = [(40, np.array([0.7])), (100, np.full(25, 0.2)), (395, np.array([5.0]))]
        impacts = tracker.batch_impacts(changes, "mae")
        for index, (start, deltas) in enumerate(changes):
            expected = tracker.deviation("mae", tracker.preview(start, deltas))
            assert impacts[index] == pytest.approx(expected, abs=1e-10)
