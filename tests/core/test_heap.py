"""Tests for the indexed min-heap used by CAMEO's removal queue."""

from __future__ import annotations

import heapq

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IndexedMinHeap


class TestBasics:
    def test_push_pop_single(self):
        heap = IndexedMinHeap(10)
        heap.push(3, 1.5)
        assert len(heap) == 1
        assert 3 in heap
        item, key = heap.pop()
        assert (item, key) == (3, 1.5)
        assert len(heap) == 0

    def test_pop_returns_minimum(self):
        heap = IndexedMinHeap(10)
        for item, key in [(0, 5.0), (1, 1.0), (2, 3.0)]:
            heap.push(item, key)
        assert heap.pop() == (1, 1.0)
        assert heap.pop() == (2, 3.0)
        assert heap.pop() == (0, 5.0)

    def test_peek_does_not_remove(self):
        heap = IndexedMinHeap(5)
        heap.push(2, 0.5)
        assert heap.peek() == (2, 0.5)
        assert len(heap) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap(3).pop()

    def test_duplicate_push_raises(self):
        heap = IndexedMinHeap(3)
        heap.push(0, 1.0)
        with pytest.raises(ValueError):
            heap.push(0, 2.0)

    def test_out_of_range_item_raises(self):
        with pytest.raises(ValueError):
            IndexedMinHeap(3).push(5, 1.0)

    def test_key_of(self):
        heap = IndexedMinHeap(4)
        heap.push(1, 7.0)
        assert heap.key_of(1) == 7.0
        with pytest.raises(KeyError):
            heap.key_of(2)


class TestUpdateRemove:
    def test_decrease_key_moves_to_front(self):
        heap = IndexedMinHeap(10)
        for item in range(5):
            heap.push(item, float(item + 10))
        heap.update(4, 0.1)
        assert heap.pop() == (4, 0.1)

    def test_increase_key_moves_back(self):
        heap = IndexedMinHeap(10)
        for item in range(5):
            heap.push(item, float(item))
        heap.update(0, 100.0)
        assert heap.pop() == (1, 1.0)

    def test_update_absent_item_inserts(self):
        heap = IndexedMinHeap(5)
        heap.update(3, 2.0)
        assert 3 in heap

    def test_remove_middle_item(self):
        heap = IndexedMinHeap(10)
        for item in range(6):
            heap.push(item, float(item))
        heap.remove(3)
        assert 3 not in heap
        popped = [heap.pop()[0] for _ in range(len(heap))]
        assert popped == [0, 1, 2, 4, 5]

    def test_remove_absent_is_noop(self):
        heap = IndexedMinHeap(5)
        heap.push(0, 1.0)
        heap.remove(4)
        assert len(heap) == 1


class TestHeapify:
    def test_heapify_orders_like_sorted(self):
        rng = np.random.default_rng(0)
        keys = rng.normal(size=200)
        heap = IndexedMinHeap(200)
        heap.heapify(np.arange(200), keys)
        popped_keys = [heap.pop()[1] for _ in range(200)]
        assert popped_keys == sorted(keys.tolist())

    def test_heapify_resets_previous_content(self):
        heap = IndexedMinHeap(10)
        heap.push(9, 0.0)
        heap.heapify(np.array([1, 2]), np.array([5.0, 4.0]))
        assert 9 not in heap
        assert len(heap) == 2

    def test_heapify_duplicate_items_rejected(self):
        heap = IndexedMinHeap(10)
        with pytest.raises(ValueError):
            heap.heapify(np.array([1, 1]), np.array([1.0, 2.0]))

    def test_invariants_after_heapify(self):
        rng = np.random.default_rng(1)
        heap = IndexedMinHeap(100)
        heap.heapify(np.arange(100), rng.normal(size=100))
        assert heap.check_invariants()


class TestAgainstHeapq:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_random_operation_sequences_match_reference(self, seed):
        """Property: interleaved pushes/pops/updates agree with a reference
        implementation (heapq with lazy deletion)."""
        rng = np.random.default_rng(seed)
        capacity = 50
        heap = IndexedMinHeap(capacity)
        reference: dict[int, float] = {}
        for _step in range(120):
            op = rng.integers(0, 4)
            if op == 0:  # push
                item = int(rng.integers(0, capacity))
                key = float(np.round(rng.normal(), 6))
                if item not in reference:
                    heap.push(item, key)
                    reference[item] = key
            elif op == 1 and reference:  # update
                item = int(rng.choice(list(reference)))
                key = float(np.round(rng.normal(), 6))
                heap.update(item, key)
                reference[item] = key
            elif op == 2 and reference:  # remove
                item = int(rng.choice(list(reference)))
                heap.remove(item)
                del reference[item]
            elif op == 3 and reference:  # pop minimum
                item, key = heap.pop()
                expected_item = min(reference, key=lambda k: (reference[k], ))
                assert key == pytest.approx(reference[expected_item])
                del reference[item]
            assert len(heap) == len(reference)
            assert heap.check_invariants()
