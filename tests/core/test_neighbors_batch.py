"""Property tests: array-backed neighbour hops vs the scalar pointer chase.

:meth:`repro.core.neighbors.NeighborList.hops` walks the linked list one
Python dereference at a time and is kept as the behavioural reference;
:meth:`~repro.core.neighbors.NeighborList.hops_array` (windowed alive-mask
gather) and :meth:`~repro.core.neighbors.NeighborList.hops_batch` (one
survivor scan shared by a whole batch) must reproduce it element for
element — content *and* order — under random removal orders.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.neighbors import NeighborList


def _build(seed: int, n: int, removal_fraction: float) -> NeighborList:
    rng = np.random.default_rng(seed)
    neighbours = NeighborList(n)
    interior = rng.permutation(np.arange(1, n - 1))
    for index in interior[:int(removal_fraction * interior.size)].tolist():
        neighbours.remove(index)
    return neighbours


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 2 ** 31), n=st.integers(2, 200),
       removal_fraction=st.floats(0.0, 1.0), h=st.integers(1, 40),
       include_endpoints=st.booleans())
def test_hops_array_matches_pointer_chase(seed, n, removal_fraction, h,
                                          include_endpoints):
    neighbours = _build(seed, n, removal_fraction)
    rng = np.random.default_rng(seed + 1)
    for index in rng.integers(0, n, 6).tolist():
        expected = np.asarray(
            neighbours.hops(index, h, include_endpoints=include_endpoints),
            dtype=np.int64)
        got = neighbours.hops_array(index, h,
                                    include_endpoints=include_endpoints)
        assert got.dtype == np.int64
        assert np.array_equal(got, expected)


@settings(max_examples=100, deadline=None)
@given(seed=st.integers(0, 2 ** 31), n=st.integers(2, 200),
       removal_fraction=st.floats(0.0, 1.0), h=st.integers(1, 25),
       include_endpoints=st.booleans())
def test_hops_batch_matches_hops_array(seed, n, removal_fraction, h,
                                       include_endpoints):
    neighbours = _build(seed, n, removal_fraction)
    rng = np.random.default_rng(seed + 2)
    indices = rng.integers(0, n, int(rng.integers(1, 9)))
    offsets, flat = neighbours.hops_batch(
        indices, h, include_endpoints=include_endpoints)
    assert offsets.size == indices.size + 1
    assert offsets[-1] == flat.size
    for position, index in enumerate(indices.tolist()):
        expected = neighbours.hops_array(
            int(index), h, include_endpoints=include_endpoints)
        piece = flat[offsets[position]:offsets[position + 1]]
        assert np.array_equal(piece, expected)


def test_hops_batch_empty_indices():
    neighbours = NeighborList(10)
    offsets, flat = neighbours.hops_batch(np.empty(0, dtype=np.int64), 3)
    assert offsets.tolist() == [0]
    assert flat.size == 0


def test_alive_count_tracks_removals():
    neighbours = NeighborList(12)
    assert neighbours.alive_count() == 12
    for index in (3, 7, 5):
        neighbours.remove(index)
    assert neighbours.alive_count() == 9
    assert neighbours.alive_count() == int(neighbours.alive_mask().sum())
