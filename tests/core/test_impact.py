"""Tests for the vectorised ACF-impact evaluation (Algorithm 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    batched_single_change_impacts,
    initial_interpolation_deltas,
    metric_rowwise,
    segment_interpolation_deltas,
)
from repro.metrics import chebyshev, mae
from repro.stats import ACFAggregateState


def _series(seed: int = 0, n: int = 300) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 9.0) * 2 + rng.normal(0, 0.4, n)


class TestMetricRowwise:
    def test_mae_matches_function(self):
        reference = np.array([0.1, 0.2, 0.3])
        candidates = np.array([[0.1, 0.2, 0.3], [0.4, 0.2, 0.0]])
        values = metric_rowwise("mae", reference, candidates)
        assert values[0] == pytest.approx(0.0)
        assert values[1] == pytest.approx(mae(reference, candidates[1]))

    def test_cheb_matches_function(self):
        reference = np.zeros(4)
        candidate = np.array([[0.0, -0.5, 0.2, 0.1]])
        assert metric_rowwise("cheb", reference, candidate)[0] == pytest.approx(
            chebyshev(reference, candidate[0]))

    def test_callable_fallback(self):
        reference = np.array([1.0, 1.0])
        candidates = np.array([[1.0, 2.0], [1.0, 1.0]])
        values = metric_rowwise(lambda x, y: float(np.sum(np.abs(x - y))),
                                reference, candidates)
        assert np.allclose(values, [1.0, 0.0])

    def test_rmse_and_mse(self):
        reference = np.zeros(2)
        candidates = np.array([[3.0, 4.0]])
        assert metric_rowwise("rmse", reference, candidates)[0] == pytest.approx(
            np.sqrt(12.5))
        assert metric_rowwise("mse", reference, candidates)[0] == pytest.approx(12.5)


class TestInitialDeltas:
    def test_deltas_are_neighbour_average_minus_value(self):
        values = np.array([0.0, 1.0, 4.0, 9.0, 16.0])
        positions, deltas = initial_interpolation_deltas(values)
        assert np.array_equal(positions, [1, 2, 3])
        assert np.allclose(deltas, [(0 + 4) / 2 - 1, (1 + 9) / 2 - 4, (4 + 16) / 2 - 9])

    def test_linear_series_has_zero_deltas(self):
        values = np.linspace(0, 10, 20)
        _positions, deltas = initial_interpolation_deltas(values)
        assert np.allclose(deltas, 0.0, atol=1e-12)


class TestSegmentDeltas:
    def test_segment_reinterpolation(self):
        current = np.array([0.0, 5.0, 5.0, 5.0, 8.0])
        start, deltas = segment_interpolation_deltas(current, 0, 4)
        assert start == 1
        expected_new = np.array([2.0, 4.0, 6.0])
        assert np.allclose(deltas, expected_new - current[1:4])

    def test_adjacent_anchors_produce_empty(self):
        current = np.arange(5.0)
        _start, deltas = segment_interpolation_deltas(current, 2, 3)
        assert deltas.size == 0

    def test_points_on_line_give_zero_deltas(self):
        current = np.linspace(0, 1, 10)
        _start, deltas = segment_interpolation_deltas(current, 2, 7)
        assert np.allclose(deltas, 0.0, atol=1e-12)


class TestBatchedImpacts:
    def test_matches_per_point_preview(self):
        x = _series(1)
        state = ACFAggregateState(x, 20)
        reference = state.acf()
        positions, deltas = initial_interpolation_deltas(x)
        batched = batched_single_change_impacts(state, positions, deltas, reference, "mae")
        # Compare a sample of points against the exact per-point preview.
        for index in [0, 5, 50, 150, positions.size - 1]:
            exact = mae(reference, state.preview_acf([positions[index]], [deltas[index]]))
            assert batched[index] == pytest.approx(exact, abs=1e-10)

    def test_chunking_gives_identical_results(self):
        x = _series(2)
        state = ACFAggregateState(x, 10)
        reference = state.acf()
        positions, deltas = initial_interpolation_deltas(x)
        full = batched_single_change_impacts(state, positions, deltas, reference, "mae")
        chunked = batched_single_change_impacts(state, positions, deltas, reference, "mae",
                                                chunk_size=17)
        assert np.allclose(full, chunked)

    def test_zero_delta_impact_is_zero(self):
        x = np.linspace(0, 1, 100)
        state = ACFAggregateState(x + np.sin(np.arange(100)), 5)
        reference = state.acf()
        impacts = batched_single_change_impacts(state, np.array([10]), np.array([0.0]),
                                                reference, "mae")
        assert impacts[0] == pytest.approx(0.0, abs=1e-12)

    def test_empty_input(self):
        x = _series(3)
        state = ACFAggregateState(x, 5)
        out = batched_single_change_impacts(state, np.empty(0, dtype=int), np.empty(0),
                                            state.acf(), "mae")
        assert out.size == 0

    def test_mismatched_shapes_raise(self):
        x = _series(4)
        state = ACFAggregateState(x, 5)
        with pytest.raises(ValueError):
            batched_single_change_impacts(state, np.array([1, 2]), np.array([0.1]),
                                          state.acf(), "mae")

    def test_larger_delta_larger_impact(self):
        x = _series(5)
        state = ACFAggregateState(x, 15)
        reference = state.acf()
        impacts = batched_single_change_impacts(
            state, np.array([100, 100]), np.array([0.1, 5.0]), reference, "mae")
        assert impacts[1] > impacts[0]
