"""Property tests: bulk heap operations vs the preserved reference heap.

:class:`repro._kernels.reference.ReferenceIndexedMinHeap` is the
pre-bulk-operations list heap, kept verbatim as the behavioural baseline.
Hypothesis drives random operation sequences against both heaps:

* with *distinct* keys every observable — pop order (items included),
  membership, per-item keys, invariants — must match exactly;
* with tie-heavy integer keys, bulk repairs may lay slots out differently,
  so the checked contract weakens to: invariants always hold, the (item,
  key) mapping matches a dict mirror, and pops always return a minimal key.

The bulk-update error contract is pinned explicitly: duplicates raise,
absent items are pushed (scalar ``update`` and ``update_many`` agree), and
``push_many`` refuses present items.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._kernels.reference import ReferenceIndexedMinHeap
from repro.core.heap import IndexedMinHeap

CAPACITY = 24


class _KeyGen:
    """Deterministic distinct-key source (no two keys ever equal)."""

    def __init__(self):
        self._next = 0.0

    def __call__(self, count: int, rng: np.random.Generator) -> np.ndarray:
        keys = self._next + np.cumsum(rng.uniform(0.25, 1.75, count))
        self._next = float(keys[-1]) + 1.0
        return rng.permutation(keys - rng.uniform(0, 2 * count))


_OPS = st.lists(
    st.tuples(st.sampled_from(["push", "pop", "pop_many", "remove", "update",
                               "update_many", "push_many", "peek_many"]),
              st.integers(0, 10 ** 6)),
    min_size=1, max_size=40)


def _mirror_check(fast: IndexedMinHeap, slow: ReferenceIndexedMinHeap):
    assert fast.check_invariants()
    assert slow.check_invariants()
    assert len(fast) == len(slow)
    fast_items = np.sort(fast.items())
    assert np.array_equal(fast_items, np.sort(slow.items()))
    for item in fast_items.tolist():
        assert fast.key_of(item) == slow.key_of(item)
        assert item in fast and item in slow
    mask = fast.contains_mask(np.arange(CAPACITY))
    for item in range(CAPACITY):
        assert bool(mask[item]) == (item in slow)


class TestDistinctKeysMirror:
    """With distinct keys the two heaps are observationally identical."""

    @settings(max_examples=120, deadline=None)
    @given(ops=_OPS, seed=st.integers(0, 2 ** 31))
    def test_operation_sequences(self, ops, seed):
        rng = np.random.default_rng(seed)
        keygen = _KeyGen()
        fast = IndexedMinHeap(CAPACITY)
        slow = ReferenceIndexedMinHeap(CAPACITY)
        count = int(rng.integers(0, CAPACITY + 1))
        items = rng.permutation(CAPACITY)[:count]
        keys = keygen(count, rng) if count else np.empty(0)
        fast.heapify(items, keys)
        slow.heapify(items, keys)
        _mirror_check(fast, slow)

        for op, raw in ops:
            if op == "push" and len(fast) < CAPACITY:
                absent = np.setdiff1d(np.arange(CAPACITY), fast.items())
                item = int(absent[raw % absent.size])
                key = float(keygen(1, rng)[0])
                fast.push(item, key)
                slow.push(item, key)
            elif op == "pop" and len(fast):
                assert fast.pop() == slow.pop()
            elif op == "pop_many" and len(fast):
                k = 1 + raw % len(fast)
                popped_items, popped_keys = fast.pop_many(k)
                expected = [slow.pop() for _ in range(k)]
                assert list(zip(popped_items.tolist(),
                                popped_keys.tolist())) == expected
            elif op == "remove" and len(fast):
                item = int(fast.items()[raw % len(fast)])
                fast.remove(item)
                slow.remove(item)
            elif op == "update" and len(fast):
                item = int(fast.items()[raw % len(fast)])
                key = float(keygen(1, rng)[0])
                fast.update(item, key)
                slow.update(item, key)
            elif op == "update_many":
                count = raw % (CAPACITY + 1)
                items = rng.permutation(CAPACITY)[:count]
                keys = keygen(count, rng) if count else np.empty(0)
                fast.update_many(items, keys)
                slow.update_many(items, keys)
            elif op == "push_many" and len(fast) < CAPACITY:
                absent = np.setdiff1d(np.arange(CAPACITY), fast.items())
                count = 1 + raw % absent.size
                items = rng.permutation(absent)[:count]
                keys = keygen(count, rng)
                fast.push_many(items, keys)
                for item, key in zip(items.tolist(), keys.tolist()):
                    slow.push(item, key)
            elif op == "peek_many" and len(fast):
                k = 1 + raw % len(fast)
                peek_items, peek_keys = fast.peek_many(k)
                # Non-destructive, and identical to the next k pops.
                probe = IndexedMinHeap(CAPACITY)
                probe.heapify(fast.items(), fast.keys())
                popped_items, popped_keys = probe.pop_many(k)
                assert np.array_equal(np.sort(peek_keys), peek_keys)
                assert np.array_equal(peek_keys, popped_keys)
                assert np.array_equal(peek_items, popped_items)
            _mirror_check(fast, slow)


class TestTieHeavyInvariants:
    """Integer keys force ties; contents and invariants must still hold."""

    @settings(max_examples=120, deadline=None)
    @given(ops=_OPS, seed=st.integers(0, 2 ** 31))
    def test_operation_sequences(self, ops, seed):
        rng = np.random.default_rng(seed)
        heap = IndexedMinHeap(CAPACITY)
        count = int(rng.integers(0, CAPACITY + 1))
        items = rng.permutation(CAPACITY)[:count]
        keys = rng.integers(-3, 4, count).astype(float)
        heap.heapify(items, keys)
        mirror = {int(i): float(k) for i, k in zip(items, keys)}

        for op, raw in ops:
            if op in ("push", "push_many") and len(heap) < CAPACITY:
                absent = np.setdiff1d(np.arange(CAPACITY), heap.items())
                count = 1 + raw % absent.size
                items = rng.permutation(absent)[:count]
                keys = rng.integers(-3, 4, count).astype(float)
                heap.push_many(items, keys)
                mirror.update(zip(items.tolist(), keys.tolist()))
            elif op in ("pop", "pop_many") and len(heap):
                k = 1 + raw % len(heap)
                popped_items, popped_keys = heap.pop_many(k)
                assert np.array_equal(popped_keys, np.sort(popped_keys))
                assert popped_keys[0] == min(mirror.values())
                for item, key in zip(popped_items.tolist(),
                                     popped_keys.tolist()):
                    assert mirror.pop(item) == key
            elif op == "remove" and len(heap):
                item = int(heap.items()[raw % len(heap)])
                heap.remove(item)
                mirror.pop(item)
            elif op in ("update", "update_many"):
                count = raw % (CAPACITY + 1)
                items = rng.permutation(CAPACITY)[:count]
                keys = rng.integers(-3, 4, count).astype(float)
                heap.update_many(items, keys)
                mirror.update(zip(items.tolist(), keys.tolist()))
            elif op == "peek_many" and len(heap):
                before = len(heap)
                _items, peek_keys = heap.peek_many(1 + raw % len(heap))
                assert len(heap) == before
                assert peek_keys[0] == min(mirror.values())
            assert heap.check_invariants()
            assert len(heap) == len(mirror)
            for item in heap.items().tolist():
                assert heap.key_of(item) == mirror[item]


class TestBulkRebuildPath:
    """Heap-scale update batches exercise the argsort rebuild."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 2 ** 31))
    def test_full_rekey_matches_reference(self, seed):
        rng = np.random.default_rng(seed)
        size = int(rng.integers(2, 200))
        items = rng.permutation(max(size, 2) * 2)[:size]
        keys = rng.normal(0, 1, size)
        fast = IndexedMinHeap(int(items.max()) + 1)
        slow = ReferenceIndexedMinHeap(int(items.max()) + 1)
        fast.heapify(items, keys)
        slow.heapify(items, keys)
        new_keys = rng.normal(0, 1, size)
        fast.update_many(items, new_keys)
        slow.update_many(items, new_keys)
        assert fast.check_invariants()
        drained = [fast.pop() for _ in range(len(fast))]
        expected = [slow.pop() for _ in range(len(slow))]
        assert drained == expected


class TestErrorContract:
    """The bulk-update error paths, pinned for scalar and bulk alike."""

    def _loaded(self):
        heap = IndexedMinHeap(10)
        heap.heapify([1, 2, 3], [1.0, 2.0, 3.0])
        return heap

    def test_update_many_duplicate_items_raise(self):
        heap = self._loaded()
        with pytest.raises(ValueError, match="duplicate"):
            heap.update_many([1, 1], [0.0, 0.5])
        # The heap is untouched by the failed call.
        assert heap.check_invariants() and len(heap) == 3

    def test_update_many_pushes_absent_items(self):
        heap = self._loaded()
        heap.update_many([5, 1, 7], [9.0, 0.25, -1.0])
        assert heap.key_of(5) == 9.0
        assert heap.key_of(7) == -1.0
        assert heap.key_of(1) == 0.25
        assert heap.pop() == (7, -1.0)

    def test_scalar_update_agrees_with_bulk_on_absent(self):
        bulk = self._loaded()
        scalar = self._loaded()
        bulk.update_many([6], [0.5])
        scalar.update(6, 0.5)
        assert bulk.key_of(6) == scalar.key_of(6) == 0.5

    def test_push_many_duplicate_items_raise(self):
        heap = self._loaded()
        with pytest.raises(ValueError, match="duplicate"):
            heap.push_many([4, 4], [0.0, 0.5])

    def test_push_many_present_items_raise(self):
        heap = self._loaded()
        with pytest.raises(ValueError, match="absent"):
            heap.push_many([1, 4], [0.0, 0.5])

    def test_out_of_range_items_raise(self):
        heap = self._loaded()
        with pytest.raises(ValueError, match="range"):
            heap.update_many([11], [0.0])
        with pytest.raises(ValueError, match="range"):
            heap.push_many([-1], [0.0])

    def test_update_many_empty_is_noop(self):
        heap = self._loaded()
        heap.update_many(np.empty(0, dtype=np.int64), np.empty(0))
        assert len(heap) == 3
