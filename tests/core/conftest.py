"""Core-suite fixtures: run tier-sensitive suites under both kernel tiers.

The ``kernel_tier`` fixture parametrizes a test over the pure-NumPy tier
and the native tier.  Kept-set regression suites opt in with
``pytestmark = pytest.mark.usefixtures("kernel_tier")`` so their golden
digests are asserted against *both* implementations — the native tier is
only correct if it cannot be told apart from the NumPy one.

The native parameter skips (never fails) when the extension is not built,
keeping source-only installs green.
"""

from __future__ import annotations

import pytest

from repro import _kernels


@pytest.fixture(params=["numpy", "native"])
def kernel_tier(request):
    tier = request.param
    if tier == "native" and not _kernels.native_available():
        pytest.skip("native extension not built")
    _kernels.set_native_enabled(tier == "native")
    try:
        yield tier
    finally:
        _kernels.set_native_enabled(None)
