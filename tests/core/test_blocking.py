"""Tests for blocking-neighbourhood sizing."""

from __future__ import annotations

import math

import pytest

from repro.core import resolve_blocking_hops
from repro.exceptions import InvalidParameterError


class TestResolveBlockingHops:
    def test_integer_passthrough(self):
        assert resolve_blocking_hops(7, 1000) == 7

    def test_logn(self):
        assert resolve_blocking_hops("logn", 1024) == 10

    def test_multiples_of_logn(self):
        assert resolve_blocking_hops("5logn", 1024) == 50
        assert resolve_blocking_hops("3 * log n", 1024) == 30
        assert resolve_blocking_hops("10logn", 1024) == 100

    def test_sqrt_and_half(self):
        assert resolve_blocking_hops("sqrt", 10_000) == 100
        assert resolve_blocking_hops("half", 10_000) == 5_000

    def test_all_and_none_mean_no_blocking(self):
        assert resolve_blocking_hops("all", 500) == 500
        assert resolve_blocking_hops(None, 500) == 500

    def test_callable(self):
        assert resolve_blocking_hops(lambda n: int(math.sqrt(n)) + 1, 100) == 11

    def test_fractional_multiple(self):
        assert resolve_blocking_hops("1.5logn", 1024) == 15

    def test_invalid_specs_raise(self):
        with pytest.raises(InvalidParameterError):
            resolve_blocking_hops("bogus", 100)
        with pytest.raises(InvalidParameterError):
            resolve_blocking_hops(0, 100)
        with pytest.raises(InvalidParameterError):
            resolve_blocking_hops(True, 100)
        with pytest.raises(InvalidParameterError):
            resolve_blocking_hops(lambda n: 0, 100)

    def test_minimum_series_length(self):
        with pytest.raises(InvalidParameterError):
            resolve_blocking_hops("logn", 1)

    def test_result_at_least_one(self):
        assert resolve_blocking_hops("logn", 2) >= 1
