"""Tests for the fine- and coarse-grained parallel strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CameoCompressor, CoarseGrainedCameo, FineGrainedCameo
from repro.exceptions import InvalidParameterError
from repro.metrics import mae
from repro.stats import acf


def _series(n: int = 1500, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 10 + 4 * np.sin(2 * np.pi * np.arange(n) / 48) + rng.normal(0, 0.4, n)


class TestFineGrained:
    def test_single_thread_equals_sequential(self):
        x = _series(600)
        sequential = CameoCompressor(24, 0.01).compress(x)
        fine = FineGrainedCameo(24, 0.01, threads=1).compress(x)
        assert np.array_equal(sequential.indices, fine.indices)

    def test_multi_thread_respects_bound(self):
        x = _series(600, seed=1)
        result = FineGrainedCameo(24, 0.01, threads=4).compress(x)
        deviation = mae(acf(x, 24), acf(result.decompress(), 24))
        assert deviation <= 0.01 + 1e-9
        assert result.metadata["fine_grained_threads"] == 4

    def test_multi_thread_matches_sequential_result(self):
        # The fine-grained strategy only parallelises the look-ahead; the
        # algorithmic decisions must be identical.
        x = _series(500, seed=2)
        sequential = CameoCompressor(12, 0.02).compress(x)
        fine = FineGrainedCameo(12, 0.02, threads=3).compress(x)
        assert np.array_equal(sequential.indices, fine.indices)

    def test_invalid_thread_count(self):
        with pytest.raises(InvalidParameterError):
            FineGrainedCameo(10, 0.01, threads=0)


class TestCoarseGrained:
    def test_global_bound_respected(self):
        x = _series(2000, seed=3)
        compressor = CoarseGrainedCameo(24, 0.01, workers=4)
        result, report = compressor.compress(x)
        deviation = mae(acf(x, 24), acf(result.decompress(), 24))
        assert deviation <= 0.01 + 1e-9
        assert report.global_deviation <= 0.01 + 1e-9

    def test_report_structure(self):
        x = _series(1200, seed=4)
        _result, report = CoarseGrainedCameo(24, 0.02, workers=3).compress(x)
        assert report.workers >= 1
        assert len(report.partition_sizes) == report.workers
        assert report.compression_ratio >= 1.0
        assert report.elapsed_seconds > 0

    def test_single_worker_close_to_sequential(self):
        x = _series(800, seed=5)
        result, _report = CoarseGrainedCameo(24, 0.02, workers=1).compress(x)
        deviation = mae(acf(x, 24), acf(result.decompress(), 24))
        assert deviation <= 0.02 + 1e-9

    def test_sequential_simulation_mode(self):
        x = _series(900, seed=6)
        result, report = CoarseGrainedCameo(12, 0.02, workers=3,
                                            use_threads=False).compress(x)
        assert report.workers >= 2
        assert result.compression_ratio() > 1.0

    def test_endpoints_always_present(self):
        x = _series(1000, seed=7)
        result, _report = CoarseGrainedCameo(24, 0.02, workers=4).compress(x)
        assert result.indices[0] == 0
        assert result.indices[-1] == x.size - 1

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            CoarseGrainedCameo(10, 0.01, workers=0)
        with pytest.raises(InvalidParameterError):
            CoarseGrainedCameo(10, None, workers=2)
