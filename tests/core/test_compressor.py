"""Tests for the CAMEO compressor (Algorithm 1 and its variants)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CameoCompressor, cameo_compress, compress_multivariate
from repro.data import IrregularSeries, TimeSeries
from repro.exceptions import InvalidParameterError
from repro.metrics import chebyshev, mae
from repro.stats import acf, pacf, tumbling_window_aggregate


def _seasonal(n: int = 1200, seed: int = 0, noise: float = 0.3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 5 + 2 * np.sin(2 * np.pi * t / 24) + rng.normal(0, noise, n)


def acf_dev(x: np.ndarray, result: IrregularSeries, max_lag: int, metric=mae) -> float:
    return metric(acf(x, max_lag), acf(result.decompress(), max_lag))


class TestErrorBoundedMode:
    def test_bound_respected_small_epsilon(self):
        x = _seasonal()
        result = cameo_compress(x, max_lag=24, epsilon=0.005)
        assert acf_dev(x, result, 24) <= 0.005 + 1e-9

    def test_bound_respected_larger_epsilon(self):
        x = _seasonal(seed=1)
        result = cameo_compress(x, max_lag=24, epsilon=0.05)
        assert acf_dev(x, result, 24) <= 0.05 + 1e-9

    def test_larger_epsilon_gives_higher_compression(self):
        x = _seasonal(seed=2)
        small = cameo_compress(x, max_lag=24, epsilon=0.005)
        large = cameo_compress(x, max_lag=24, epsilon=0.05)
        assert large.compression_ratio() >= small.compression_ratio()

    def test_endpoints_always_kept(self):
        x = _seasonal(400, seed=3)
        result = cameo_compress(x, max_lag=12, epsilon=0.05)
        assert result.indices[0] == 0
        assert result.indices[-1] == x.size - 1

    def test_retained_values_are_original(self):
        x = _seasonal(400, seed=4)
        result = cameo_compress(x, max_lag=12, epsilon=0.02)
        assert np.array_equal(result.values, x[result.indices])

    def test_achieves_some_compression_on_smooth_series(self):
        t = np.arange(600)
        x = np.sin(2 * np.pi * t / 50)
        result = cameo_compress(x, max_lag=50, epsilon=0.02)
        assert result.compression_ratio() > 2.0

    def test_metadata_populated(self):
        x = _seasonal(400, seed=5)
        result = cameo_compress(x, max_lag=12, epsilon=0.02)
        for key in ("compressor", "achieved_deviation", "kept_points", "stopped_by",
                    "iterations", "elapsed_seconds"):
            assert key in result.metadata
        assert result.metadata["compressor"] == "CAMEO"
        assert result.metadata["achieved_deviation"] <= 0.02

    def test_accepts_timeseries_container(self):
        x = _seasonal(400, seed=6)
        series = TimeSeries(values=x, name="unit-test", period=24)
        result = CameoCompressor(12, 0.02).compress(series)
        assert "unit-test" in result.name

    def test_on_violation_skip_compresses_at_least_as_much(self):
        x = _seasonal(500, seed=7)
        stop = CameoCompressor(24, 0.01, on_violation="stop").compress(x)
        skip = CameoCompressor(24, 0.01, on_violation="skip").compress(x)
        assert skip.compression_ratio() >= stop.compression_ratio() - 1e-9
        assert acf_dev(x, skip, 24) <= 0.01 + 1e-9


class TestCompressionCentricMode:
    def test_reaches_target_ratio(self):
        x = _seasonal(seed=8)
        result = CameoCompressor(24, epsilon=None, target_ratio=4.0).compress(x)
        assert result.compression_ratio() >= 4.0 - 1e-9

    def test_combined_mode_stops_at_first_constraint(self):
        x = _seasonal(seed=9)
        result = CameoCompressor(24, epsilon=0.001, target_ratio=50.0).compress(x)
        # Either the ratio or the bound stopped it, but the bound always holds.
        assert acf_dev(x, result, 24) <= 0.001 + 1e-9

    def test_no_mode_selected_raises(self):
        with pytest.raises(InvalidParameterError):
            CameoCompressor(10, epsilon=None, target_ratio=None)


class TestAggregatedMode:
    def test_aggregate_bound_respected(self):
        n = 4000
        rng = np.random.default_rng(10)
        x = 50 + 10 * np.sin(2 * np.pi * np.arange(n) / 200) + rng.normal(0, 1, n)
        window = 20
        result = CameoCompressor(10, 0.01, agg_window=window).compress(x)
        original = tumbling_window_aggregate(x, window)
        reconstructed = tumbling_window_aggregate(result.decompress(), window)
        assert mae(acf(original, 10), acf(reconstructed, 10)) <= 0.01 + 1e-9

    def test_aggregated_mode_reaches_high_compression(self):
        n = 3000
        rng = np.random.default_rng(11)
        x = 50 + 10 * np.sin(2 * np.pi * np.arange(n) / 150) + rng.normal(0, 1, n)
        aggregated = CameoCompressor(10, 0.01, agg_window=15).compress(x)
        # Preserving 10 lags of the 15-point window means covering the full
        # 150-sample season; the smooth signal still compresses well.
        assert aggregated.compression_ratio() > 10.0


class TestPacfMode:
    def test_pacf_bound_respected(self):
        x = _seasonal(500, seed=12)
        result = CameoCompressor(8, 0.05, statistic="pacf").compress(x)
        deviation = mae(pacf(x, 8), pacf(result.decompress(), 8))
        assert deviation <= 0.05 + 1e-9


class TestMetricVariants:
    def test_chebyshev_constraint(self):
        x = _seasonal(800, seed=13)
        result = CameoCompressor(24, 0.02, metric="cheb").compress(x)
        deviation = chebyshev(acf(x, 24), acf(result.decompress(), 24))
        assert deviation <= 0.02 + 1e-9

    def test_custom_callable_metric(self):
        x = _seasonal(500, seed=14)
        metric = lambda a, b: float(np.mean((np.asarray(a) - np.asarray(b)) ** 2))  # noqa: E731
        result = CameoCompressor(12, 1e-4, metric=metric).compress(x)
        deviation = metric(acf(x, 12), acf(result.decompress(), 12))
        assert deviation <= 1e-4 + 1e-12


class TestEdgeCases:
    def test_tiny_series_returned_unchanged(self):
        x = np.array([1.0, 2.0, 3.0])
        result = cameo_compress(x, max_lag=2, epsilon=0.1)
        assert len(result) == 3
        assert np.allclose(result.decompress(), x)

    def test_constant_series(self):
        x = np.full(200, 3.14)
        result = cameo_compress(x, max_lag=10, epsilon=0.01)
        assert np.allclose(result.decompress(), x)
        assert result.compression_ratio() > 10

    def test_linear_series_compresses_to_near_two_points(self):
        x = np.linspace(0, 100, 500)
        result = cameo_compress(x, max_lag=10, epsilon=0.01)
        assert len(result) <= 10
        assert np.allclose(result.decompress(), x, atol=1e-8)

    def test_max_lag_clamped_to_series_length(self):
        x = _seasonal(60, seed=15)
        result = cameo_compress(x, max_lag=500, epsilon=0.1)
        assert result.original_length == 60

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            CameoCompressor(10, -0.1)
        with pytest.raises(InvalidParameterError):
            CameoCompressor(10, 0.1, target_ratio=0.5)
        with pytest.raises(InvalidParameterError):
            CameoCompressor(10, 0.1, on_violation="explode")
        with pytest.raises(InvalidParameterError):
            CameoCompressor(10, 0.1, min_keep=1)
        with pytest.raises(InvalidParameterError):
            CameoCompressor(10, 0.1, blocking_window_scale=0)


class TestMultivariate:
    def test_each_column_bounded(self):
        rng = np.random.default_rng(16)
        columns = [
            2 + np.sin(2 * np.pi * np.arange(500) / 25) + rng.normal(0, 0.2, 500),
            5 + np.cos(2 * np.pi * np.arange(500) / 50) + rng.normal(0, 0.2, 500),
        ]
        results = compress_multivariate(columns, max_lag=25, epsilon=0.02)
        assert len(results) == 2
        for column, result in zip(columns, results):
            assert acf_dev(column, result, 25) <= 0.02 + 1e-9
