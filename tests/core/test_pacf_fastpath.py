"""Equivalence and regression tests for the vectorized PACF tracking path.

Three layers of protection for ``statistic="pacf"``:

* the tracker's batched statistic transform must equal applying
  :func:`repro.stats.pacf.pacf_from_acf` row by row, bit for bit;
* the vectorized initial-impacts path must match the per-point preview loop
  it replaced;
* fixed-seed CAMEO runs must keep exactly the point sets recorded from the
  pre-vectorization implementation (the seed behaviour) — for the ACF too,
  since both statistics share the fused ReHeap kernels.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.core import CameoCompressor
from repro.core.impact import resolve_rowwise_metric
from repro.core.tracker import StatisticTracker
from repro.stats import pacf_from_acf

# Every golden digest below must hold under both kernel tiers: the native
# extension is only admissible if it reproduces these kept sets exactly.
pytestmark = pytest.mark.usefixtures("kernel_tier")


def _series(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (3.0 + np.sin(2 * np.pi * t / 24) + 0.4 * np.sin(2 * np.pi * t / 160)
            + rng.normal(0.0, 0.3, n))


class TestTrackerStatisticRows:
    @pytest.mark.parametrize("agg_window", [1, 6])
    def test_batched_rows_match_per_row_transform(self, agg_window):
        x = _series(2, 480)
        tracker = StatisticTracker(x, 10, statistic="pacf", agg_window=agg_window)
        rng = np.random.default_rng(5)
        acf_rows = np.clip(rng.normal(0.0, 0.4, (37, tracker.max_lag)), -1.0, 1.0)
        batched = tracker._to_statistic_rows(acf_rows)
        for index in range(acf_rows.shape[0]):
            assert np.array_equal(batched[index], pacf_from_acf(acf_rows[index]))

    def test_acf_rows_pass_through_untouched(self):
        x = _series(2, 300)
        tracker = StatisticTracker(x, 8, statistic="acf")
        rows = np.zeros((4, 8))
        assert tracker._to_statistic_rows(rows) is rows


class TestPacfInitialImpacts:
    @pytest.mark.parametrize("kwargs", [
        {"statistic": "pacf"},
        {"statistic": "pacf", "agg_window": 5},
        {"statistic": "pacf", "agg_window": 5, "agg": "sum"},
    ])
    def test_vectorized_path_matches_per_point_previews(self, kwargs):
        x = _series(9, 360)
        tracker = StatisticTracker(x, 7, **kwargs)
        metric = resolve_rowwise_metric("mae")
        positions, impacts = tracker.initial_impacts(metric)
        assert positions.size == x.size - 2
        from repro.core.impact import initial_interpolation_deltas

        _, deltas = initial_interpolation_deltas(tracker.current_values)
        for index in (0, 1, 57, 178, 200, positions.size - 1):
            expected = tracker.deviation(
                metric, tracker.preview(int(positions[index]),
                                        np.asarray([deltas[index]])))
            assert impacts[index] == pytest.approx(expected, abs=1e-10)

    def test_trailing_partial_window_gets_current_deviation(self):
        # n not divisible by agg_window: the interior points that fall into
        # the incomplete trailing window cannot move the aggregated
        # statistic, so their impact must be the current deviation — for
        # the vectorized path exactly as for the per-point preview loop it
        # replaced.
        x = _series(4, 362)
        tracker = StatisticTracker(x, 6, statistic="pacf", agg_window=5)
        assert tracker.current_values.size % 5 != 0
        metric = resolve_rowwise_metric("mae")
        positions, impacts = tracker.initial_impacts(metric)
        from repro.core.impact import initial_interpolation_deltas

        _, deltas = initial_interpolation_deltas(tracker.current_values)
        num_windows = 362 // 5
        trailing = np.flatnonzero(positions // 5 >= num_windows)
        assert trailing.size > 0, "fixture must cover the partial window"
        current_deviation = tracker.deviation(metric, tracker.current_statistic())
        for index in trailing:
            assert impacts[index] == current_deviation
            expected = tracker.deviation(
                metric, tracker.preview(int(positions[index]),
                                        np.asarray([deltas[index]])))
            assert impacts[index] == pytest.approx(expected, abs=1e-12)

    def test_max_aggregation_still_uses_preview_loop(self):
        # max/min windows have no linear change translation; the fallback
        # must keep producing exact per-point previews.
        x = _series(9, 300)
        tracker = StatisticTracker(x, 5, statistic="pacf", agg_window=5, agg="max")
        metric = resolve_rowwise_metric("mae")
        positions, impacts = tracker.initial_impacts(metric)
        from repro.core.impact import initial_interpolation_deltas

        _, deltas = initial_interpolation_deltas(tracker.current_values)
        for index in (0, 100, positions.size - 1):
            expected = tracker.deviation(
                metric, tracker.preview(int(positions[index]),
                                        np.asarray([deltas[index]])))
            assert impacts[index] == pytest.approx(expected, abs=1e-12)


class TestFixedSeedKeptSetRegression:
    """Kept-point sets recorded from the pre-vectorization implementation.

    The full index lists (small configs) and SHA-256 digests (larger ones)
    below were captured by running the per-row/per-point implementation this
    PR replaced, on the exact series built by ``_series``.  Any change to
    these sets means the fast path no longer reproduces seed behaviour.
    """

    EXPECTED_ACF_BASIC = [0, 18, 27, 44, 58, 66, 78, 96, 103, 105, 145, 150,
                          161, 175, 185, 201, 210, 220, 234, 248, 255, 269,
                          282, 290, 297, 305, 317, 327, 359, 375, 391, 399]
    EXPECTED_PACF_BASIC = [0, 1, 2, 3, 19, 93, 99, 100, 103, 105, 256, 269,
                           282, 284, 285, 287, 290, 291, 292, 308, 399]

    def test_acf_basic_kept_set(self):
        result = CameoCompressor(max_lag=12, epsilon=0.05).compress(_series(21, 400))
        assert result.indices.tolist() == self.EXPECTED_ACF_BASIC
        assert result.metadata["stopped_by"] == "error-bound"

    def test_pacf_basic_kept_set(self):
        result = CameoCompressor(max_lag=8, epsilon=0.08,
                                 statistic="pacf").compress(_series(21, 400))
        assert result.indices.tolist() == self.EXPECTED_PACF_BASIC
        assert result.metadata["stopped_by"] == "error-bound"

    @pytest.mark.parametrize("kwargs,seed,n,kept,digest,stopped_by", [
        (dict(max_lag=12, epsilon=0.02, statistic="pacf"),
         5, 800, 268, "07726af6dd331173", "error-bound"),
        (dict(max_lag=6, epsilon=0.05, statistic="pacf", agg_window=4),
         11, 640, 64, "c68148c3f0f3911e", "error-bound"),
        (dict(max_lag=8, epsilon=0.04, statistic="pacf", on_violation="skip"),
         19, 500, 69, "f4ad29f8e67cabf4", "heap-exhausted"),
    ], ids=["pacf-tight", "pacf-agg", "pacf-skip"])
    def test_pacf_kept_set_digests(self, kwargs, seed, n, kept, digest, stopped_by):
        result = CameoCompressor(**kwargs).compress(_series(seed, n))
        indices = np.asarray(result.indices, dtype=np.int64)
        assert indices.size == kept
        assert hashlib.sha256(indices.tobytes()).hexdigest()[:16] == digest
        assert result.metadata["stopped_by"] == stopped_by
