"""Golden CAMEO kept-sets on the bundled real-data corpus.

The synthetic kept-set digests (``test_pacf_fastpath.py``) pin the
compressor's point selection on generated data; these pin it on *real*
series — the checksum-anchored corpus snapshots of :mod:`repro.ingest` —
so a kernel or heap change that shifts behaviour on real-world structure
(seasonality, nonlinear cycles) cannot slip through the synthetic suite.

The corpus bytes are pinned by SHA-256 and the compressor is deterministic,
so these digests are exact, and the ``kernel_tier`` fixture asserts them
under both the NumPy and native tiers.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.codecs import get_codec
from repro.ingest import load_corpus_series

# Every golden digest below must hold under both kernel tiers: the native
# extension is only correct if it is indistinguishable from the NumPy tier.
pytestmark = pytest.mark.usefixtures("kernel_tier")


def _kept_digest(series_name: str, **kwargs) -> tuple[int, str]:
    series = load_corpus_series(series_name)
    result = get_codec("cameo", **kwargs).compress(series.values)
    return len(result), hashlib.sha256(result.indices.tobytes()).hexdigest()[:16]


class TestCorpusKeptSets:
    @pytest.mark.parametrize("series_name,kwargs,kept,digest", [
        # The scorecard's own configuration: the series' pinned acf_lags
        # and the registry's fidelity epsilon.
        ("airline", dict(max_lag=24, epsilon=0.05), 10, "c67aa2e5b2cdaaa9"),
        ("sunspots", dict(max_lag=22, epsilon=0.05), 19, "efdb917f97c26d78"),
        # PACF-bounded compression on the same two series.
        ("airline", dict(max_lag=24, epsilon=0.05, statistic="pacf"),
         123, "35ea960dc7c1d6c8"),
        ("sunspots", dict(max_lag=22, epsilon=0.05, statistic="pacf"),
         20, "1bd6f21ddfc227ba"),
        # The on-aggregates variant (tumbling 2-point windows).
        ("airline", dict(max_lag=12, epsilon=0.02, agg_window=2),
         20, "099ab480dc9f61e0"),
    ])
    def test_cameo_kept_set_digests(self, series_name, kwargs, kept, digest):
        assert _kept_digest(series_name, **kwargs) == (kept, digest)

    def test_decode_round_trips_kept_points(self):
        series = load_corpus_series("airline")
        codec = get_codec("cameo", max_lag=24, epsilon=0.05)
        block = codec.encode(series.values)
        reconstruction = codec.decode(block)
        assert reconstruction.size == series.values.size
        result = block.payload
        for index, value in zip(result.indices, result.values):
            assert reconstruction[index] == value
