"""The partitioned ReHeap kernel must reproduce the preserved one bit for bit.

``repro.core.impact.batched_contiguous_acf`` now routes interior segments
(whose lag windows never cross a series boundary) through a fast path that
collapses the four masked head/tail segment sums to plain per-segment sums
and fuses the lagged gathers, while boundary segments keep the fully masked
formulation.  The pre-partitioning kernel is preserved verbatim as
:func:`repro._kernels.reference.reference_batched_contiguous_acf`; every
row the new kernel produces must equal it **bit for bit** — this is what
keeps the heap keys, and with them the CAMEO pop order, identical across
the refactor.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._kernels.reference import reference_batched_contiguous_acf
from repro.core.impact import batched_contiguous_acf
from repro.stats.aggregates import ACFAggregateState


def _random_case(rng: np.random.Generator):
    n = int(rng.integers(12, 400))
    max_lag = int(rng.integers(1, min(n - 2, 60)))
    values = rng.normal(0.0, 1.0, n)
    state = ACFAggregateState(values, max_lag)
    segments = int(rng.integers(1, 40))
    lengths = rng.integers(0, min(14, n - 1), segments)
    positions: list[int] = []
    for length in lengths:
        if length == 0:
            continue
        start = int(rng.integers(0, n - length + 1))
        positions.extend(range(start, start + int(length)))
    positions_arr = np.asarray(positions, dtype=np.int64)
    deltas = rng.normal(0.0, 0.5, positions_arr.size)
    return state, lengths, positions_arr, deltas


@settings(max_examples=150, deadline=None)
@given(seed=st.integers(0, 2 ** 31))
def test_bitwise_identical_to_reference(seed):
    rng = np.random.default_rng(seed)
    state, lengths, positions, deltas = _random_case(rng)
    fast = batched_contiguous_acf(state, lengths, positions, deltas)
    slow = reference_batched_contiguous_acf(state, lengths, positions, deltas)
    assert np.array_equal(fast, slow)


def test_boundary_segments_take_the_masked_path():
    # Segments hugging both series ends force the edge path and the
    # interior/edge split within one call.
    rng = np.random.default_rng(9)
    n, max_lag = 120, 30
    state = ACFAggregateState(rng.normal(0, 1, n), max_lag)
    lengths = np.array([4, 3, 5], dtype=np.int64)
    positions = np.concatenate([
        np.arange(0, 4),            # clipped on the left
        np.arange(60, 63),          # interior
        np.arange(n - 5, n),        # clipped on the right
    ]).astype(np.int64)
    deltas = rng.normal(0, 0.5, positions.size)
    fast = batched_contiguous_acf(state, lengths, positions, deltas)
    slow = reference_batched_contiguous_acf(state, lengths, positions, deltas)
    assert np.array_equal(fast, slow)


def test_zero_length_segments_get_current_acf():
    rng = np.random.default_rng(11)
    state = ACFAggregateState(rng.normal(0, 1, 80), 10)
    lengths = np.array([0, 2, 0], dtype=np.int64)
    positions = np.array([40, 41], dtype=np.int64)
    deltas = np.array([0.5, -0.25])
    fast = batched_contiguous_acf(state, lengths, positions, deltas)
    assert np.array_equal(fast[0], state.acf())
    assert np.array_equal(fast[2], state.acf())
    assert np.array_equal(
        fast, reference_batched_contiguous_acf(state, lengths, positions,
                                               deltas))
