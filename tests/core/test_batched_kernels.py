"""Regression tests for the batched CAMEO inner-loop kernels.

The fused ReHeap pipeline (vectorized neighbourhood masks, batched segment
deltas, the multi-segment ACF impact kernel, ``update_many``) must be
behaviourally indistinguishable from the straightforward per-candidate
implementation it replaced — up to and including the greedy compressor
producing identical kept-point sets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CameoCompressor,
    IndexedMinHeap,
    NeighborList,
    ResolvedMetric,
    batched_contiguous_acf,
    batched_single_change_impacts,
    metric_rowwise,
    resolve_rowwise_metric,
    segment_interpolation_deltas,
    segment_interpolation_deltas_batched,
)
from repro.core.tracker import StatisticTracker
from repro.exceptions import InvalidParameterError
from repro.stats.aggregates import ACFAggregateState


def _series(seed: int, n: int = 600) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (3.0 + np.sin(2 * np.pi * t / 24) + rng.normal(0.0, 0.3, n))


class TestResolvedMetric:
    def test_resolves_names_once(self):
        resolved = resolve_rowwise_metric("MAE ")
        assert isinstance(resolved, ResolvedMetric)
        assert resolved.kind == "mae"
        # Resolving a resolved metric is the identity.
        assert resolve_rowwise_metric(resolved) is resolved

    def test_chebyshev_aliases_collapse(self):
        for alias in ("cheb", "chebyshev", "max"):
            assert resolve_rowwise_metric(alias).kind == "cheb"

    def test_unknown_name_raises(self):
        with pytest.raises(InvalidParameterError):
            resolve_rowwise_metric("definitely-not-a-metric")

    def test_callable_passthrough(self):
        fn = lambda a, b: float(np.sum(np.abs(a - b)))  # noqa: E731
        resolved = resolve_rowwise_metric(fn)
        assert resolved.kind == "callable"
        reference = np.array([1.0, 2.0])
        candidate = np.array([1.5, 1.0])
        assert resolved.single(reference, candidate) == pytest.approx(1.5)

    @pytest.mark.parametrize("name", ["mae", "cheb", "mse", "rmse"])
    def test_single_matches_rowwise(self, name):
        rng = np.random.default_rng(0)
        reference = rng.normal(size=12)
        candidate = rng.normal(size=12)
        resolved = resolve_rowwise_metric(name)
        assert resolved.single(reference, candidate) == pytest.approx(
            float(metric_rowwise(name, reference, candidate)[0]), abs=0.0)


class TestSegmentDeltasBatched:
    def test_matches_per_gap_function_exactly(self):
        current = _series(1, 200)
        lefts = np.array([0, 10, 50, 120, 197])
        rights = np.array([5, 12, 51, 140, 199])
        starts, lengths, positions, deltas = segment_interpolation_deltas_batched(
            current, lefts, rights)
        offset = 0
        for index, (left, right) in enumerate(zip(lefts, rights)):
            expected_start, expected_deltas = segment_interpolation_deltas(
                current, int(left), int(right))
            assert starts[index] == expected_start
            assert lengths[index] == expected_deltas.size
            segment = deltas[offset:offset + expected_deltas.size]
            offset += expected_deltas.size
            # Bit-exact, not just approximately equal.
            assert segment.tolist() == expected_deltas.tolist()
        assert offset == deltas.size
        assert np.array_equal(
            positions,
            np.concatenate([np.arange(l + 1, r) for l, r in zip(lefts, rights)
                            if r - l >= 2]))

    def test_all_empty_gaps(self):
        current = _series(2, 50)
        starts, lengths, positions, deltas = segment_interpolation_deltas_batched(
            current, np.array([3, 7]), np.array([4, 8]))
        assert lengths.tolist() == [0, 0]
        assert positions.size == 0 and deltas.size == 0
        assert starts.tolist() == [4, 8]


class TestBatchedContiguousAcf:
    def test_singles_bit_identical_to_single_change_kernel(self):
        x = _series(3, 400)
        state = ACFAggregateState(x, 20)
        positions = np.array([0, 5, 100, 395, 399], dtype=np.int64)
        deltas = np.array([0.5, -1.0, 0.25, 2.0, -0.75])
        acf_matrix = batched_contiguous_acf(
            state, np.ones(positions.size, dtype=np.int64), positions, deltas)
        reference = state.acf()
        impacts = metric_rowwise("mae", reference, acf_matrix)
        expected = batched_single_change_impacts(state, positions, deltas,
                                                 reference, "mae")
        assert impacts.tolist() == expected.tolist()

    def test_multi_segments_match_contiguous_preview(self):
        x = _series(4, 500)
        state = ACFAggregateState(x, 25)
        segments = [(10, 4), (100, 1), (240, 30), (470, 29), (0, 3)]
        rng = np.random.default_rng(9)
        lengths = np.array([m for _s, m in segments], dtype=np.int64)
        positions = np.concatenate([np.arange(s, s + m) for s, m in segments])
        deltas = rng.normal(0.0, 0.5, positions.size)
        acf_matrix = batched_contiguous_acf(state, lengths, positions, deltas)
        offset = 0
        for index, (start, m) in enumerate(segments):
            expected = state.preview_acf_contiguous(start, deltas[offset:offset + m])
            offset += m
            np.testing.assert_allclose(acf_matrix[index], expected,
                                       rtol=1e-10, atol=1e-12)

    def test_zero_length_segments_get_current_acf(self):
        x = _series(5, 300)
        state = ACFAggregateState(x, 10)
        lengths = np.array([0, 2, 0], dtype=np.int64)
        positions = np.array([50, 51], dtype=np.int64)
        deltas = np.array([0.3, -0.4])
        acf_matrix = batched_contiguous_acf(state, lengths, positions, deltas)
        current = state.acf()
        assert acf_matrix[0].tolist() == current.tolist()
        assert acf_matrix[2].tolist() == current.tolist()

    def test_blocking_chunks_do_not_change_results(self, monkeypatch):
        import repro.core.impact as impact_module

        x = _series(6, 400)
        state = ACFAggregateState(x, 15)
        segments = [(i * 20, 7) for i in range(15)]
        lengths = np.array([m for _s, m in segments], dtype=np.int64)
        positions = np.concatenate([np.arange(s, s + m) for s, m in segments])
        deltas = np.sin(positions * 0.1)
        full = batched_contiguous_acf(state, lengths, positions, deltas)
        monkeypatch.setattr(impact_module, "_MAX_BLOCK_CELLS", 64)
        chunked = batched_contiguous_acf(state, lengths, positions, deltas)
        assert np.array_equal(full, chunked)


class TestTrackerSegmentsApi:
    @pytest.mark.parametrize("kwargs", [
        {"statistic": "acf"},
        {"statistic": "pacf"},
        {"statistic": "acf", "agg_window": 8},
        {"statistic": "acf", "agg_window": 8, "agg": "max"},
    ])
    def test_matches_per_change_previews(self, kwargs):
        x = _series(7, 480)
        tracker = StatisticTracker(x, 6, **kwargs)
        segments = [(20, 3), (100, 1), (200, 0), (300, 12), (475, 5)]
        rng = np.random.default_rng(11)
        starts = np.array([s for s, _m in segments], dtype=np.int64)
        lengths = np.array([m for _s, m in segments], dtype=np.int64)
        positions = np.concatenate(
            [np.arange(s, s + m) for s, m in segments]).astype(np.int64)
        deltas = rng.normal(0.0, 0.4, positions.size)
        impacts = tracker.batch_impacts_segments(starts, lengths, positions,
                                                 deltas, "mae")
        offset = 0
        for index, (start, m) in enumerate(segments):
            if m == 0:
                expected = tracker.deviation("mae", tracker.current_statistic())
            else:
                expected = tracker.deviation(
                    "mae", tracker.preview(start, deltas[offset:offset + m]))
            offset += m
            assert impacts[index] == pytest.approx(expected, abs=1e-10)


class TestHeapBatchOps:
    def test_contains_mask_matches_membership(self):
        heap = IndexedMinHeap(30)
        heap.heapify(np.arange(5, 25), np.linspace(1.0, 0.0, 20))
        heap.remove(7)
        heap.remove(20)
        queried = np.arange(30)
        mask = heap.contains_mask(queried)
        assert mask.tolist() == [int(item) in heap for item in queried]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_update_many_equals_sequential_updates(self, seed):
        rng = np.random.default_rng(seed)
        capacity = 64
        base_items = np.arange(capacity)
        base_keys = rng.normal(size=capacity)
        batched = IndexedMinHeap(capacity)
        batched.heapify(base_items, base_keys)
        sequential = IndexedMinHeap(capacity)
        sequential.heapify(base_items, base_keys)
        for item in rng.choice(capacity, 10, replace=False):
            batched.remove(int(item))
            sequential.remove(int(item))

        updates = rng.choice(capacity, 40, replace=False)
        keys = rng.normal(size=updates.size)
        batched.update_many(updates, keys)
        for item, key in zip(updates, keys):
            sequential.update(int(item), float(key))
        assert batched.check_invariants()
        assert len(batched) == len(sequential)
        # Popping everything must yield the same (item, key) sequence.
        while sequential:
            assert batched.pop() == sequential.pop()

    def test_update_many_shape_mismatch(self):
        heap = IndexedMinHeap(4)
        with pytest.raises(ValueError):
            heap.update_many(np.array([1, 2]), np.array([0.1]))


class TestNeighborBatchOps:
    def test_hops_array_matches_hops(self):
        nl = NeighborList(40)
        for index in (5, 6, 7, 20, 33):
            nl.remove(index)
        for start in (4, 10, 21):
            for h in (1, 3, 8):
                assert nl.hops_array(start, h).tolist() == nl.hops(start, h)
                assert (nl.hops_array(start, h, include_endpoints=True).tolist()
                        == nl.hops(start, h, include_endpoints=True))

    def test_gaps_of_matches_scalar_lookups(self):
        nl = NeighborList(30)
        for index in (3, 4, 11):
            nl.remove(index)
        alive = nl.alive_indices()
        lefts, rights = nl.gaps_of(alive)
        for position, left, right in zip(alive, lefts, rights):
            assert (left, right) == (nl.left_of(int(position)),
                                     nl.right_of(int(position)))


class _ReferenceReheapCameo(CameoCompressor):
    """CAMEO with the original per-candidate ReHeap (oracle for equivalence)."""

    def _reheap_neighbours(self, tracker, neighbours, heap, removed, hops,
                           metric=None):
        if metric is None:
            metric = self.metric
        candidates = [idx for idx in neighbours.hops(removed, hops) if idx in heap]
        if not candidates:
            return 0
        current = tracker.current_values
        changes = []
        for neighbour in candidates:
            left, right = neighbours.left_of(neighbour), neighbours.right_of(neighbour)
            changes.append(segment_interpolation_deltas(current, left, right))
        impacts = tracker.batch_impacts(changes, metric)
        for neighbour, impact in zip(candidates, impacts):
            heap.update(neighbour, float(impact))
        return len(candidates)


class TestCompressorEquivalence:
    @pytest.mark.parametrize("kwargs", [
        dict(max_lag=12, epsilon=0.05),
        dict(max_lag=8, epsilon=0.08, statistic="pacf"),
        dict(max_lag=6, epsilon=0.05, agg_window=4),
        dict(max_lag=6, epsilon=0.06, statistic="pacf", agg_window=4),
        dict(max_lag=10, epsilon=0.1, statistic="pacf", metric="cheb"),
        dict(max_lag=12, epsilon=0.1, metric="cheb"),
        dict(max_lag=12, epsilon=None, target_ratio=3.0),
    ])
    def test_fused_reheap_keeps_identical_point_sets(self, kwargs):
        x = _series(21, 400)
        fast = CameoCompressor(**kwargs).compress(x)
        reference = _ReferenceReheapCameo(**kwargs).compress(x)
        assert fast.indices.tolist() == reference.indices.tolist()
        assert (fast.metadata["stopped_by"]
                == reference.metadata["stopped_by"])
