"""Tests for the unified codec layer (repro.codecs).

Covers the protocol/registry API, byte-identity of the adapters against the
implementations they wrap, block serialization, and the acceptance matrix:
every registered codec round-trips identically through all four consumers
(direct ``get_codec``, ``TimeSeriesStore``, ``StreamingCompressor``, CLI
``compress`` → ``decompress``).
"""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.cli import main
from repro.codecs import (
    CameoCodec,
    Codec,
    CompressedBlock,
    available_codecs,
    block_from_document,
    block_to_document,
    codec_families,
    codec_spec,
    codec_specs,
    get_codec,
    register_codec,
)
from repro.codecs.registry import _REGISTRY
from repro.core import CameoCompressor
from repro.exceptions import CodecError, InvalidParameterError, StorageError
from repro.lossless import ChimpCodec, GorillaCodec
from repro.storage import TimeSeriesStore
from repro.streaming import StreamingCompressor

RNG = np.random.default_rng(21)


def _seasonal(n: int = 256, period: int = 24) -> np.ndarray:
    t = np.arange(n)
    return 10 + 3 * np.sin(2 * np.pi * t / period) + 0.2 * RNG.standard_normal(n)


class TestRegistry:
    def test_all_builtins_registered(self):
        names = available_codecs()
        for expected in ("raw", "gorilla", "chimp", "cameo", "vw", "tps", "tpm",
                         "pipv", "pipe", "rdp", "pmc", "swing", "simpiece", "fft"):
            assert expected in names

    def test_families(self):
        assert codec_families() == ["raw", "lossless", "cameo", "simplify", "model"]
        assert [spec.name for spec in codec_specs("lossless")] == ["gorilla", "chimp"]
        assert [spec.label for spec in codec_specs("model")] == [
            "PMC", "SWING", "SP", "FFT"]

    def test_unknown_codec_lists_available(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            get_codec("zstd")
        message = str(excinfo.value)
        for name in available_codecs():
            assert name in message

    def test_unknown_codec_suggests_close_match(self):
        with pytest.raises(InvalidParameterError, match="did you mean.*gorilla"):
            get_codec("gorila")

    def test_get_codec_case_insensitive_and_forwarding(self):
        codec = get_codec("CAMEO", max_lag=8, epsilon=0.005)
        assert isinstance(codec, CameoCodec)
        assert codec.max_lag == 8 and codec.epsilon == 0.005

    def test_register_rejects_duplicate_without_overwrite(self):
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_codec("cameo", CameoCodec)

    def test_register_overwrite_and_cleanup(self):
        spec_before = codec_spec("cameo")
        register_codec("cameo", CameoCodec, family="cameo", label="CAMEO",
                       overwrite=True)
        _REGISTRY["cameo"] = spec_before
        assert codec_spec("cameo") is spec_before

    def test_register_non_callable_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_codec("broken", 42)  # type: ignore[arg-type]

    def test_fidelity_metadata_on_builtins(self):
        # The scorecard derives its codec knobs from this metadata: every
        # lossy built-in declares how it should be driven, lossless ones
        # declare nothing.
        for name in ("raw", "gorilla", "chimp"):
            assert codec_spec(name).fidelity == {}
        assert codec_spec("cameo").fidelity == {"epsilon": 0.05}
        for name in ("vw", "tps", "tpm", "pipv", "pipe", "rdp"):
            assert codec_spec(name).fidelity == {"epsilon": 0.05}
        for name in ("pmc", "swing", "simpiece"):
            assert codec_spec(name).fidelity == {"error_bound_fraction": 0.05}
        assert codec_spec("fft").fidelity == {"keep_fraction": 0.25}

    def test_fidelity_metadata_is_copied_not_shared(self):
        knobs = {"epsilon": 0.5}
        register_codec("test-fidelity-copy", CameoCodec, fidelity=knobs,
                       overwrite=True)
        try:
            knobs["epsilon"] = 99.0
            assert codec_spec("test-fidelity-copy").fidelity == {"epsilon": 0.5}
        finally:
            _REGISTRY.pop("test-fidelity-copy", None)


class TestAdapterIdentity:
    """The adapters must be byte-identical to the implementations they wrap."""

    @pytest.mark.parametrize("name,reference", [("gorilla", GorillaCodec),
                                                ("chimp", ChimpCodec)])
    def test_xor_payloads_byte_identical(self, name, reference):
        values = _seasonal(300)
        block = get_codec(name).encode(values)
        payload, bit_length, count = reference().encode(values)
        assert block.payload[0] == payload
        assert block.payload[1] == bit_length and block.payload[2] == count
        assert block.bits == bit_length

    def test_cameo_kept_points_identical_to_compressor(self):
        values = _seasonal(512)
        block = get_codec("cameo", max_lag=16, epsilon=0.02).encode(values)
        direct = CameoCompressor(16, 0.02).compress(values)
        np.testing.assert_array_equal(block.payload.indices, direct.indices)
        np.testing.assert_array_equal(block.payload.values, direct.values)

    def test_foreign_block_rejected_as_codec_and_storage_error(self):
        block = get_codec("raw").encode(_seasonal(32))
        with pytest.raises(CodecError):
            get_codec("gorilla").decode(block)
        with pytest.raises(StorageError):
            get_codec("gorilla").decode(block)


class TestBlockSerialization:
    @pytest.mark.parametrize("name", ["raw", "gorilla", "cameo", "vw", "pmc", "fft"])
    def test_document_roundtrip(self, name, fast_codec_options):
        values = _seasonal(200)
        codec = get_codec(name, **fast_codec_options(name))
        block = codec.encode(values)
        document = block_to_document(block, materialize=lambda: codec.decode(block))
        document = json.loads(json.dumps(document))  # force JSON round trip
        loaded = block_from_document(document)
        assert loaded.codec == block.codec
        assert loaded.bits == block.bits and loaded.length == block.length
        np.testing.assert_array_equal(codec.decode(loaded), codec.decode(block))

    def test_model_payload_without_materialize_refused(self):
        block = get_codec("pmc", error_bound=0.5).encode(_seasonal(64))
        with pytest.raises(StorageError, match="compact"):
            block_to_document(block)

    def test_numpy_metadata_keeps_its_type(self):
        block = get_codec("raw").encode(_seasonal(32))
        block.metadata["deviation"] = np.float64(0.25)
        block.metadata["lags"] = np.arange(3)
        document = json.loads(json.dumps(block_to_document(block)))
        loaded = block_from_document(document)
        assert isinstance(loaded.metadata["deviation"], float)
        assert loaded.metadata["deviation"] == 0.25
        assert loaded.metadata["lags"] == [0, 1, 2]


class TestFourConsumerRoundTrip:
    """Acceptance: every codec decodes identically through every consumer."""

    @pytest.mark.parametrize("name", sorted(available_codecs()))
    def test_consumers_agree(self, name, tmp_path, fast_codec_options):
        values = _seasonal(256)
        options = fast_codec_options(name)

        # 1. direct protocol use
        codec = get_codec(name, **options)
        block = codec.encode(values)
        assert isinstance(block, CompressedBlock)
        direct = codec.decode(block)
        assert direct.shape == values.shape

        # 2. storage engine (one sealed segment)
        store = TimeSeriesStore(default_segment_size=values.size)
        store.create_series("s", codec=name, codec_options=options)
        store.append("s", values)
        store.flush("s")
        np.testing.assert_array_equal(store.read("s"), direct)

        # 3. codec-generic streaming (one sealed chunk)
        stream = StreamingCompressor(values.size, codec=name, codec_options=options)
        stream.add(values)
        stream.flush()
        np.testing.assert_array_equal(stream.reconstruct(), direct)

        # 4. CLI compress -> decompress
        source = tmp_path / "input.csv"
        with open(source, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["index", "value"])
            for index, value in enumerate(values):
                writer.writerow([index, repr(float(value))])
        compressed = tmp_path / f"out.{name}.json"
        argv = ["compress", str(source), "--column", "value", "--codec", name,
                "--output", str(compressed)]
        for key, value in options.items():
            if key in ("max_lag", "epsilon"):
                argv += [f"--{key.replace('_', '-')}", str(value)]
            else:
                argv += ["--codec-arg", f"{key}={value}"]
        assert main(argv) == 0
        restored = tmp_path / "restored.csv"
        assert main(["decompress", str(compressed), "--output", str(restored)]) == 0
        with open(restored, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        cli_values = np.asarray([float(row[1]) for row in rows[1:]], dtype=np.float64)
        np.testing.assert_array_equal(cli_values, direct)


class TestUniformAccounting:
    def test_codec_level_helpers(self):
        values = _seasonal(128)
        codec = get_codec("raw")
        assert codec.bits(values) == values.size * 64
        assert codec.bits_per_value(values) == pytest.approx(64.0)
        assert codec.compression_ratio(values) == pytest.approx(1.0)

    def test_storage_aliases_are_the_unified_types(self):
        from repro.storage import EncodedChunk, SegmentCodec

        assert SegmentCodec is Codec
        assert EncodedChunk is CompressedBlock
