"""Dtype-preserving ``Codec.encode``/``decode`` round trips (every family).

The codec layer computes on float64 (the XOR codecs operate on the 64-bit
IEEE bit pattern, so the *payloads* are inherently float64), but a
``float32``/``float16`` input must come back with its own dtype: narrow
floats embed into float64 exactly, so the restoration is lossless for the
lossless codecs and a plain cast for the lossy ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import available_codecs, codec_spec, get_codec
from repro.codecs.base import SOURCE_DTYPE_KEY
from repro.codecs.serialize import block_from_document, block_to_document


def _signal(n: int = 256) -> np.ndarray:
    rng = np.random.default_rng(9)
    t = np.arange(n)
    return np.round(4.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0.0, 0.2, n), 2)


def _codec_for(name: str):
    spec = codec_spec(name)
    if spec.family in ("cameo", "simplify"):
        return get_codec(name, max_lag=12, epsilon=0.05)
    return get_codec(name)


@pytest.mark.parametrize("name", available_codecs())
@pytest.mark.parametrize("dtype", [np.float32, np.float16], ids=["f32", "f16"])
def test_narrow_float_roundtrip_preserves_dtype(name, dtype):
    values = _signal().astype(dtype)
    codec = _codec_for(name)
    block = codec.encode(values)
    decoded = codec.decode(block)
    assert decoded.dtype == np.dtype(dtype)
    assert decoded.size == values.size
    if block.lossless:
        # Narrow floats embed into float64 exactly, so lossless codecs
        # round-trip the narrow input bit for bit.
        assert np.array_equal(decoded, values)
    else:
        # Lossy codecs must reconstruct the same values they would for the
        # equivalent float64 input, cast back to the input dtype.
        reference = codec.decode(_codec_for(name).encode(values.astype(np.float64)))
        assert np.array_equal(decoded, reference.astype(dtype))


@pytest.mark.parametrize("name", available_codecs())
def test_float64_roundtrip_stays_float64(name):
    values = _signal()
    codec = _codec_for(name)
    block = codec.encode(values)
    assert SOURCE_DTYPE_KEY not in block.metadata
    assert codec.decode(block).dtype == np.float64


@pytest.mark.parametrize("name", ["raw", "gorilla", "chimp", "cameo", "vw", "pmc"])
def test_source_dtype_survives_serialization(name):
    values = _signal().astype(np.float32)
    codec = _codec_for(name)
    block = codec.encode(values)
    document = block_to_document(block, materialize=lambda: codec.decode(block))
    restored = block_from_document(document)
    decoded = _codec_for(name).decode(restored)
    assert decoded.dtype == np.float32
    if block.lossless:
        assert np.array_equal(decoded, values)


def test_short_blocks_preserve_dtype():
    # Chunks too short to simplify are kept verbatim; the dtype still sticks.
    values = np.asarray([1.0, 2.0, 3.0], dtype=np.float32)
    codec = _codec_for("cameo")
    block = codec.encode(values)
    assert block.metadata.get("short_segment") is True
    decoded = codec.decode(block)
    assert decoded.dtype == np.float32
    assert np.array_equal(decoded, values)


def test_wider_floats_are_not_claimed_back():
    # Casting a >64-bit float to float64 already lost precision; the round
    # trip stays float64 rather than pretending to restore the wide dtype.
    if np.dtype(np.longdouble).itemsize <= 8:
        pytest.skip("platform long double is not wider than float64")
    values = _signal().astype(np.longdouble)
    codec = _codec_for("gorilla")
    block = codec.encode(values)
    assert SOURCE_DTYPE_KEY not in block.metadata
    assert codec.decode(block).dtype == np.float64
