"""Property suite locking the fidelity metrics to their contracts.

Every registered metric promises (see :mod:`repro.fidelity.base`):

* identity — an identical reconstruction scores exactly ``0.0``;
* symmetry — where the spec claims it, swapping the arguments cannot
  change the score;
* NaN-freedom — degenerate (constant / near-constant) input maps to a
  documented sentinel, never NaN;

and each production metric must agree with its brute-force scalar-loop
twin in :mod:`repro.fidelity.reference` (the ``_kernels/reference.py``
pattern).  The reference twins do not aggregate, so every comparison here
runs under ``agg_window=1`` contexts.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.fidelity import (
    FidelityContext,
    acf_distance,
    context_for_series,
    fidelity_spec,
    fidelity_specs,
    get_fidelity_metric,
    normalized_periodogram,
    register_fidelity_metric,
)
from repro.fidelity import metrics as fidelity_metrics
from repro.fidelity import reference
from repro.data.timeseries import TimeSeries

CONTEXT = FidelityContext(max_lag=8, agg_window=1, period=4, horizon=4)

ALL_SPECS = fidelity_specs()
SPEC_IDS = [spec.name for spec in ALL_SPECS]


def series_strategy(min_size=8, max_size=48, magnitude=1e4):
    return st.lists(
        st.floats(-magnitude, magnitude, allow_nan=False, allow_infinity=False,
                  width=64),
        min_size=min_size, max_size=max_size,
    ).map(lambda values: np.asarray(values, dtype=np.float64))


def pair_strategy(**kwargs):
    return series_strategy(**kwargs).flatmap(
        lambda x: st.tuples(
            st.just(x),
            st.lists(st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False,
                               width=64),
                     min_size=x.size, max_size=x.size)
            .map(lambda values: np.asarray(values, dtype=np.float64))))


class TestIdentity:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    @settings(max_examples=30, deadline=None)
    @given(x=series_strategy())
    def test_identical_reconstruction_scores_exactly_zero(self, spec, x):
        assert spec.fn(x, x.copy(), CONTEXT) == 0.0

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    def test_identity_on_constant_series(self, spec):
        x = np.full(32, 7.25)
        assert spec.fn(x, x.copy(), CONTEXT) == 0.0


class TestSymmetry:
    @pytest.mark.parametrize(
        "spec", [spec for spec in ALL_SPECS if spec.symmetric],
        ids=[spec.name for spec in ALL_SPECS if spec.symmetric])
    @settings(max_examples=30, deadline=None)
    @given(pair=pair_strategy())
    def test_claimed_symmetry_holds_exactly(self, spec, pair):
        x, y = pair
        assert spec.fn(x, y, CONTEXT) == spec.fn(y, x, CONTEXT)

    def test_nrmse_is_rightly_not_claimed_symmetric(self):
        # The normalizing range comes from the original, so swapping the
        # arguments genuinely changes the score.
        assert not fidelity_spec("nrmse").symmetric
        x = np.array([0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0])
        y = x / 4.0
        nrmse = fidelity_spec("nrmse").fn
        assert nrmse(x, y, CONTEXT) != nrmse(y, x, CONTEXT)


def quantized_pair_strategy(min_size=8, max_size=48):
    """Pairs on a 0.01 grid in [-100, 100]: element-wise differences stay
    representable after a bounded affine transform, so the invariance
    property is not confounded by floating-point absorption (a 1e-16
    element shifted by 1.0 would vanish and turn distinct series equal)."""
    grid = st.integers(-10_000, 10_000)
    return st.lists(grid, min_size=min_size, max_size=max_size).flatmap(
        lambda xs: st.tuples(
            st.just(np.asarray(xs, dtype=np.float64) / 100.0),
            st.lists(grid, min_size=len(xs), max_size=len(xs))
            .map(lambda ys: np.asarray(ys, dtype=np.float64) / 100.0)))


class TestAcfAffineInvariance:
    @settings(max_examples=30, deadline=None)
    @given(pair=quantized_pair_strategy(),
           scale=st.floats(0.25, 4.0),
           shift=st.floats(-50.0, 50.0))
    def test_affine_transform_preserves_acf_distance(self, pair, scale, shift):
        x, y = pair
        assume(float(np.std(x)) > 1e-2 and float(np.std(y)) > 1e-2)
        base = acf_distance(x, y, CONTEXT)
        transformed = acf_distance(scale * x + shift, scale * y + shift, CONTEXT)
        assert math.isfinite(base) and math.isfinite(transformed)
        assert transformed == pytest.approx(base, rel=1e-5, abs=1e-5)


class TestNaNFreedom:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    @settings(max_examples=20, deadline=None)
    @given(level=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
           noise=st.floats(0.0, 1e-9))
    def test_constant_and_near_constant_never_nan(self, spec, level, noise):
        x = np.full(24, level)
        y = x + noise
        score = spec.fn(x, y, CONTEXT)
        assert not math.isnan(score)

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    def test_constant_vs_different_constant_never_nan(self, spec):
        x = np.zeros(24)
        y = np.full(24, 3.0)
        score = spec.fn(x, y, CONTEXT)
        assert not math.isnan(score)

    def test_constant_spectrum_is_all_zero_not_nan(self):
        spectrum = normalized_periodogram(np.full(16, 5.0))
        np.testing.assert_array_equal(spectrum, np.zeros(8))


class TestReferenceAgreement:
    """The production metrics must match the scalar-loop oracle."""

    PAIRS = [
        (fidelity_metrics.acf_distance, reference.reference_acf_distance, 1e-8),
        (fidelity_metrics.pacf_distance, reference.reference_pacf_distance, 1e-6),
        (fidelity_metrics.spectral_distance,
         reference.reference_spectral_distance, 1e-6),
        (fidelity_metrics.max_error, reference.reference_max_error, 0.0),
        (fidelity_metrics.nrmse, reference.reference_nrmse, 1e-12),
    ]

    @pytest.mark.parametrize("fast,slow,tolerance", PAIRS,
                             ids=["acf", "pacf", "spectral", "max_error", "nrmse"])
    @settings(max_examples=25, deadline=None)
    @given(pair=pair_strategy(max_size=40, magnitude=1e3))
    def test_production_matches_reference(self, fast, slow, tolerance, pair):
        x, y = pair
        expected = slow(x, y, CONTEXT)
        actual = fast(x, y, CONTEXT)
        if math.isinf(expected):
            assert math.isinf(actual)
        else:
            assert actual == pytest.approx(expected, rel=max(tolerance, 1e-12),
                                           abs=max(tolerance, 1e-12))

    @settings(max_examples=15, deadline=None)
    @given(x=series_strategy(min_size=10, max_size=40, magnitude=1e3))
    def test_acf_and_pacf_vectors_match_reference(self, x):
        from repro.stats import acf, pacf_from_acf
        assume(float(np.std(x)) > 1e-6)
        lag = min(8, x.size - 2)
        np.testing.assert_allclose(acf(x, lag), reference.reference_acf(x, lag),
                                   rtol=1e-8, atol=1e-10)
        np.testing.assert_allclose(pacf_from_acf(acf(x, lag)),
                                   reference.reference_pacf(x, lag),
                                   rtol=1e-6, atol=1e-8)

    @settings(max_examples=15, deadline=None)
    @given(x=series_strategy(min_size=8, max_size=32, magnitude=1e3))
    def test_periodogram_matches_direct_dft(self, x):
        np.testing.assert_allclose(normalized_periodogram(x),
                                   reference.reference_periodogram(x),
                                   rtol=1e-6, atol=1e-9)


class TestValidation:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=SPEC_IDS)
    def test_malformed_input_raises_invalid_series(self, spec):
        good = np.arange(16.0)
        with pytest.raises(InvalidSeriesError):
            spec.fn(np.array([]), np.array([]), CONTEXT)
        with pytest.raises(InvalidSeriesError):
            spec.fn(good, good[:-1], CONTEXT)
        with pytest.raises(InvalidSeriesError):
            spec.fn(np.full(16, np.nan), good, CONTEXT)


class TestRegistry:
    def test_builtin_order_is_stable(self):
        assert [spec.name for spec in fidelity_specs()] == [
            "acf_dist", "pacf_dist", "spectral_dist",
            "max_error", "nrmse", "forecast_delta"]

    def test_kind_filter(self):
        assert [spec.name for spec in fidelity_specs(kind="downstream")] == [
            "forecast_delta"]
        assert all(spec.kind == "statistical"
                   for spec in fidelity_specs(kind="statistical"))

    def test_unknown_metric_suggests_close_match(self):
        with pytest.raises(InvalidParameterError, match="acf_dist"):
            fidelity_spec("acf_dis")

    def test_duplicate_registration_is_rejected(self):
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_fidelity_metric("nrmse", lambda x, y, ctx: 0.0)

    def test_get_metric_passes_callables_through(self):
        probe = lambda x, y, ctx: 1.0  # noqa: E731
        assert get_fidelity_metric(probe) is probe
        assert get_fidelity_metric("max_error") is fidelity_metrics.max_error


class TestContext:
    def test_clamping_fits_short_series(self):
        context = FidelityContext(max_lag=24, agg_window=4, horizon=12)
        clamped = context.clamped(20)
        assert clamped.max_lag == 3  # 20 // 4 tracked points - 2
        assert clamped.horizon == 5  # 20 // 4
        assert clamped.agg_window == 4

    def test_context_for_series_reads_metadata(self):
        series = TimeSeries(values=np.arange(144.0), name="probe", period=12,
                            metadata={"acf_lags": 24, "agg_window": 1})
        context = context_for_series(series)
        assert (context.max_lag, context.agg_window) == (24, 1)
        assert (context.period, context.horizon) == (12, 12)

    def test_context_for_plain_arrays_uses_defaults(self):
        context = context_for_series(np.arange(400.0))
        assert (context.max_lag, context.agg_window, context.period,
                context.horizon) == (24, 1, 0, 12)
