"""Gating guarantees for the fidelity scorecard.

The CI scorecard job is non-gating (values may drift across numpy
versions); what *gates* lives here: the committed ``SCORECARD.json`` is
schema-valid and complete, two back-to-back builds are byte-identical, and
the rendered tables in ``docs/evaluation.md`` match the committed JSON.
"""

from __future__ import annotations

import copy
import json
from pathlib import Path

import numpy as np
import pytest

from repro.benchlib.scorecard import (
    SCORECARD_FORMAT,
    SCORECARD_VERSION,
    build_scorecard,
    derive_codec_options,
    render_markdown,
    scorecard_json,
    validate_scorecard,
    write_scorecard,
)
from repro.codecs import available_codecs, codec_spec
from repro.exceptions import ScorecardError
from repro.fidelity import available_fidelity_metrics
from repro.ingest import corpus_names, load_corpus_series

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SCORECARD_PATH = REPO_ROOT / "SCORECARD.json"
EVALUATION_PAGE = REPO_ROOT / "docs" / "evaluation.md"


@pytest.fixture(scope="module")
def committed() -> dict:
    return json.loads(SCORECARD_PATH.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def built() -> dict:
    return build_scorecard()


class TestCommittedScorecard:
    def test_is_schema_valid(self, committed):
        validate_scorecard(committed)

    def test_covers_every_codec_series_and_metric(self, committed):
        assert sorted(entry["name"] for entry in committed["codecs"]) == \
            available_codecs()
        assert list(committed["corpus"]) == corpus_names()
        assert [entry["name"] for entry in committed["metrics"]] == \
            available_fidelity_metrics()
        assert len(committed["results"]) == \
            len(committed["codecs"]) * len(committed["corpus"])

    def test_meets_the_acceptance_floor(self, committed):
        assert len(committed["corpus"]) >= 3
        assert len(committed["metrics"]) >= 5

    def test_is_canonically_serialized(self, committed):
        assert SCORECARD_PATH.read_text(encoding="utf-8") == \
            scorecard_json(committed)

    def test_lossless_codecs_score_zero_everywhere(self, committed):
        for row in committed["results"]:
            if row["lossless"] and row["codec"] in ("raw", "gorilla", "chimp"):
                assert all(score == 0 for score in row["scores"].values()), row

    def test_provenance_is_recorded(self, committed):
        for name, info in committed["corpus"].items():
            assert len(info["sha256"]) == 64, name
            assert "public domain" in info["license"], name
            assert info["points"] > 0

    def test_rendered_docs_page_matches(self, committed):
        # The same guarantee tools/render_scorecard.py --check enforces in
        # the CI docs job, kept gating inside tier-1.
        page = EVALUATION_PAGE.read_text(encoding="utf-8")
        begin = page.index("<!-- scorecard:begin -->") + len("<!-- scorecard:begin -->")
        end = page.index("<!-- scorecard:end -->")
        assert page[begin:end] == "\n" + render_markdown(committed)


class TestDeterminism:
    def test_back_to_back_builds_are_byte_identical(self, built):
        assert scorecard_json(built) == scorecard_json(build_scorecard())

    def test_no_nonfinite_floats_leak_into_json(self, built):
        # allow_nan=False would raise on any NaN/inf; round-trip proves it.
        assert json.loads(scorecard_json(built)) == json.loads(scorecard_json(built))

    def test_build_matches_committed_structure(self, built, committed):
        assert built["format"] == committed["format"] == SCORECARD_FORMAT
        assert built["version"] == committed["version"] == SCORECARD_VERSION
        assert built["codecs"] == committed["codecs"]
        assert built["metrics"] == committed["metrics"]
        assert list(built["corpus"]) == list(committed["corpus"])


class TestValidation:
    def _valid(self, built) -> dict:
        return copy.deepcopy(built)

    def test_rejects_non_object(self):
        with pytest.raises(ScorecardError, match="JSON object"):
            validate_scorecard([])

    def test_rejects_wrong_format(self, built):
        document = self._valid(built)
        document["format"] = "something-else"
        with pytest.raises(ScorecardError, match="format"):
            validate_scorecard(document)

    def test_rejects_version_drift(self, built):
        document = self._valid(built)
        document["version"] = SCORECARD_VERSION + 1
        with pytest.raises(ScorecardError, match="version"):
            validate_scorecard(document)

    def test_rejects_missing_cell(self, built):
        document = self._valid(built)
        document["results"].pop()
        with pytest.raises(ScorecardError, match="missing cells"):
            validate_scorecard(document)

    def test_rejects_duplicate_cell(self, built):
        document = self._valid(built)
        document["results"].append(copy.deepcopy(document["results"][0]))
        with pytest.raises(ScorecardError, match="duplicate"):
            validate_scorecard(document)

    def test_rejects_metric_coverage_gap(self, built):
        document = self._valid(built)
        document["results"][0]["scores"].pop("acf_dist")
        with pytest.raises(ScorecardError, match="coverage"):
            validate_scorecard(document)

    def test_rejects_non_numeric_score(self, built):
        document = self._valid(built)
        document["results"][0]["scores"]["acf_dist"] = "fast"
        with pytest.raises(ScorecardError, match="number"):
            validate_scorecard(document)

    def test_rejects_missing_required_key(self, built):
        document = self._valid(built)
        del document["results"][0]["bits_per_value"]
        with pytest.raises(ScorecardError, match="bits_per_value"):
            validate_scorecard(document)

    def test_null_scores_are_allowed(self, built):
        document = self._valid(built)
        document["results"][0]["scores"]["acf_dist"] = None
        validate_scorecard(document)

    def test_write_refuses_invalid_documents(self, tmp_path, built):
        document = self._valid(built)
        document["results"] = []
        target = tmp_path / "SCORECARD.json"
        with pytest.raises(ScorecardError):
            write_scorecard(document, target)
        assert not target.exists()


class TestCodecOptions:
    def test_statistic_bounded_codecs_get_the_series_lag(self):
        series = load_corpus_series("airline")
        options = derive_codec_options(codec_spec("cameo"), series)
        assert options == {"epsilon": 0.05, "max_lag": 24}

    def test_model_codecs_get_range_scaled_error_bound(self):
        series = load_corpus_series("nile")
        options = derive_codec_options(codec_spec("pmc"), series)
        value_range = float(np.max(series.values) - np.min(series.values))
        assert options["error_bound"] == pytest.approx(0.05 * value_range)
        assert "error_bound_fraction" not in options

    def test_fft_keeps_its_fraction_verbatim(self):
        series = load_corpus_series("lynx")
        assert derive_codec_options(codec_spec("fft"), series) == \
            {"keep_fraction": 0.25}

    def test_lossless_codecs_need_no_knobs(self):
        series = load_corpus_series("sunspots")
        assert derive_codec_options(codec_spec("gorilla"), series) == {}
        assert codec_spec("raw").fidelity == {}


class TestCli:
    def test_scorecard_subcommand_writes_valid_artifacts(self, tmp_path):
        from repro.cli import main
        output = tmp_path / "card.json"
        markdown = tmp_path / "card.md"
        # One codec keeps the CLI test fast; coverage of the full cross
        # product is the committed scorecard's job.
        assert main(["scorecard", "--output", str(output),
                     "--markdown", str(markdown),
                     "--codec", "cameo", "--codec", "raw"]) == 0
        document = json.loads(output.read_text(encoding="utf-8"))
        validate_scorecard(document)
        assert [entry["name"] for entry in document["codecs"]] == ["cameo", "raw"]
        assert "| `cameo` |" in markdown.read_text(encoding="utf-8")
