"""WAL record format, CRC32C, and scan-truncation behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StorageError
from repro.storage.checksum import crc32c, crc32c_hex
from repro.storage.wal import (
    WalRecord,
    WriteAheadLog,
    decode_record,
    encode_record,
    scan_wal,
)


class TestCrc32c:
    def test_known_answer_vector(self):
        # The standard CRC32C (Castagnoli) check value.
        assert crc32c(b"123456789") == 0xE3069283

    def test_empty_is_zero(self):
        assert crc32c(b"") == 0

    def test_incremental_chaining(self):
        assert crc32c(b"def", crc32c(b"abc")) == crc32c(b"abcdef")

    def test_hex_form(self):
        assert crc32c_hex(b"123456789") == "e3069283"
        assert len(crc32c_hex(b"x")) == 8

    @settings(max_examples=50, deadline=None)
    @given(st.binary(min_size=0, max_size=512))
    def test_detects_any_single_byte_change(self, data):
        reference = crc32c(data)
        if data:
            mutated = bytearray(data)
            mutated[0] ^= 0xFF
            assert crc32c(bytes(mutated)) != reference


def _record(sequence=0, series="s", values=(1.0, 2.0)):
    return WalRecord(sequence=sequence, series=series,
                     values=np.asarray(values, dtype=np.float64))


class TestRecordRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        sequence=st.integers(min_value=0, max_value=2**63 - 1),
        series=st.text(min_size=1, max_size=40),
        values=st.lists(st.floats(allow_nan=False, allow_infinity=False,
                                  width=64), min_size=0, max_size=64),
    )
    def test_encode_decode_roundtrip(self, sequence, series, values):
        record = _record(sequence, series, values)
        decoded, consumed = decode_record(encode_record(record))
        assert consumed == len(encode_record(record))
        assert decoded.sequence == sequence
        assert decoded.series == series
        assert np.array_equal(decoded.values, record.values)

    def test_negative_zero_and_extremes_survive(self):
        values = [-0.0, 0.0, np.finfo(np.float64).max, 5e-324]
        decoded, _ = decode_record(encode_record(_record(values=values)))
        assert np.array_equal(decoded.values, np.asarray(values),
                              equal_nan=True)
        assert np.signbit(decoded.values[0])

    def test_overlong_series_name_rejected(self):
        with pytest.raises(StorageError, match="name too long"):
            encode_record(_record(series="x" * 70_000))


class TestCrcRejectsEverySingleBitFlip:
    def test_every_bit_flip_is_rejected(self):
        record = _record(sequence=7, series="sensor-1",
                         values=[1.5, -2.25, 1e300])
        data = bytearray(encode_record(record))
        for bit in range(len(data) * 8):
            data[bit // 8] ^= 1 << (bit % 8)
            with pytest.raises(StorageError):
                decode_record(bytes(data))
            data[bit // 8] ^= 1 << (bit % 8)

    def test_every_truncation_is_rejected(self):
        data = encode_record(_record(values=[3.0, 4.0, 5.0]))
        for cut in range(len(data)):
            with pytest.raises(StorageError, match="truncated|magic|CRC"):
                decode_record(data[:cut])


class TestScan:
    def _write(self, path, records):
        path.write_bytes(b"".join(encode_record(r) for r in records))

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_wal(tmp_path / "absent.wal")
        assert scan.records == [] and scan.truncated_bytes == 0

    def test_clean_file_scans_fully(self, tmp_path):
        records = [_record(i, "s", [float(i)]) for i in range(5)]
        path = tmp_path / "a.wal"
        self._write(path, records)
        scan = scan_wal(path)
        assert [r.sequence for r in scan.records] == [0, 1, 2, 3, 4]
        assert scan.truncated_bytes == 0 and not scan.truncation_reason

    @pytest.mark.parametrize("cut", [1, 5, 13, 20])
    def test_torn_tail_truncates_to_last_intact_record(self, tmp_path, cut):
        records = [_record(i, "s", [float(i), 2.0]) for i in range(3)]
        path = tmp_path / "a.wal"
        self._write(path, records)
        full = path.read_bytes()
        path.write_bytes(full[: len(full) - cut])
        scan = scan_wal(path)
        assert [r.sequence for r in scan.records] == [0, 1]
        assert scan.truncated_bytes > 0
        assert scan.truncation_reason

    def test_mid_file_bit_flip_stops_the_scan(self, tmp_path):
        records = [_record(i, "s", [float(i)]) for i in range(4)]
        path = tmp_path / "a.wal"
        self._write(path, records)
        data = bytearray(path.read_bytes())
        one = len(encode_record(records[0]))
        data[one + 10] ^= 0x40  # inside record 1
        path.write_bytes(bytes(data))
        scan = scan_wal(path)
        assert [r.sequence for r in scan.records] == [0]
        assert scan.truncated_bytes == len(data) - one

    def test_non_monotonic_sequence_stops_the_scan(self, tmp_path):
        path = tmp_path / "a.wal"
        self._write(path, [_record(3, "s"), _record(3, "s")])
        scan = scan_wal(path)
        assert [r.sequence for r in scan.records] == [3]
        assert "non-monotonic" in scan.truncation_reason


class TestWriteAheadLog:
    def test_append_then_scan(self, tmp_path):
        path = tmp_path / "x.wal"
        with WriteAheadLog(path) as wal:
            for i in range(4):
                wal.append(_record(i, "s", [float(i)]))
        scan = scan_wal(path)
        assert [r.sequence for r in scan.records] == [0, 1, 2, 3]

    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_policies_all_persist_after_close(self, tmp_path, policy):
        path = tmp_path / "x.wal"
        with WriteAheadLog(path, fsync_policy=policy,
                           fsync_interval=2) as wal:
            for i in range(5):
                wal.append(_record(i, "s", [1.0]))
        assert len(scan_wal(path).records) == 5

    def test_unknown_policy_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="fsync_policy"):
            WriteAheadLog(tmp_path / "x.wal", fsync_policy="sometimes")
