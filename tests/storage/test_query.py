"""Tests for the analytical query layer (repro.storage.query)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, StorageError
from repro.stats import acf
from repro.storage import QueryEngine, TimeSeriesStore

RNG = np.random.default_rng(17)


def _seasonal(n: int, period: int = 48) -> np.ndarray:
    t = np.arange(n)
    return 100 + 10 * np.sin(2 * np.pi * t / period) + 0.5 * RNG.standard_normal(n)


@pytest.fixture()
def lossless_store():
    store = TimeSeriesStore()
    store.create_series("power", codec="raw", segment_size=100)
    values = _seasonal(520)
    store.append("power", values)
    return store, values


@pytest.fixture()
def cameo_store():
    store = TimeSeriesStore()
    store.create_series("power", codec="cameo", segment_size=480,
                        codec_options={"max_lag": 48, "epsilon": 0.02})
    values = _seasonal(960)
    store.append("power", values)
    store.flush("power")
    return store, values


class TestBasicLookups:
    def test_point_and_range(self, lossless_store):
        store, values = lossless_store
        engine = QueryEngine(store)
        assert engine.point("power", 123) == pytest.approx(values[123])
        np.testing.assert_array_equal(engine.range("power", 50, 150), values[50:150])

    def test_latest(self, lossless_store):
        store, values = lossless_store
        engine = QueryEngine(store)
        np.testing.assert_array_equal(engine.latest("power", 30), values[-30:])

    def test_latest_longer_than_series(self, lossless_store):
        store, values = lossless_store
        engine = QueryEngine(store)
        assert engine.latest("power", 10_000).size == values.size

    def test_requires_store(self):
        with pytest.raises(InvalidParameterError):
            QueryEngine(store=object())  # type: ignore[arg-type]


class TestAggregatePushdown:
    def test_full_range_mean_matches_numpy(self, lossless_store):
        store, values = lossless_store
        result = QueryEngine(store).aggregate("power", "mean")
        assert result.value == pytest.approx(np.mean(values))
        assert result.rows == values.size

    @pytest.mark.parametrize("agg,np_fn", [
        ("sum", np.sum), ("min", np.min), ("max", np.max), ("mean", np.mean),
    ])
    def test_partial_range_aggregates(self, lossless_store, agg, np_fn):
        store, values = lossless_store
        result = QueryEngine(store).aggregate("power", agg, start=130, stop=430)
        assert result.value == pytest.approx(np_fn(values[130:430]))

    def test_count_aggregate(self, lossless_store):
        store, _ = lossless_store
        result = QueryEngine(store).aggregate("power", "count", start=10, stop=60)
        assert result.value == 50

    def test_pushdown_skips_fully_covered_segments(self, lossless_store):
        store, _ = lossless_store
        # Range [100, 400) fully covers segments [100,200), [200,300), [300,400)
        # and touches no partial segment.
        result = QueryEngine(store).aggregate("power", "sum", start=100, stop=400)
        assert result.segments_decoded == 0
        assert result.pushdown_fraction == pytest.approx(1.0)

    def test_partial_coverage_decodes_boundary_segments_only(self, lossless_store):
        store, _ = lossless_store
        result = QueryEngine(store).aggregate("power", "sum", start=150, stop=350)
        assert result.segments_decoded == 2     # the two half-covered ones
        assert result.segments_pruned >= 1      # segments after 400 skipped

    def test_buffer_included_in_aggregate(self, lossless_store):
        store, values = lossless_store
        # 520 points with segment_size 100 leaves 20 buffered values.
        result = QueryEngine(store).aggregate("power", "sum", start=480, stop=520)
        assert result.value == pytest.approx(np.sum(values[480:520]))

    def test_unknown_aggregate_rejected(self, lossless_store):
        store, _ = lossless_store
        with pytest.raises(InvalidParameterError):
            QueryEngine(store).aggregate("power", "median")

    def test_empty_range_rejected(self, lossless_store):
        store, _ = lossless_store
        with pytest.raises(StorageError):
            QueryEngine(store).aggregate("power", "mean", start=100, stop=100)

    def test_cameo_aggregate_close_to_truth(self, cameo_store):
        store, values = cameo_store
        result = QueryEngine(store).aggregate("power", "mean")
        assert result.value == pytest.approx(np.mean(values), rel=0.02)


class TestStatisticalQueries:
    def test_windowed_aggregate(self, lossless_store):
        store, values = lossless_store
        windows = QueryEngine(store).windowed_aggregate("power", window=50, agg="mean")
        expected = values[:500].reshape(-1, 50).mean(axis=1)
        np.testing.assert_allclose(windows[:10], expected)

    def test_windowed_aggregate_window_too_large(self, lossless_store):
        store, _ = lossless_store
        with pytest.raises(StorageError):
            QueryEngine(store).windowed_aggregate("power", window=10_000)

    def test_acf_query_on_lossless_store_is_exact(self, lossless_store):
        store, values = lossless_store
        result = QueryEngine(store).acf("power", max_lag=48)
        np.testing.assert_allclose(result, acf(values, 48))

    def test_acf_query_on_cameo_store_within_bound(self, cameo_store):
        store, values = cameo_store
        result = QueryEngine(store).acf("power", max_lag=48)
        # Each sealed segment honours epsilon=0.02; the ACF of the whole
        # reconstruction stays close to the original (small slack for
        # cross-segment effects).
        deviation = float(np.mean(np.abs(result - acf(values, 48))))
        assert deviation <= 0.05

    def test_acf_query_with_aggregation(self, lossless_store):
        store, values = lossless_store
        result = QueryEngine(store).acf("power", max_lag=8, agg_window=10, agg="mean")
        aggregated = values[:520 - 520 % 10].reshape(-1, 10).mean(axis=1)
        np.testing.assert_allclose(result, acf(aggregated, 8))

    def test_acf_query_too_short(self, lossless_store):
        store, _ = lossless_store
        with pytest.raises(StorageError):
            QueryEngine(store).acf("power", max_lag=4, start=0, stop=2)

    def test_seasonal_profile(self, lossless_store):
        store, values = lossless_store
        profile = QueryEngine(store).seasonal_profile("power", period=48)
        usable = values[: values.size - values.size % 48]
        np.testing.assert_allclose(profile, usable.reshape(-1, 48).mean(axis=0))
        # The seasonal shape of the synthetic signal is a sine: max near 1/4 period.
        assert 6 <= int(np.argmax(profile)) <= 18

    def test_seasonal_profile_period_too_large(self, lossless_store):
        store, _ = lossless_store
        with pytest.raises(StorageError):
            QueryEngine(store).seasonal_profile("power", period=10_000)


class TestEndToEndStorageScenario:
    def test_ingest_query_compact_cycle(self):
        """Integration: ingest with CAMEO, query, compact to a baseline codec."""
        store = TimeSeriesStore()
        store.create_series("sensor", codec="cameo", segment_size=512,
                            codec_options={"max_lag": 24, "epsilon": 0.05})
        values = _seasonal(2_048, period=24)
        store.append("sensor", values)
        store.flush("sensor")

        engine = QueryEngine(store)
        cameo_info = store.info("sensor")
        assert cameo_info.compression_ratio > 1.5

        mean_before = engine.aggregate("sensor", "mean").value
        acf_before = engine.acf("sensor", max_lag=24)

        gorilla_info = store.compact("sensor", codec="gorilla")
        assert gorilla_info.points == values.size
        mean_after = QueryEngine(store).aggregate("sensor", "mean").value
        acf_after = QueryEngine(store).acf("sensor", max_lag=24)

        # Compaction re-encodes the reconstruction losslessly: analytics are unchanged.
        assert mean_after == pytest.approx(mean_before)
        np.testing.assert_allclose(acf_after, acf_before)
