"""Tests for the segment store (repro.storage.store / repro.storage.segment)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError, SeriesNotFoundError, StorageError
from repro.storage import (
    RawCodec,
    Segment,
    SegmentSummary,
    SeriesInfo,
    TimeSeriesStore,
)

RNG = np.random.default_rng(3)


def _seasonal(n: int, period: int = 48) -> np.ndarray:
    t = np.arange(n)
    return 20 + 5 * np.sin(2 * np.pi * t / period) + 0.3 * RNG.standard_normal(n)


class TestSegment:
    def _segment(self, n=128, start=0):
        codec = RawCodec()
        values = _seasonal(n)
        return Segment(start, codec.encode(values), codec), values

    def test_geometry(self):
        segment, _ = self._segment(100, start=50)
        assert segment.length == 100
        assert segment.end == 150
        assert segment.contains(50) and segment.contains(149)
        assert not segment.contains(150)
        assert segment.overlaps(140, 200) and not segment.overlaps(150, 200)
        assert segment.covered_by(0, 150) and not segment.covered_by(60, 150)

    def test_decode_and_slice(self):
        segment, values = self._segment(100, start=10)
        np.testing.assert_array_equal(segment.decode(), values)
        np.testing.assert_array_equal(segment.slice(20, 30), values[10:20])
        assert segment.slice(200, 300).size == 0
        assert segment.value_at(10) == pytest.approx(values[0])

    def test_value_at_outside_raises(self):
        segment, _ = self._segment(10, start=0)
        with pytest.raises(StorageError):
            segment.value_at(10)

    def test_summary_matches_reconstruction(self):
        segment, values = self._segment(64)
        assert segment.summary.count == 64
        assert segment.summary.minimum == pytest.approx(np.min(values))
        assert segment.summary.maximum == pytest.approx(np.max(values))
        assert segment.summary.total == pytest.approx(np.sum(values))
        assert segment.summary.mean == pytest.approx(np.mean(values))

    def test_invalid_segments_rejected(self):
        codec = RawCodec()
        chunk = codec.encode(_seasonal(8))
        with pytest.raises(StorageError):
            Segment(-1, chunk, codec)
        with pytest.raises(StorageError):
            SegmentSummary.from_values(np.empty(0))


class TestStoreIngest:
    def test_create_and_list(self):
        store = TimeSeriesStore()
        store.create_series("a", codec="raw")
        store.create_series("b", codec="gorilla")
        assert store.list_series() == ["a", "b"]
        assert "a" in store and len(store) == 2

    def test_duplicate_series_rejected(self):
        store = TimeSeriesStore()
        store.create_series("a", codec="raw")
        with pytest.raises(StorageError):
            store.create_series("a", codec="raw")

    def test_unknown_series_raises(self):
        store = TimeSeriesStore()
        with pytest.raises(SeriesNotFoundError):
            store.append("missing", [1.0])

    def test_empty_name_rejected(self):
        store = TimeSeriesStore()
        with pytest.raises(InvalidParameterError):
            store.create_series("   ", codec="raw")

    def test_append_seals_full_segments(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=100)
        sealed = store.append("s", _seasonal(250))
        assert sealed == 2
        assert store.length("s") == 250
        assert len(store.segments("s")) == 2
        info = store.info("s")
        assert info.buffered_points == 50 and info.sealed_points == 200

    def test_scalar_append(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=4)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0):
            store.append("s", value)
        assert store.length("s") == 5
        assert len(store.segments("s")) == 1

    def test_flush_seals_partial_buffer(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=100)
        store.append("s", _seasonal(130))
        assert store.flush("s") == 1
        assert store.info("s").buffered_points == 0
        assert store.flush("s") == 0   # nothing left to flush

    def test_flush_all_series(self):
        store = TimeSeriesStore()
        for name in ("a", "b"):
            store.create_series(name, codec="raw", segment_size=64)
            store.append(name, _seasonal(10))
        assert store.flush() == 2

    def test_codec_instance_accepted(self):
        store = TimeSeriesStore()
        store.create_series("s", codec=RawCodec(), segment_size=16)
        store.append("s", _seasonal(16))
        assert store.info("s").codec == "raw"

    def test_codec_options_with_instance_rejected(self):
        store = TimeSeriesStore()
        with pytest.raises(InvalidParameterError):
            store.create_series("s", codec=RawCodec(), codec_options={"x": 1})

    def test_drop_series(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw")
        store.drop_series("s")
        assert "s" not in store


class TestStoreReads:
    def _loaded_store(self, codec="raw", n=500, segment_size=128, **codec_options):
        store = TimeSeriesStore()
        store.create_series("s", codec=codec, segment_size=segment_size,
                            codec_options=codec_options or None)
        values = _seasonal(n)
        store.append("s", values)
        return store, values

    def test_read_everything_lossless(self):
        store, values = self._loaded_store()
        np.testing.assert_array_equal(store.read("s"), values)

    def test_read_subrange_spanning_segments_and_buffer(self):
        store, values = self._loaded_store(n=500, segment_size=128)
        np.testing.assert_array_equal(store.read("s", 100, 450), values[100:450])

    def test_read_empty_range(self):
        store, _ = self._loaded_store()
        assert store.read("s", 300, 100).size == 0

    def test_read_clamps_stop(self):
        store, values = self._loaded_store(n=200)
        np.testing.assert_array_equal(store.read("s", 150, 10_000), values[150:])

    def test_negative_range_rejected(self):
        store, _ = self._loaded_store()
        with pytest.raises(StorageError):
            store.read("s", -1, 10)

    def test_value_at_matches_read(self):
        store, values = self._loaded_store(n=300, segment_size=64)
        for position in (0, 63, 64, 255, 299):
            assert store.value_at("s", position) == pytest.approx(values[position])

    def test_value_at_out_of_range(self):
        store, _ = self._loaded_store(n=10)
        with pytest.raises(StorageError):
            store.value_at("s", 10)

    def test_lossy_cameo_read_is_close_and_smaller(self):
        store, values = self._loaded_store(codec="cameo", n=1024, segment_size=512,
                                           max_lag=24, epsilon=0.05)
        store.flush("s")
        reconstruction = store.read("s")
        assert reconstruction.shape == values.shape
        nrmse = np.sqrt(np.mean((reconstruction - values) ** 2)) / np.ptp(values)
        assert nrmse < 0.2
        info = store.info("s")
        assert info.compression_ratio > 1.0
        assert info.bits_per_value < 64

    @given(st.integers(min_value=1, max_value=400), st.integers(min_value=16, max_value=128))
    @settings(max_examples=20, deadline=None)
    def test_read_roundtrip_property(self, n, segment_size):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=segment_size)
        values = RNG.standard_normal(n)
        store.append("s", values)
        np.testing.assert_array_equal(store.read("s"), values)


class TestInfoAndCompaction:
    def test_info_accounting(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=100, metadata={"unit": "kW"})
        store.append("s", _seasonal(150))
        info = store.info("s")
        assert isinstance(info, SeriesInfo)
        assert info.points == 150
        assert info.raw_bits == 150 * 64
        assert info.encoded_bits == 150 * 64   # raw codec + raw buffer
        assert info.compression_ratio == pytest.approx(1.0)
        assert info.metadata == {"unit": "kW"}

    def test_compact_to_lossless_codec_preserves_values(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=64)
        values = _seasonal(300)
        store.append("s", values)
        info = store.compact("s", codec="gorilla", segment_size=128)
        assert info.codec == "gorilla"
        assert info.buffered_points == 0
        np.testing.assert_array_equal(store.read("s"), values)

    def test_compact_with_cameo_reduces_footprint(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=256)
        values = _seasonal(1024)
        store.append("s", values)
        before = store.info("s").encoded_bits
        info = store.compact("s", codec="cameo",
                             codec_options={"max_lag": 24, "epsilon": 0.05})
        assert info.encoded_bits < before
        assert store.length("s") == 1024

    def test_compact_same_codec_merges_buffer(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw", segment_size=64)
        store.append("s", _seasonal(100))
        info = store.compact("s")
        assert info.buffered_points == 0
        assert info.points == 100

    def test_compact_options_without_codec_rejected(self):
        store = TimeSeriesStore()
        store.create_series("s", codec="raw")
        store.append("s", _seasonal(10))
        with pytest.raises(InvalidParameterError):
            store.compact("s", codec_options={"epsilon": 0.1})

    def test_total_bits_sums_series(self):
        store = TimeSeriesStore()
        for name in ("a", "b"):
            store.create_series(name, codec="raw", segment_size=32)
            store.append(name, _seasonal(32))
        assert store.total_bits() == 2 * 32 * 64

    def test_invalid_segment_size_rejected(self):
        store = TimeSeriesStore()
        with pytest.raises(InvalidParameterError):
            store.create_series("s", codec="raw", segment_size=0)
        with pytest.raises(InvalidParameterError):
            TimeSeriesStore(default_segment_size=-5)
