"""Tests for storing and reloading a TimeSeriesStore (repro.storage.persistence)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.storage import QueryEngine, TimeSeriesStore, load_store, save_store
from repro.storage.persistence import MANIFEST_NAME

RNG = np.random.default_rng(29)


def _seasonal(n: int, period: int = 24) -> np.ndarray:
    t = np.arange(n)
    return 30 + 6 * np.sin(2 * np.pi * t / period) + 0.3 * RNG.standard_normal(n)


def _populated_store() -> tuple[TimeSeriesStore, dict[str, np.ndarray]]:
    store = TimeSeriesStore(default_segment_size=256)
    data = {
        "raw-series": _seasonal(500),
        "gorilla-series": _seasonal(700),
        "cameo-series": _seasonal(900),
    }
    store.create_series("raw-series", codec="raw", metadata={"unit": "C"})
    store.create_series("gorilla-series", codec="gorilla")
    store.create_series("cameo-series", codec="cameo",
                        codec_options={"max_lag": 24, "epsilon": 0.05})
    for name, values in data.items():
        store.append(name, values)
    store.flush("cameo-series")   # leave raw/gorilla with a buffered tail
    return store, data


class TestSaveLoadRoundtrip:
    def test_manifest_written(self, tmp_path):
        store, _ = _populated_store()
        path = save_store(store, tmp_path / "db")
        assert path.name == MANIFEST_NAME
        manifest = json.loads(path.read_text())
        assert manifest["format"] == "repro.timeseries-store"
        assert set(manifest["series"]) == set(store.list_series())

    def test_roundtrip_preserves_reconstructions(self, tmp_path):
        store, data = _populated_store()
        save_store(store, tmp_path / "db")
        reloaded = load_store(tmp_path / "db")
        assert reloaded.list_series() == store.list_series()
        for name in store.list_series():
            np.testing.assert_allclose(reloaded.read(name), store.read(name))
            assert reloaded.length(name) == store.length(name)

    def test_roundtrip_preserves_footprint_and_metadata(self, tmp_path):
        store, _ = _populated_store()
        save_store(store, tmp_path / "db")
        reloaded = load_store(tmp_path / "db")
        for name in store.list_series():
            before, after = store.info(name), reloaded.info(name)
            assert after.encoded_bits == before.encoded_bits
            assert after.segments == before.segments
            assert after.buffered_points == before.buffered_points
            assert after.codec == before.codec
            assert after.metadata == before.metadata

    def test_reloaded_store_accepts_new_appends(self, tmp_path):
        store, data = _populated_store()
        save_store(store, tmp_path / "db")
        reloaded = load_store(tmp_path / "db")
        extra = _seasonal(300)
        reloaded.append("cameo-series", extra)
        reloaded.flush("cameo-series")
        assert reloaded.length("cameo-series") == data["cameo-series"].size + 300
        # The bound still applies to newly sealed segments: the reconstruction
        # of the appended range stays close to the appended values.
        tail = reloaded.read("cameo-series", data["cameo-series"].size)
        nrmse = np.sqrt(np.mean((tail - extra) ** 2)) / np.ptp(extra)
        assert nrmse < 0.2

    def test_queries_work_on_reloaded_store(self, tmp_path):
        store, data = _populated_store()
        save_store(store, tmp_path / "db")
        engine = QueryEngine(load_store(tmp_path / "db"))
        result = engine.aggregate("raw-series", "mean")
        assert result.value == pytest.approx(np.mean(data["raw-series"]))
        # Summaries were persisted, so fully covered segments need no decoding.
        covered = engine.aggregate("raw-series", "sum", start=0, stop=256)
        assert covered.segments_decoded == 0

    def test_load_accepts_manifest_path_directly(self, tmp_path):
        store, _ = _populated_store()
        manifest_path = save_store(store, tmp_path / "db")
        reloaded = load_store(manifest_path)
        assert reloaded.list_series() == store.list_series()


class TestPersistenceErrors:
    def test_model_codec_store_cannot_be_saved(self, tmp_path):
        store = TimeSeriesStore(default_segment_size=128)
        store.create_series("s", codec="pmc", codec_options={"error_bound": 0.5})
        store.append("s", _seasonal(200))
        with pytest.raises(StorageError, match="compact"):
            save_store(store, tmp_path / "db")

    def test_model_codec_store_can_be_saved_after_compaction(self, tmp_path):
        store = TimeSeriesStore(default_segment_size=128)
        store.create_series("s", codec="pmc", codec_options={"error_bound": 0.5})
        values = _seasonal(200)
        store.append("s", values)
        store.compact("s", codec="gorilla")
        save_store(store, tmp_path / "db")
        reloaded = load_store(tmp_path / "db")
        np.testing.assert_allclose(reloaded.read("s"), store.read("s"))

    def test_load_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            load_store(tmp_path / "nothing-here")

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / MANIFEST_NAME
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(StorageError):
            load_store(tmp_path)

    def test_load_rejects_newer_version(self, tmp_path):
        store, _ = _populated_store()
        manifest_path = save_store(store, tmp_path / "db")
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(StorageError):
            load_store(tmp_path / "db")

    def test_save_requires_store(self, tmp_path):
        with pytest.raises(StorageError):
            save_store(object(), tmp_path)  # type: ignore[arg-type]


class TestAtomicSave:
    def test_no_tmp_file_left_behind(self, tmp_path):
        store, _ = _populated_store()
        save_store(store, tmp_path / "db")
        assert not list((tmp_path / "db").glob("*.tmp"))

    def test_resave_replaces_manifest_atomically(self, tmp_path):
        store, _ = _populated_store()
        first = save_store(store, tmp_path / "db").read_text()
        store.append("raw-series", [1.0, 2.0])
        second = save_store(store, tmp_path / "db").read_text()
        assert first != second
        load_store(tmp_path / "db")  # still a valid manifest

    def test_load_truncated_manifest_raises_clearly(self, tmp_path):
        store, _ = _populated_store()
        path = save_store(store, tmp_path / "db")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(StorageError, match="truncated or not valid JSON"):
            load_store(tmp_path / "db")


class TestManifestValidation:
    def _manifest(self, tmp_path):
        store, _ = _populated_store()
        path = save_store(store, tmp_path / "db")
        return path, json.loads(path.read_text())

    def test_non_contiguous_segment_starts_rejected(self, tmp_path):
        path, manifest = self._manifest(tmp_path)
        manifest["series"]["cameo-series"]["segments"][1]["start"] = 999
        path.write_text(json.dumps(manifest, default=float))
        with pytest.raises(StorageError, match="cameo-series.*segment 1.*999"):
            load_store(tmp_path / "db")

    def test_reordered_segments_rejected(self, tmp_path):
        path, manifest = self._manifest(tmp_path)
        segments = manifest["series"]["cameo-series"]["segments"]
        segments.reverse()
        path.write_text(json.dumps(manifest, default=float))
        with pytest.raises(StorageError, match="contiguous"):
            load_store(tmp_path / "db")

    def test_summary_count_disagreement_rejected(self, tmp_path):
        path, manifest = self._manifest(tmp_path)
        manifest["series"]["cameo-series"]["segments"][0]["summary"]["count"] = 7
        path.write_text(json.dumps(manifest, default=float))
        with pytest.raises(StorageError, match="disagrees with its summary"):
            load_store(tmp_path / "db")

    def test_overlong_buffer_rejected(self, tmp_path):
        path, manifest = self._manifest(tmp_path)
        entry = manifest["series"]["raw-series"]
        entry["buffer"] = [0.0] * (entry["segment_size"] + 1)
        path.write_text(json.dumps(manifest, default=float))
        with pytest.raises(StorageError, match="raw-series.*buffered tail"):
            load_store(tmp_path / "db")

    def test_malformed_series_entry_names_the_series(self, tmp_path):
        path, manifest = self._manifest(tmp_path)
        del manifest["series"]["gorilla-series"]["codec"]
        path.write_text(json.dumps(manifest, default=float))
        with pytest.raises(StorageError, match="gorilla-series"):
            load_store(tmp_path / "db")

    def test_series_catalog_must_be_object(self, tmp_path):
        path, manifest = self._manifest(tmp_path)
        manifest["series"] = ["not", "a", "mapping"]
        path.write_text(json.dumps(manifest, default=float))
        with pytest.raises(StorageError, match="not an object"):
            load_store(tmp_path / "db")
