"""Seeded storage fault soaks (opt-in: ``-m stress`` / REPRO_RUN_STRESS=1).

Each soak derives a storage fault plan from its seed
(:func:`repro.faultinject.random_storage_plan` — crashes, torn writes,
bit flips, and raises at random syncpoints) and runs a randomized
ingest workload under it.  Whatever the plan does, three invariants must
hold:

* recovery terminates and the store reopens (or, when the store's very
  creation was interrupted, fails with a clean :class:`StorageError`);
* every readable series is a bit-exact prefix of its ingested sequence —
  corruption is surfaced as quarantine holes or truncated WAL tails,
  never as silently wrong values;
* a follow-up scan of the repaired store reports clean (fsck converges).

A failing seed replays exactly: the plan is a pure function of the seed.
"""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.faultinject import (
    InjectedCrash,
    InjectedFault,
    active_plan,
    random_storage_plan,
)
from repro.storage import DurableStore, fsck

STRESS_SEEDS = tuple(range(16))


def _workload(directory, seed):
    """Randomized ingest; returns per-series ingested values (acked only)."""
    rng = np.random.default_rng(seed)
    ingested: dict[str, list[float]] = {}
    store = DurableStore.create(directory, default_segment_size=8,
                                shards=int(rng.integers(1, 5)))
    for i in range(int(rng.integers(2, 5))):
        store.create_series(f"s{i}", codec="raw")
        ingested[f"s{i}"] = []
    names = sorted(ingested)
    for _ in range(int(rng.integers(10, 30))):
        name = names[int(rng.integers(len(names)))]
        values = np.round(rng.normal(size=int(rng.integers(1, 7))), 3)
        store.append(name, values)
        ingested[name].extend(values)
    store.flush()
    store.close()
    return ingested


@pytest.mark.stress
@pytest.mark.parametrize("seed", STRESS_SEEDS, ids=lambda s: f"seed{s}")
def test_storage_fault_soak(seed, tmp_path):
    directory = tmp_path / "store"
    ingested: dict[str, list[float]] = {}
    with active_plan(random_storage_plan(seed)):
        try:
            ingested = _workload(directory, seed)
        except (InjectedCrash, InjectedFault):
            pass  # the workload died mid-flight; recovery takes over

    try:
        store = DurableStore.open(directory)
    except StorageError:
        # Only legal when the store never finished being created.
        assert not (directory / "manifest.json").exists()
        return

    report = store.recovery
    for name in store.list_series():
        expected = np.asarray(ingested.get(name, []))
        try:
            got = store.read(name)
        except StorageError:
            # Unreadable ranges must be *declared* corruption.
            assert store.holes(name), f"{name}: read failed without a hole"
            continue
        prefix = expected[: got.size] if expected.size else got
        assert got.size <= max(expected.size, store.length(name))
        if expected.size:
            assert np.array_equal(got, prefix), (
                f"seed {seed}: recovered {name} is not a prefix of the "
                "ingested sequence")
    assert report.truncated_wal_bytes >= 0
    store.close()

    # The repaired store converges to clean.
    assert fsck(directory).clean, f"seed {seed}: fsck did not converge"


@pytest.mark.stress
@pytest.mark.parametrize("seed", STRESS_SEEDS[:8], ids=lambda s: f"seed{s}")
def test_storage_soak_with_relaxed_fsync(seed, tmp_path):
    """The interval policy must also recover (weaker durability, same safety)."""
    directory = tmp_path / "store"
    rng = np.random.default_rng(seed)
    values = np.round(rng.normal(size=60), 3)
    with active_plan(random_storage_plan(seed + 1000)):
        try:
            store = DurableStore.create(directory, fsync_policy="interval",
                                        fsync_interval=4,
                                        default_segment_size=16)
            store.create_series("x", codec="gorilla")
            for chunk in np.split(values, 12):
                store.append("x", chunk)
            store.close()
        except (InjectedCrash, InjectedFault):
            pass

    try:
        store = DurableStore.open(directory)
    except StorageError:
        assert not (directory / "manifest.json").exists()
        return
    try:
        got = store.read("x") if "x" in store else np.empty(0)
    except StorageError:
        assert store.holes("x")
        got = None
    if got is not None and got.size:
        assert np.array_equal(got, values[: got.size])
    store.close()
    assert fsck(directory).clean
