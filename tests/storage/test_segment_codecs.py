"""Tests for the storage segment codecs (repro.storage.codecs)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InvalidParameterError, StorageError
from repro.stats import acf
from repro.storage import (
    CameoSegmentCodec,
    ChimpSegmentCodec,
    EncodedChunk,
    FftSegmentCodec,
    GorillaSegmentCodec,
    PmcSegmentCodec,
    RawCodec,
    SegmentCodec,
    SimPieceSegmentCodec,
    SimplifierSegmentCodec,
    SwingSegmentCodec,
    available_codecs,
    make_codec,
    register_codec,
)

RNG = np.random.default_rng(11)


def _seasonal(n: int = 512, period: int = 32) -> np.ndarray:
    t = np.arange(n)
    return 10 + 3 * np.sin(2 * np.pi * t / period) + 0.2 * RNG.standard_normal(n)


ALL_CODEC_FACTORIES = [
    ("raw", RawCodec),
    ("gorilla", GorillaSegmentCodec),
    ("chimp", ChimpSegmentCodec),
    ("cameo", lambda: CameoSegmentCodec(max_lag=16, epsilon=0.02)),
    ("vw", lambda: SimplifierSegmentCodec("VW", max_lag=16, epsilon=0.02)),
    ("pmc", lambda: PmcSegmentCodec(error_bound=0.5)),
    ("swing", lambda: SwingSegmentCodec(error_bound=0.5)),
    ("simpiece", lambda: SimPieceSegmentCodec(error_bound=0.5)),
    ("fft", lambda: FftSegmentCodec(keep_fraction=0.2)),
]


class TestRoundTrips:
    @pytest.mark.parametrize("name,factory", ALL_CODEC_FACTORIES,
                             ids=[n for n, _ in ALL_CODEC_FACTORIES])
    def test_roundtrip_shape_and_accounting(self, name, factory):
        codec = factory()
        values = _seasonal()
        chunk = codec.encode(values)
        decoded = codec.decode(chunk)
        assert isinstance(chunk, EncodedChunk)
        assert chunk.codec == codec.name
        assert chunk.length == values.size
        assert decoded.shape == values.shape
        assert np.all(np.isfinite(decoded))
        assert chunk.bits > 0
        assert chunk.bits_per_value() == pytest.approx(chunk.bits / values.size)

    @pytest.mark.parametrize("factory", [RawCodec, GorillaSegmentCodec, ChimpSegmentCodec],
                             ids=["raw", "gorilla", "chimp"])
    def test_lossless_codecs_are_exact(self, factory):
        codec = factory()
        values = _seasonal()
        decoded = codec.decode(codec.encode(values))
        np.testing.assert_array_equal(decoded, values)
        assert codec.lossless

    def test_cameo_codec_honours_acf_bound(self):
        values = _seasonal()
        codec = CameoSegmentCodec(max_lag=16, epsilon=0.02)
        chunk = codec.encode(values)
        decoded = codec.decode(chunk)
        deviation = float(np.mean(np.abs(acf(values, 16) - acf(decoded, 16))))
        assert deviation <= 0.02 + 1e-9
        assert chunk.bits < values.size * 64   # actually compressed
        assert chunk.metadata["kept_points"] < values.size

    def test_simplifier_codec_honours_acf_bound(self):
        values = _seasonal()
        codec = SimplifierSegmentCodec("VW", max_lag=16, epsilon=0.02)
        decoded = codec.decode(codec.encode(values))
        deviation = float(np.mean(np.abs(acf(values, 16) - acf(decoded, 16))))
        assert deviation <= 0.02 + 1e-9

    def test_pmc_codec_honours_value_bound(self):
        values = _seasonal()
        codec = PmcSegmentCodec(error_bound=0.5)
        decoded = codec.decode(codec.encode(values))
        assert float(np.max(np.abs(decoded - values))) <= 0.5 + 1e-9

    def test_short_segments_are_stored_verbatim(self):
        values = np.asarray([1.0, 2.0, 3.0])
        for codec in (CameoSegmentCodec(max_lag=8, epsilon=0.01),
                      SimplifierSegmentCodec("VW", max_lag=8, epsilon=0.01)):
            chunk = codec.encode(values)
            assert chunk.metadata.get("short_segment") is True
            np.testing.assert_array_equal(codec.decode(chunk), values)

    @given(arrays(np.float64, st.integers(min_value=1, max_value=300),
                  elements=st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False, allow_infinity=False)))
    @settings(max_examples=25, deadline=None)
    def test_lossless_roundtrip_property(self, values):
        for codec in (GorillaSegmentCodec(), ChimpSegmentCodec(), RawCodec()):
            np.testing.assert_array_equal(codec.decode(codec.encode(values)), values)


class TestChunkValidation:
    def test_decode_rejects_foreign_chunk(self):
        raw_chunk = RawCodec().encode(_seasonal(64))
        with pytest.raises(StorageError):
            GorillaSegmentCodec().decode(raw_chunk)

    def test_compression_ratio_of_chunk(self):
        chunk = RawCodec().encode(_seasonal(64))
        assert chunk.compression_ratio() == pytest.approx(1.0)


class TestRegistry:
    def test_builtin_codecs_available(self):
        names = available_codecs()
        for expected in ("raw", "gorilla", "chimp", "cameo", "vw", "pmc",
                         "swing", "simpiece", "fft"):
            assert expected in names

    def test_make_codec_forwards_options(self):
        codec = make_codec("cameo", max_lag=8, epsilon=0.005)
        assert isinstance(codec, CameoSegmentCodec)
        assert codec.max_lag == 8 and codec.epsilon == 0.005

    def test_make_codec_case_insensitive(self):
        assert isinstance(make_codec("GORILLA"), GorillaSegmentCodec)

    def test_make_codec_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_codec("zstd")

    def test_register_custom_codec(self):
        class NegatingCodec(RawCodec):
            name = "negate"

            def encode(self, values):
                chunk = super().encode(-np.asarray(values, dtype=np.float64))
                chunk.codec = self.name
                return chunk

            def decode(self, chunk):
                self._check_chunk(chunk)
                return -np.asarray(chunk.payload, dtype=np.float64)

        register_codec("negate", NegatingCodec)
        try:
            codec = make_codec("negate")
            values = _seasonal(32)
            np.testing.assert_allclose(codec.decode(codec.encode(values)), values)
        finally:
            from repro.storage.codecs import _CODEC_REGISTRY
            _CODEC_REGISTRY.pop("negate", None)

    def test_register_non_callable_rejected(self):
        with pytest.raises(InvalidParameterError):
            register_codec("broken", 42)  # type: ignore[arg-type]

    def test_simplifier_registry_names_bind_correct_method(self):
        vw = make_codec("vw", max_lag=8, epsilon=0.05)
        pipv = make_codec("pipv", max_lag=8, epsilon=0.05)
        assert isinstance(vw, SimplifierSegmentCodec) and vw.method == "VW"
        assert isinstance(pipv, SimplifierSegmentCodec) and pipv.method == "PIPv"

    def test_all_registered_codecs_construct_and_roundtrip(self):
        values = _seasonal(256)
        for name in available_codecs():
            codec = make_codec(name)
            assert isinstance(codec, SegmentCodec)
            decoded = codec.decode(codec.encode(values))
            assert decoded.shape == values.shape
