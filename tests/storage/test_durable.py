"""DurableStore: round trips, recovery, quarantine, migration, spool."""

import json

import numpy as np
import pytest

from repro.exceptions import SeriesNotFoundError, StorageError
from repro.faultinject import inject_bit_flip, inject_torn_write
from repro.storage import (
    DurableStore,
    TimeSeriesStore,
    fsck,
    load_store,
    recover,
    save_store,
)
from repro.storage.durable import attach_footer, split_footer


@pytest.fixture()
def root(tmp_path):
    return tmp_path / "store"


def _values(n, seed=0):
    return np.round(np.random.default_rng(seed).normal(size=n), 3)


class TestFooter:
    def test_roundtrip(self):
        payload = b'{"k": 1}'
        verified, reason, _ = split_footer(attach_footer(payload))
        assert verified == payload and reason == ""

    def test_missing_footer(self):
        payload, reason, _ = split_footer(b"just bytes")
        assert payload is None and reason == "truncated-footer"

    def test_corrupt_payload(self):
        data = bytearray(attach_footer(b'{"k": 1}'))
        data[2] ^= 0x01
        payload, reason, _ = split_footer(bytes(data))
        assert payload is None and reason == "checksum-mismatch"


class TestRoundTrip:
    def test_create_append_read(self, root):
        with DurableStore.create(root, default_segment_size=32) as store:
            store.create_series("a", codec="raw")
            values = _values(100)
            store.append("a", values)
            assert np.array_equal(store.read("a"), values)

    def test_reopen_reads_identical(self, root):
        values = _values(100)
        with DurableStore.create(root, default_segment_size=32) as store:
            store.create_series("a", codec="raw")
            store.append("a", values)
        with DurableStore.open(root) as reopened:
            assert reopened.recovery.clean
            assert np.array_equal(reopened.read("a"), values)

    def test_buffer_tail_survives_reopen(self, root):
        with DurableStore.create(root, default_segment_size=64) as store:
            store.create_series("a", codec="raw")
            store.append("a", [1.0, 2.0, 3.0])  # never sealed
        with DurableStore.open(root) as reopened:
            assert reopened.recovery.replayed_records == 1
            assert np.array_equal(reopened.read("a"),
                                  np.asarray([1.0, 2.0, 3.0]))

    def test_lossy_codec_roundtrips_its_reconstruction(self, root):
        values = np.sin(np.arange(200) / 5.0)
        with DurableStore.create(root, default_segment_size=64) as store:
            store.create_series("c", codec="cameo",
                                codec_options={"max_lag": 8, "epsilon": 0.05})
            store.append("c", values)
            store.flush("c")
            expected = store.read("c")
        with DurableStore.open(root) as reopened:
            assert np.array_equal(reopened.read("c"), expected)

    def test_multiple_series_across_shards(self, root):
        data = {f"series-{i}": _values(40, seed=i) for i in range(12)}
        with DurableStore.create(root, default_segment_size=16,
                                 shards=4) as store:
            for name, values in data.items():
                store.create_series(name, codec="raw")
                store.append(name, values)
        with DurableStore.open(root) as reopened:
            for name, values in data.items():
                assert np.array_equal(reopened.read(name), values)

    def test_flush_then_reopen(self, root):
        with DurableStore.create(root, default_segment_size=64) as store:
            store.create_series("a", codec="gorilla")
            store.append("a", _values(30))
            assert store.flush() == 1
        with DurableStore.open(root) as reopened:
            assert reopened.recovery.replayed_records == 0
            assert reopened.length("a") == 30

    def test_scalar_append_and_empty_append(self, root):
        with DurableStore.create(root) as store:
            store.create_series("a", codec="raw")
            store.append("a", 4.5)
            assert store.append("a", []) == 0
            assert store.read("a").tolist() == [4.5]

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no store manifest"):
            DurableStore.open(tmp_path / "absent")

    def test_create_twice_raises(self, root):
        DurableStore.create(root).close()
        with pytest.raises(StorageError, match="already contains"):
            DurableStore.create(root)

    def test_append_unknown_series_raises(self, root):
        with DurableStore.create(root) as store:
            with pytest.raises(SeriesNotFoundError):
                store.append("ghost", [1.0])

    def test_closed_store_rejects_writes(self, root):
        store = DurableStore.create(root)
        store.close()
        with pytest.raises(StorageError, match="closed"):
            store.create_series("a")

    def test_invalid_fsync_policy_rejected(self, root):
        with pytest.raises(StorageError, match="fsync_policy"):
            DurableStore.create(root, fsync_policy="later")

    @pytest.mark.parametrize("policy", ["interval", "never"])
    def test_relaxed_fsync_policies_work(self, root, policy):
        with DurableStore.create(root, fsync_policy=policy,
                                 default_segment_size=8) as store:
            store.create_series("a", codec="raw")
            store.append("a", _values(20))
        with DurableStore.open(root) as reopened:
            assert reopened.length("a") == 20


class TestQuarantine:
    def _seeded(self, root, n=64, segment_size=16):
        values = _values(n)
        store = DurableStore.create(root, default_segment_size=segment_size)
        store.create_series("x", codec="raw")
        store.append("x", values)
        store.close()
        return values

    def _segment_files(self, root):
        return sorted(root.glob("segments/*/*/seg-*.json"))

    def test_bit_flip_is_quarantined(self, root):
        self._seeded(root)
        inject_bit_flip(self._segment_files(root)[1], 200)
        with DurableStore.open(root) as store:
            report = store.recovery
            assert len(report.quarantined) == 1
            entry = report.quarantined[0]
            assert entry.series == "x"
            assert entry.reason == "checksum-mismatch"
            assert (entry.start, entry.length) == (16, 16)
            assert not report.clean

    def test_torn_segment_is_quarantined(self, root):
        self._seeded(root)
        target = self._segment_files(root)[0]
        inject_torn_write(target, target.stat().st_size // 3)
        with DurableStore.open(root) as store:
            assert store.recovery.quarantined[0].reason == "truncated-footer"

    def test_missing_segment_is_quarantined(self, root):
        self._seeded(root)
        self._segment_files(root)[2].unlink()
        with DurableStore.open(root) as store:
            assert store.recovery.quarantined[0].reason == "missing-file"

    def test_read_of_quarantined_range_raises(self, root):
        values = self._seeded(root)
        inject_bit_flip(self._segment_files(root)[1], 99)
        with DurableStore.open(root) as store:
            with pytest.raises(StorageError, match="quarantined"):
                store.read("x")
            with pytest.raises(StorageError, match="quarantined"):
                store.value_at("x", 20)
            # Ranges outside the hole still read, bit-identical.
            assert np.array_equal(store.read("x", 0, 16), values[:16])
            assert np.array_equal(store.read("x", 32, 64), values[32:64])

    def test_quarantine_dir_holds_file_and_reason(self, root):
        self._seeded(root)
        inject_bit_flip(self._segment_files(root)[1], 99)
        with DurableStore.open(root) as store:
            quarantined = store.recovery.quarantined[0]
        names = sorted(p.name for p in (root / "quarantine").iterdir())
        assert len(names) == 2  # the segment + its reason sidecar
        reason_doc = json.loads(
            (root / "quarantine" / names[1]).read_text())
        assert reason_doc["reason"] == "checksum-mismatch"
        assert reason_doc["series"] == "x"
        assert reason_doc["original_path"] == quarantined.file

    def test_second_open_is_clean_with_prior_hole(self, root):
        self._seeded(root)
        inject_bit_flip(self._segment_files(root)[1], 99)
        DurableStore.open(root).close()
        with DurableStore.open(root) as store:
            assert store.recovery.clean
            assert store.recovery.prior_holes == 1
            assert store.holes("x")[0]["start"] == 16

    def test_appends_continue_after_quarantine(self, root):
        self._seeded(root)
        inject_bit_flip(self._segment_files(root)[1], 99)
        with DurableStore.open(root) as store:
            store.append("x", [7.0, 8.0])
            assert store.length("x") == 66
        with DurableStore.open(root) as store:
            assert np.array_equal(store.read("x", 64, 66),
                                  np.asarray([7.0, 8.0]))

    def test_every_bit_flip_position_is_rejected(self, root, tmp_path):
        """Checksum verification rejects 100% of injected bit flips."""
        import shutil

        self._seeded(root, n=16, segment_size=16)
        pristine = tmp_path / "pristine"
        shutil.copytree(root, pristine)
        bits = self._segment_files(root)[0].stat().st_size * 8
        for bit in range(0, bits, 97):
            shutil.rmtree(root)
            shutil.copytree(pristine, root)
            inject_bit_flip(self._segment_files(root)[0], bit)
            report = fsck(root)
            assert len(report.quarantined) == 1, f"bit {bit} not rejected"

    def test_every_torn_write_position_is_rejected(self, root, tmp_path):
        """Checksum verification rejects 100% of injected torn writes."""
        import shutil

        self._seeded(root, n=16, segment_size=16)
        pristine = tmp_path / "pristine"
        shutil.copytree(root, pristine)
        size = self._segment_files(root)[0].stat().st_size
        for keep in range(0, size, 53):
            shutil.rmtree(root)
            shutil.copytree(pristine, root)
            inject_torn_write(self._segment_files(root)[0], keep)
            report = fsck(root)
            assert len(report.quarantined) == 1, f"cut at {keep} not rejected"


class TestManifestFallback:
    def test_torn_manifest_recovers_from_prev(self, root):
        values = _values(20)
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("z", codec="raw")
            store.append("z", values)
        manifest = root / "manifest.json"
        inject_torn_write(manifest, manifest.stat().st_size // 2)
        store, report = recover(root)
        assert report.used_prev_manifest
        assert np.array_equal(store.read("z"), values)
        store.close()
        with DurableStore.open(root) as repaired:
            assert repaired.recovery.clean
            assert np.array_equal(repaired.read("z"), values)

    def test_bit_flipped_manifest_recovers_from_prev(self, root):
        values = _values(20)
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("z", codec="raw")
            store.append("z", values)
        inject_bit_flip(root / "manifest.json", 400)
        report = fsck(root)
        assert report.used_prev_manifest and report.corruption_found
        assert fsck(root).clean

    def test_both_manifests_gone_raises(self, root):
        with DurableStore.create(root) as store:
            store.create_series("z", codec="raw")
        (root / "manifest.json").write_bytes(b"garbage")
        (root / "manifest.json.prev").unlink()
        with pytest.raises(StorageError, match="cannot read store manifest"):
            DurableStore.open(root)

    def test_fallback_replays_newer_wal_generations(self, root):
        # manifest.json.prev lags behind the current WAL generation;
        # appends acknowledged after the fallback manifest was published
        # must still be replayed, not pruned or overwritten.
        head, tail = np.arange(10.0), np.array([100.0, 101.0, 102.0])
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("z", codec="raw")
            store.append("z", head)  # seals a segment -> WAL rotation
            store.append("z", tail)  # lands in the newer generation
        inject_bit_flip(root / "manifest.json", 400)
        store, report = recover(root)
        assert report.used_prev_manifest
        assert report.extra_wal_generations >= 1
        assert "generation(s) newer" in report.summary()
        assert np.array_equal(store.read("z"), np.concatenate([head, tail]))
        store.close()
        with DurableStore.open(root) as repaired:
            assert repaired.recovery.clean
            assert np.array_equal(repaired.read("z"),
                                  np.concatenate([head, tail]))


class TestLocking:
    def test_second_open_raises_while_locked(self, root):
        with DurableStore.create(root) as store:
            store.create_series("a", codec="raw")
            with pytest.raises(StorageError, match="already open"):
                DurableStore.open(root)

    def test_lock_released_on_close(self, root):
        store = DurableStore.create(root)
        store.create_series("a", codec="raw")
        store.append("a", _values(5))
        store.close()
        with DurableStore.open(root) as again:
            assert again.recovery.clean
            assert again.length("a") == 5

    def test_lock_error_names_path_and_holder_pid(self, root):
        import os

        with DurableStore.create(root):
            with pytest.raises(StorageError) as error:
                DurableStore.open(root)
            message = str(error.value)
            # Diagnosable contention: the message must say which lock file
            # is held and by whom, so an operator can find the holder.
            assert str(root / ".lock") in message
            assert f"held by pid {os.getpid()}" in message

    def test_lock_contention_does_not_clobber_holder_pid(self, root):
        import os

        with DurableStore.create(root):
            for _ in range(3):   # repeated losers must not truncate the pid
                with pytest.raises(StorageError, match="already open"):
                    DurableStore.open(root)
            recorded = (root / ".lock").read_text().strip()
            assert recorded == str(os.getpid())

    def test_failed_open_releases_lock(self, root):
        values = _values(5)
        with DurableStore.create(root) as store:
            store.create_series("z", codec="raw")
            store.append("z", values)
        manifest = root / "manifest.json"
        good = manifest.read_bytes()
        manifest.write_bytes(b"garbage")
        (root / "manifest.json.prev").unlink()
        with pytest.raises(StorageError):
            DurableStore.open(root)
        # The failed recovery must not leave the store wedged.
        manifest.write_bytes(good)
        with DurableStore.open(root) as again:
            assert np.array_equal(again.read("z"), values)


class TestV1Migration:
    def _v1_store(self, directory):
        store = TimeSeriesStore(default_segment_size=16)
        store.create_series("g", codec="gorilla")
        store.create_series("r", codec="raw", segment_size=8)
        store.append("g", _values(40, seed=1))
        store.append("r", _values(20, seed=2))
        save_store(store, directory)
        return store

    def test_v1_opens_and_migrates(self, root):
        original = self._v1_store(root)
        with DurableStore.open(root) as migrated:
            assert migrated.recovery.migrated_from_v1
            for name in ("g", "r"):
                assert np.array_equal(migrated.read(name),
                                      original.read(name))
        # The rewrite is the v2 layout now: segment files exist, next
        # open is an ordinary clean recovery.
        assert list(root.glob("segments/*/*/seg-*.json"))
        with DurableStore.open(root) as again:
            assert again.recovery.clean
            assert not again.recovery.migrated_from_v1

    def test_empty_v1_store_migrates(self, root):
        save_store(TimeSeriesStore(), root)
        with DurableStore.open(root) as migrated:
            assert migrated.recovery.migrated_from_v1
            assert migrated.list_series() == []
        with DurableStore.open(root) as again:
            assert again.recovery.clean
            again.create_series("late", codec="raw")
            again.append("late", _values(5))

    def test_load_store_reads_v2_directories(self, root):
        values = _values(30)
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("a", codec="raw")
            store.append("a", values)
        memory = load_store(root)
        assert isinstance(memory, TimeSeriesStore)
        assert np.array_equal(memory.read("a"), values)


class TestFsck:
    def test_clean_report(self, root):
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("a", codec="raw")
            store.append("a", _values(20))
        report = fsck(root)
        assert report.clean
        assert "store is clean" in report.summary()

    def test_corrupt_then_repaired(self, root):
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("a", codec="raw")
            store.append("a", _values(20))
        target = sorted(root.glob("segments/*/*/seg-*.json"))[0]
        inject_bit_flip(target, 50)
        report = fsck(root)
        assert report.corruption_found
        assert "quarantined 1 segment(s)" in report.summary()
        assert fsck(root).clean

    def test_torn_wal_tail_reported(self, root):
        with DurableStore.create(root, default_segment_size=100) as store:
            store.create_series("a", codec="raw")
            store.append("a", _values(10))
        wal = next((root / "wal").glob("*.wal"))
        inject_torn_write(wal, wal.stat().st_size - 5)
        report = fsck(root)
        assert report.truncated_wal_files == 1
        assert report.truncated_wal_bytes > 0
        assert fsck(root).clean


class TestMetadataAndDrop:
    def test_update_metadata_persists_across_reopen(self, root):
        with DurableStore.create(root) as store:
            store.create_series("a", codec="raw", metadata={"unit": "C"})
            store.update_metadata({"a": {"site": "lab", "unit": "K"}})
            assert store.metadata("a") == {"unit": "K", "site": "lab"}
        with DurableStore.open(root) as again:
            assert again.metadata("a") == {"unit": "K", "site": "lab"}

    def test_update_metadata_unknown_series_changes_nothing(self, root):
        with DurableStore.create(root) as store:
            store.create_series("a", codec="raw")
            with pytest.raises(SeriesNotFoundError):
                store.update_metadata({"a": {"k": 1}, "ghost": {"k": 2}})
            assert "k" not in store.metadata("a")

    def test_drop_series_is_durable(self, root):
        with DurableStore.create(root, default_segment_size=8) as store:
            store.create_series("a", codec="raw")
            store.create_series("b", codec="raw")
            store.append("a", _values(20, seed=1))
            store.append("b", _values(20, seed=2))
            store.drop_series("a")
            assert store.list_series() == ["b"]
        with DurableStore.open(root) as again:
            assert again.recovery.clean
            assert again.list_series() == ["b"]
            assert np.array_equal(again.read("b"), _values(20, seed=2))
            with pytest.raises(SeriesNotFoundError):
                again.read("a")


class TestSpool:
    def test_multistream_spool_replay(self, tmp_path):
        from repro.streaming import MultiStreamCompressor

        x = _values(300, seed=3)
        spool = tmp_path / "spool"
        multi = MultiStreamCompressor(chunk_size=128, codec="gorilla",
                                      spool_to=spool)
        multi.add("a", x)
        multi.add("b", x[:50])
        del multi  # ingest tier crashes before drain/flush

        with MultiStreamCompressor(chunk_size=128, codec="gorilla",
                                   spool_to=spool) as fresh:
            assert fresh.replay_spool() == 350
            fresh.flush()
            assert np.array_equal(fresh.reconstruct("a"), x)
            assert np.array_equal(fresh.reconstruct("b"), x[:50])

    def test_replay_requires_fresh_compressor(self, tmp_path):
        from repro.exceptions import InvalidParameterError
        from repro.streaming import MultiStreamCompressor

        with MultiStreamCompressor(chunk_size=8, codec="raw",
                                   spool_to=tmp_path / "s") as multi:
            multi.add("a", [1.0, 2.0])
            with pytest.raises(InvalidParameterError, match="before any"):
                multi.replay_spool()

    def test_no_spool_configured_raises(self):
        from repro.exceptions import InvalidParameterError
        from repro.streaming import MultiStreamCompressor

        multi = MultiStreamCompressor(chunk_size=8, codec="raw")
        with pytest.raises(InvalidParameterError, match="no spool"):
            multi.replay_spool()

    def test_replay_skips_drained_chunks(self, tmp_path):
        from repro.streaming import MultiStreamCompressor

        x = _values(300, seed=4)
        spool = tmp_path / "spool"
        multi = MultiStreamCompressor(chunk_size=128, codec="gorilla",
                                      spool_to=spool)
        multi.add("a", x)                 # seals 2x128, 44 stay buffered
        emitted = multi.drain()           # two chunks leave the compressor
        assert len(emitted) == 2
        del multi                         # crash after the drain

        with MultiStreamCompressor(chunk_size=128, codec="gorilla",
                                   spool_to=spool) as fresh:
            # Only the undrained buffer tail is re-ingested; the two
            # emitted chunks are not duplicated.
            assert fresh.replay_spool() == 44
            fresh.flush()
            assert np.array_equal(fresh.reconstruct("a"), x[256:])

    def test_spool_compacts_fully_drained_streams(self, tmp_path):
        from repro.streaming import MultiStreamCompressor

        x = _values(256, seed=5)
        spool = tmp_path / "spool"
        multi = MultiStreamCompressor(chunk_size=128, codec="gorilla",
                                      spool_to=spool)
        multi.add("a", x)
        multi.drain()                     # everything spooled was emitted
        assert multi.spool.length("a") == 0   # spool series was reset
        tail = _values(30, seed=6)
        multi.add("a", tail)              # post-compaction ingest
        assert multi.spool.length("a") == 30
        del multi

        with MultiStreamCompressor(chunk_size=128, codec="gorilla",
                                   spool_to=spool) as fresh:
            assert fresh.replay_spool() == 30
            fresh.flush()
            assert np.array_equal(fresh.reconstruct("a"), tail)

    def test_replay_preserves_policy_splits(self, tmp_path):
        from repro.sanitize import InputPolicy
        from repro.streaming import MultiStreamCompressor

        head, tail = _values(50, seed=7), _values(30, seed=8)
        x = np.concatenate([head, [np.nan], tail])
        spool = tmp_path / "spool"
        multi = MultiStreamCompressor(chunk_size=64, codec="raw",
                                      policy=InputPolicy(on_nan="split"),
                                      spool_to=spool)
        multi.add("a", x)                 # policy splits at the NaN
        del multi                         # crash before any drain

        with MultiStreamCompressor(chunk_size=64, codec="raw",
                                   policy=InputPolicy(on_nan="split"),
                                   spool_to=spool) as fresh:
            assert fresh.replay_spool() == 80
            fresh.flush()
            # The recorded boundary keeps the replayed chunks from
            # bridging the gap: [50, 30], never [64, 16].
            assert [r.length for r in fresh.results("a")] == [50, 30]
            assert np.array_equal(fresh.reconstruct("a"),
                                  np.concatenate([head, tail]))
