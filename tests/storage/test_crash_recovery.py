"""Kill-at-every-syncpoint crash recovery harness.

The acceptance bar for the durable store: with ``fsync_policy="always"``,
after a crash injected at *any* registered storage fault site — at every
hit of that site the workload produces — the reopened store reads
bit-identical to the last acknowledged durable state.

The harness runs a fixed workload (creates, appends that seal segments
and trigger checkpoints, a final flush) under a plan that crashes at the
``k``-th hit of one site, for every ``k`` until the workload completes
without crashing.  Acknowledged operations must all survive; the one
in-flight operation may additionally survive exactly when the crash site
lies past the WAL acknowledgement point.
"""

import shutil

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.faultinject import (
    STORAGE_SITES,
    InjectedCrash,
    StorageFaultAction,
    active_plan,
)
from repro.storage import DurableStore

SERIES = ("s0", "s1")

#: Sites at or past which the in-flight append's WAL record is already on
#: disk, so recovery replays it.  ``wal_append`` fires *before* the record
#: is written — a crash there loses exactly the unacknowledged append.
_IN_FLIGHT_SURVIVES = tuple(site for site in STORAGE_SITES
                            if site != "wal_append")


def _batch(i):
    return np.arange(3, dtype=np.float64) + 10.0 * i


def _run_workload(directory):
    """Run the workload; returns (acked_ops, in_flight_op, crashed)."""
    acked, in_flight = [], None
    try:
        in_flight = ("create-store", None, None)
        store = DurableStore.create(directory, default_segment_size=8)
        acked.append(in_flight)
        for name in SERIES:
            in_flight = ("create", name, None)
            store.create_series(name, codec="raw")
            acked.append(in_flight)
        for i in range(12):
            name = SERIES[i % 2]
            in_flight = ("append", name, _batch(i))
            store.append(name, _batch(i))
            acked.append(in_flight)
        in_flight = ("flush", None, None)
        store.flush()
        acked.append(in_flight)
        store.close()
        return acked, None, False
    except InjectedCrash:
        return acked, in_flight, True


def _check_recovery(directory, acked, in_flight, site):
    """Reopen after the crash and diff against the acknowledged state."""
    expected = {}
    for op, name, values in acked:
        if op == "create":
            expected[name] = []
        elif op == "append":
            expected[name].extend(values)
    maybe_created = None
    if in_flight is not None:
        op, name, values = in_flight
        if op == "create":
            maybe_created = name
        elif op == "append" and site in _IN_FLIGHT_SURVIVES:
            expected[name].extend(values)

    try:
        store = DurableStore.open(directory)
    except StorageError:
        # The store itself was never acknowledged as created.
        assert all(op == "create-store" for op, *_rest in acked)
        return

    names = set(store.list_series())
    assert set(expected) <= names, (
        f"acknowledged series lost at {site}: {set(expected) - names}")
    extra = names - set(expected)
    assert extra <= ({maybe_created} if maybe_created else set()), (
        f"unexpected series after {site} crash: {extra}")
    for name, values in expected.items():
        got = store.read(name)
        assert np.array_equal(got, np.asarray(values)), (
            f"series {name} after crash at {site}: "
            f"{got.size} values, expected {len(values)}")
    assert store.recovery.quarantined == []
    store.close()

    # A second open must be clean and bit-identical again.
    second = DurableStore.open(directory)
    assert second.recovery.clean
    for name, values in expected.items():
        assert np.array_equal(second.read(name), np.asarray(values))
    second.close()


@pytest.mark.parametrize("site", STORAGE_SITES)
def test_kill_at_every_syncpoint(site, tmp_path):
    crash_points = 0
    for k in range(200):
        directory = tmp_path / f"{site}-{k}"
        with active_plan([StorageFaultAction(kind="crash", site=site,
                                             skip_hits=k)]):
            acked, in_flight, crashed = _run_workload(directory)
            if not crashed:
                break
            crash_points += 1
            _check_recovery(directory, acked, in_flight, site)
        shutil.rmtree(directory, ignore_errors=True)
    else:
        pytest.fail(f"site {site} fired more than 200 times")
    assert crash_points > 0, f"site {site} never fired during the workload"


@pytest.mark.parametrize("site", ["wal_append", "wal_compact",
                                  "segment_write", "manifest_write"])
def test_injected_torn_write_never_surfaces_bad_data(site, tmp_path):
    """A torn write at any byte-carrying site is detected, not decoded.

    The workload completes (torn writes do not crash the writer — they
    model corruption that reached the platter); recovery must terminate,
    surface the corruption (truncated WAL tail, quarantined segment, or
    previous-manifest fallback), and every readable value must match the
    ingested sequence exactly.
    """
    directory = tmp_path / "store"
    with active_plan([StorageFaultAction(kind="torn_write", site=site,
                                         at_byte=11, skip_hits=2)]):
        acked, in_flight, crashed = _run_workload(directory)
    assert not crashed
    ingested = {}
    for op, name, values in acked:
        if op == "create":
            ingested[name] = []
        elif op == "append":
            ingested[name].extend(values)

    store = DurableStore.open(directory)
    for name, values in ingested.items():
        expected = np.asarray(values)
        try:
            got = store.read(name)
        except StorageError:
            # A quarantined range: corruption surfaced, never silently read.
            assert store.holes(name), f"read failed without a hole: {name}"
            continue
        assert got.size <= expected.size
        assert np.array_equal(got, expected[: got.size]), (
            f"recovered values of {name} are not a prefix of the ingested "
            f"sequence after a torn {site} write")
    store.close()

    # Recovery converges: the second scan reports clean.
    second = DurableStore.open(directory)
    assert second.recovery.clean
    second.close()


@pytest.mark.parametrize("site", ["wal_append", "wal_compact",
                                  "segment_write", "manifest_write"])
def test_injected_bit_flip_never_surfaces_bad_data(site, tmp_path):
    directory = tmp_path / "store"
    with active_plan([StorageFaultAction(kind="bit_flip", site=site,
                                         bit=137, skip_hits=1)]):
        acked, _in_flight, crashed = _run_workload(directory)
    assert not crashed
    ingested = {}
    for op, name, values in acked:
        if op == "create":
            ingested[name] = []
        elif op == "append":
            ingested[name].extend(values)

    store = DurableStore.open(directory)
    for name, values in ingested.items():
        expected = np.asarray(values)
        try:
            got = store.read(name)
        except StorageError:
            assert store.holes(name), f"read failed without a hole: {name}"
            continue
        assert got.size <= expected.size
        assert np.array_equal(got, expected[: got.size])
    store.close()
    second = DurableStore.open(directory)
    assert second.recovery.clean
    second.close()


def test_crash_during_recovery_checkpoint_is_survivable(tmp_path):
    """A crash while recovery itself checkpoints leaves a recoverable store."""
    directory = tmp_path / "store"
    values = np.arange(20.0)
    with DurableStore.create(directory, default_segment_size=8) as store:
        store.create_series("x", codec="raw")
        store.append("x", values)
    # Corrupt the WAL tail so the next open truncates and checkpoints...
    wal = max((directory / "wal").glob("*.wal"))
    wal.write_bytes(wal.read_bytes() + b"\xde\xad\xbe\xef")
    # ...and crash that recovery checkpoint at its manifest swap.
    with active_plan([StorageFaultAction(kind="crash",
                                         site="manifest_write")]):
        with pytest.raises(InjectedCrash):
            DurableStore.open(directory)
    with DurableStore.open(directory) as recovered:
        assert np.array_equal(recovered.read("x"), values)
    with DurableStore.open(directory) as clean:
        assert clean.recovery.clean
