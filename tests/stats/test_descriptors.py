"""Tests for the pluggable statistical descriptors (repro.stats.descriptors)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InvalidParameterError
from repro.stats import acf, pacf
from repro.stats.descriptors import (
    AcfStatistic,
    CallableStatistic,
    CompositeStatistic,
    CrossCorrelationStatistic,
    MomentStatistic,
    PacfStatistic,
    QuantileStatistic,
    SpectralStatistic,
    Statistic,
    TumblingAggregateStatistic,
    make_statistic,
)
from repro.stats.windowed import tumbling_window_aggregate

RNG = np.random.default_rng(7)


def _seasonal(n: int = 400, period: int = 20) -> np.ndarray:
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + 0.1 * RNG.standard_normal(n)


finite_series = arrays(
    np.float64,
    st.integers(min_value=32, max_value=200),
    elements=st.floats(min_value=-1e3, max_value=1e3,
                       allow_nan=False, allow_infinity=False),
)


class TestAcfPacfStatistics:
    def test_acf_statistic_matches_acf_function(self):
        x = _seasonal()
        np.testing.assert_allclose(AcfStatistic(24).compute(x), acf(x, 24))

    def test_pacf_statistic_matches_pacf_function(self):
        x = _seasonal()
        np.testing.assert_allclose(PacfStatistic(10).compute(x), pacf(x, 10))

    def test_lag_clamped_to_series_length(self):
        x = _seasonal(16)
        result = AcfStatistic(64).compute(x)
        assert result.size == 15

    def test_invalid_lag_rejected(self):
        with pytest.raises(InvalidParameterError):
            AcfStatistic(0)

    def test_name_encodes_lag(self):
        assert AcfStatistic(24).name == "acf24"
        assert PacfStatistic(5).name == "pacf5"


class TestMomentStatistic:
    def test_values_match_numpy(self):
        x = _seasonal()
        mean, std, skew, kurt = MomentStatistic().compute(x)
        assert mean == pytest.approx(np.mean(x))
        assert std == pytest.approx(np.std(x))
        centred = x - np.mean(x)
        assert skew == pytest.approx(np.mean(centred ** 3) / np.std(x) ** 3)
        assert kurt == pytest.approx(np.mean(centred ** 4) / np.std(x) ** 4)

    def test_subset_of_moments(self):
        x = _seasonal()
        result = MomentStatistic(["mean", "std"]).compute(x)
        assert result.size == 2

    def test_constant_series_has_zero_std_and_finite_moments(self):
        result = MomentStatistic().compute(np.full(50, 3.0))
        assert result[0] == pytest.approx(3.0)
        assert result[1] == pytest.approx(0.0)
        assert np.all(np.isfinite(result))

    def test_unknown_moment_rejected(self):
        with pytest.raises(InvalidParameterError):
            MomentStatistic(["median"])

    def test_empty_moment_list_rejected(self):
        with pytest.raises(InvalidParameterError):
            MomentStatistic([])

    @given(finite_series)
    @settings(max_examples=25, deadline=None)
    def test_moments_always_finite(self, x):
        assert np.all(np.isfinite(MomentStatistic().compute(x)))


class TestQuantileStatistic:
    def test_default_quantiles(self):
        x = _seasonal()
        result = QuantileStatistic().compute(x)
        np.testing.assert_allclose(result, np.quantile(x, (0.05, 0.25, 0.5, 0.75, 0.95)))

    def test_quantiles_are_monotone(self):
        x = RNG.standard_normal(500)
        result = QuantileStatistic((0.1, 0.5, 0.9)).compute(x)
        assert np.all(np.diff(result) >= 0)

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(InvalidParameterError):
            QuantileStatistic((0.5, 1.5))

    def test_empty_quantiles_rejected(self):
        with pytest.raises(InvalidParameterError):
            QuantileStatistic(())


class TestSpectralStatistic:
    def test_shares_sum_at_most_one(self):
        x = _seasonal()
        shares = SpectralStatistic(8).compute(x)
        assert shares.size == 8
        assert 0.0 <= float(np.sum(shares)) <= 1.0 + 1e-9

    def test_pure_sine_concentrates_energy(self):
        n, period = 512, 16
        x = np.sin(2 * np.pi * np.arange(n) / period)
        shares = SpectralStatistic(64).compute(x)
        dominant_bin = n // period - 1   # DC excluded, so bin k-1 is frequency k
        assert shares[dominant_bin] > 0.95

    def test_constant_series_has_zero_energy(self):
        shares = SpectralStatistic(4).compute(np.full(64, 2.5))
        np.testing.assert_allclose(shares, 0.0)

    def test_scale_invariance(self):
        x = _seasonal()
        a = SpectralStatistic(16).compute(x)
        b = SpectralStatistic(16).compute(10.0 * x)
        np.testing.assert_allclose(a, b, atol=1e-12)


class TestCrossCorrelationStatistic:
    def test_self_correlation_at_lag_zero_is_one(self):
        x = _seasonal()
        stat = CrossCorrelationStatistic(x, max_lag=0)
        assert stat.compute(x)[0] == pytest.approx(1.0)

    def test_lagged_copy_detected(self):
        # reference[i] = x[i - 3]: the statistic correlates x[:n-l] with
        # reference[l:], which realigns the two series exactly at lag 3.
        x = _seasonal(600)
        lagged = np.roll(x, 3)
        stat = CrossCorrelationStatistic(lagged, max_lag=5)
        result = stat.compute(x)
        assert int(np.argmax(result)) == 3

    def test_length_mismatch_rejected(self):
        stat = CrossCorrelationStatistic(_seasonal(100), max_lag=2)
        with pytest.raises(InvalidParameterError):
            stat.compute(_seasonal(90))

    def test_constant_reference_yields_zero(self):
        stat = CrossCorrelationStatistic(np.full(100, 1.0), max_lag=2)
        np.testing.assert_allclose(stat.compute(_seasonal(100)), 0.0)

    def test_negative_lag_rejected(self):
        with pytest.raises(InvalidParameterError):
            CrossCorrelationStatistic(_seasonal(100), max_lag=-1)


class TestTumblingAggregateStatistic:
    def test_matches_manual_aggregation(self):
        x = _seasonal(480)
        stat = TumblingAggregateStatistic(AcfStatistic(12), window=4, agg="mean")
        expected = acf(tumbling_window_aggregate(x, 4, "mean"), 12)
        np.testing.assert_allclose(stat.compute(x), expected)

    def test_name_composition(self):
        stat = TumblingAggregateStatistic(MomentStatistic(["mean"]), window=8, agg="max")
        assert stat.name == "moments(mean)@max8"

    def test_requires_statistic_instance(self):
        with pytest.raises(InvalidParameterError):
            TumblingAggregateStatistic(np.mean, window=4)  # type: ignore[arg-type]


class TestCompositeStatistic:
    def test_concatenates_parts(self):
        x = _seasonal()
        composite = CompositeStatistic([AcfStatistic(5), MomentStatistic(["mean", "std"])])
        result = composite.compute(x)
        assert result.size == 7
        np.testing.assert_allclose(result[:5], acf(x, 5))

    def test_weights_scale_parts(self):
        x = _seasonal()
        weighted = CompositeStatistic([MomentStatistic(["mean"])], weights=[0.5])
        assert weighted.compute(x)[0] == pytest.approx(0.5 * np.mean(x))

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompositeStatistic([AcfStatistic(3)], weights=[1.0, 2.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompositeStatistic([AcfStatistic(3)], weights=[-1.0])

    def test_empty_parts_rejected(self):
        with pytest.raises(InvalidParameterError):
            CompositeStatistic([])


class TestCallableStatisticAndFactory:
    def test_callable_adapter(self):
        stat = CallableStatistic(lambda x: np.asarray([np.mean(x), np.max(x)]), name="range")
        x = _seasonal()
        result = stat.compute(x)
        assert result.size == 2 and stat.name == "range"

    def test_callable_scalar_is_promoted_to_vector(self):
        stat = CallableStatistic(lambda x: np.mean(x))
        assert stat.compute(_seasonal()).shape == (1,)

    def test_non_callable_rejected(self):
        with pytest.raises(InvalidParameterError):
            CallableStatistic(42)  # type: ignore[arg-type]

    def test_factory_names(self):
        assert isinstance(make_statistic("acf", max_lag=10), AcfStatistic)
        assert isinstance(make_statistic("pacf", max_lag=5), PacfStatistic)
        assert isinstance(make_statistic("moments"), MomentStatistic)
        assert isinstance(make_statistic("quantiles"), QuantileStatistic)
        assert isinstance(make_statistic("spectrum"), SpectralStatistic)
        assert isinstance(
            make_statistic("ccf", reference=_seasonal(), max_lag=3),
            CrossCorrelationStatistic)

    def test_factory_unknown_name(self):
        with pytest.raises(InvalidParameterError):
            make_statistic("entropy")

    def test_statistic_call_validates_input(self):
        from repro.exceptions import InvalidSeriesError

        with pytest.raises(InvalidSeriesError):
            MomentStatistic()([np.nan, 1.0, 2.0])

    def test_all_builtins_are_statistics(self):
        x = _seasonal()
        for stat in (AcfStatistic(5), PacfStatistic(5), MomentStatistic(),
                     QuantileStatistic(), SpectralStatistic(4),
                     CrossCorrelationStatistic(x, 2)):
            assert isinstance(stat, Statistic)
            vector = stat.compute(x)
            assert vector.ndim == 1 and np.all(np.isfinite(vector))


class TestDeterminism:
    @given(finite_series)
    @settings(max_examples=20, deadline=None)
    def test_statistics_are_deterministic(self, x):
        for stat in (MomentStatistic(), QuantileStatistic((0.25, 0.75)),
                     SpectralStatistic(4)):
            np.testing.assert_array_equal(stat.compute(x), stat.compute(x))
