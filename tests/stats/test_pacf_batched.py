"""Property tests: batched Durbin-Levinson vs the per-row reference.

The batched kernel (:func:`repro._kernels.pacf.pacf_from_acf_batched`) must
reproduce the preserved per-row recursion
(:func:`repro._kernels.reference.reference_pacf_from_acf`) **bit for bit** on
every input — the greedy compressor amplifies last-bit differences into
different kept-point sets, so approximate agreement is not enough.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._kernels.pacf import pacf_from_acf_batched
from repro._kernels.reference import reference_pacf_from_acf
from repro.stats import acf, pacf_from_acf


def _assert_rows_bit_identical(rows: np.ndarray) -> None:
    batched = pacf_from_acf_batched(rows)
    for index in range(rows.shape[0]):
        expected = reference_pacf_from_acf(rows[index])
        assert np.array_equal(batched[index], expected, equal_nan=True), (
            f"row {index} differs from the per-row reference")


class TestBatchedMatchesReferenceBitForBit:
    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=24),
        max_lag=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=0.01, max_value=2.0),
    )
    def test_random_rows(self, rows, max_lag, seed, scale):
        rng = np.random.default_rng(seed)
        matrix = rng.normal(0.0, scale, (rows, max_lag))
        _assert_rows_bit_identical(matrix)

    @settings(max_examples=30, deadline=None)
    @given(
        phi=st.floats(min_value=0.99, max_value=1.0 - 1e-12),
        max_lag=st.integers(min_value=2, max_value=48),
    )
    def test_near_unit_root_rows(self, phi, max_lag):
        # AR(1) with phi -> 1: the ACF decays so slowly the DL denominator
        # approaches its degenerate guard.  The kernels must still agree.
        lags = np.arange(1, max_lag + 1, dtype=np.float64)
        rows = np.vstack([phi ** lags,
                          np.clip(phi ** lags + 1e-9, None, 1.0),
                          np.full(max_lag, phi)])
        _assert_rows_bit_identical(rows)

    def test_constant_series_acf_rows(self):
        # A constant series has zero variance, so its lagged-Pearson ACF is
        # the all-zeros vector; the PACF must be all zeros too (not NaN).
        rho = acf(np.full(256, 3.25), 12)
        assert np.array_equal(rho, np.zeros(12))
        rows = np.vstack([rho, rho])
        _assert_rows_bit_identical(rows)
        assert np.array_equal(pacf_from_acf_batched(rows), np.zeros((2, 12)))

    def test_degenerate_all_ones_rows(self):
        # ACF identically 1 collapses the DL denominator; the guard yields 0
        # at the affected lags and the recursion stays finite.
        rows = np.ones((3, 8))
        _assert_rows_bit_identical(rows)
        assert np.all(np.isfinite(pacf_from_acf_batched(rows)))

    @settings(max_examples=30, deadline=None)
    @given(max_lag=st.integers(min_value=1, max_value=64),
           seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_scalar_entry_is_single_row_of_batched(self, max_lag, seed):
        rng = np.random.default_rng(seed)
        rho = rng.normal(0.0, 0.5, max_lag)
        scalar = pacf_from_acf(rho)
        batched = pacf_from_acf_batched(rho[np.newaxis, :])[0]
        reference = reference_pacf_from_acf(rho)
        assert np.array_equal(scalar, batched, equal_nan=True)
        assert np.array_equal(scalar, reference, equal_nan=True)


class TestBatchedKernelApi:
    def test_rejects_non_matrix_input(self):
        with pytest.raises(ValueError):
            pacf_from_acf_batched(np.ones(5))
        with pytest.raises(ValueError):
            pacf_from_acf_batched(np.empty((3, 0)))

    def test_zero_rows_allowed(self):
        out = pacf_from_acf_batched(np.empty((0, 7)))
        assert out.shape == (0, 7)

    def test_input_rows_are_not_mutated(self):
        rng = np.random.default_rng(0)
        rows = rng.normal(0.0, 0.4, (5, 10))
        snapshot = rows.copy()
        pacf_from_acf_batched(rows)
        assert np.array_equal(rows, snapshot)

    def test_lag_one_matrix_is_identity(self):
        rows = np.array([[0.3], [-0.8], [1.5]])
        assert np.array_equal(pacf_from_acf_batched(rows), rows)
