"""Tests for the PACF / Durbin-Levinson recursion (Equation 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_ar_process
from repro.stats import acf, pacf, pacf_from_acf


class TestPacf:
    def test_ar1_pacf_cuts_off_after_lag_one(self):
        phi = 0.7
        x = generate_ar_process(50_000, [phi], seed=2)
        values = pacf(x, 6)
        assert values[0] == pytest.approx(phi, abs=0.03)
        assert np.all(np.abs(values[1:]) < 0.05)

    def test_ar2_pacf_cuts_off_after_lag_two(self):
        x = generate_ar_process(50_000, [0.5, 0.3], seed=4)
        values = pacf(x, 6)
        assert abs(values[1]) > 0.15
        assert np.all(np.abs(values[2:]) < 0.05)

    def test_first_lag_equals_acf1(self, seasonal_series):
        assert pacf(seasonal_series, 8)[0] == pytest.approx(
            acf(seasonal_series, 8)[0], abs=1e-9)

    def test_white_noise_pacf_near_zero(self, rng):
        x = rng.normal(0, 1, 20_000)
        assert np.all(np.abs(pacf(x, 8)) < 0.05)

    def test_pacf_from_acf_direct_consistency(self, seasonal_series):
        rho = acf(seasonal_series, 12)
        assert np.allclose(pacf_from_acf(rho), pacf(seasonal_series, 12))

    def test_length_matches_max_lag(self, seasonal_series):
        assert pacf(seasonal_series, 15).shape == (15,)

    def test_degenerate_acf_does_not_crash(self):
        # An ACF of all ones makes the DL denominator vanish; the recursion
        # must stay finite.
        values = pacf_from_acf(np.ones(6))
        assert np.all(np.isfinite(values))

    def test_empty_acf_rejected(self):
        with pytest.raises(ValueError):
            pacf_from_acf(np.empty(0))
