"""Tests for the incremental ACF aggregate state (Equations 7-9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import ACFAggregateState, acf


def _random_series(seed: int, n: int = 300) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sin(np.arange(n) / 7.0) * 3 + rng.normal(0, 0.5, n)


class TestConstruction:
    def test_initial_acf_matches_direct_computation(self, seasonal_series):
        state = ACFAggregateState(seasonal_series, 30)
        assert np.allclose(state.acf(), acf(seasonal_series, 30), atol=1e-10)

    def test_current_is_a_copy(self, seasonal_series):
        state = ACFAggregateState(seasonal_series, 5)
        seasonal_series[0] += 100.0
        assert state.current[0] != seasonal_series[0]

    def test_properties(self, seasonal_series):
        state = ACFAggregateState(seasonal_series, 12)
        assert state.n == seasonal_series.size
        assert state.max_lag == 12
        assert np.array_equal(state.lags, np.arange(1, 13))


class TestSingleUpdates:
    def test_apply_single_change_matches_recompute(self):
        x = _random_series(1)
        state = ACFAggregateState(x, 20)
        state.apply_changes([150], [0.75])
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-9)
        # And against a from-scratch ACF of the modified series.
        modified = x.copy()
        modified[150] += 0.75
        assert np.allclose(state.acf(), acf(modified, 20), atol=1e-9)

    def test_boundary_positions(self):
        x = _random_series(2)
        state = ACFAggregateState(x, 10)
        state.apply_changes([0, x.size - 1], [1.0, -2.0])
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-9)

    def test_zero_delta_is_noop(self):
        x = _random_series(3)
        state = ACFAggregateState(x, 10)
        before = state.acf()
        state.apply_changes([10], [0.0])
        assert np.array_equal(before, state.acf())

    def test_out_of_range_position_raises(self):
        state = ACFAggregateState(_random_series(4), 5)
        with pytest.raises(IndexError):
            state.apply_changes([1000], [1.0])

    def test_shape_mismatch_raises(self):
        state = ACFAggregateState(_random_series(5), 5)
        with pytest.raises(ValueError):
            state.apply_changes([1, 2], [1.0])


class TestBatchUpdates:
    def test_overlapping_lag_batch_exact(self):
        # Positions closer than the lag exercise the cross-term of Eq. 9.
        x = _random_series(6)
        state = ACFAggregateState(x, 15)
        positions = np.array([100, 101, 102, 103, 110])
        deltas = np.array([0.5, -0.3, 0.8, -0.2, 0.4])
        state.apply_changes(positions, deltas)
        modified = x.copy()
        modified[positions] += deltas
        assert np.allclose(state.acf(), acf(modified, 15), atol=1e-9)

    def test_preview_does_not_mutate(self):
        x = _random_series(7)
        state = ACFAggregateState(x, 10)
        before_acf = state.acf()
        before_current = state.current.copy()
        state.preview_acf([50, 51], [0.4, -0.4])
        assert np.array_equal(before_acf, state.acf())
        assert np.array_equal(before_current, state.current)

    def test_preview_equals_apply(self):
        x = _random_series(8)
        state = ACFAggregateState(x, 10)
        positions = [20, 21, 22, 40]
        deltas = [0.3, 0.1, -0.5, 0.9]
        preview = state.preview_acf(positions, deltas)
        state.apply_changes(positions, deltas)
        assert np.allclose(preview, state.acf(), atol=1e-12)

    def test_sequential_single_updates_equal_batch(self):
        x = _random_series(9)
        state_batch = ACFAggregateState(x, 12)
        state_single = ACFAggregateState(x, 12)
        positions = [5, 6, 7]
        deltas = [1.0, -0.5, 0.25]
        state_batch.apply_changes(positions, deltas)
        for position, delta in zip(positions, deltas):
            state_single.apply_changes([position], [delta])
        assert np.allclose(state_batch.acf(), state_single.acf(), atol=1e-12)

    def test_copy_is_independent(self):
        x = _random_series(10)
        state = ACFAggregateState(x, 8)
        clone = state.copy()
        state.apply_changes([30], [2.0])
        assert not np.allclose(state.acf(), clone.acf())
        assert np.allclose(clone.acf(), acf(x, 8), atol=1e-10)


class TestContiguousFastPath:
    @pytest.mark.parametrize("start,length", [(100, 7), (0, 3), (295, 5), (1, 1), (240, 60)])
    def test_preview_contiguous_matches_generic(self, start, length):
        x = _random_series(11)
        state = ACFAggregateState(x, 25)
        rng = np.random.default_rng(start + length)
        deltas = rng.normal(0, 0.4, length)
        positions = np.arange(start, start + length)
        fast = state.preview_acf_contiguous(start, deltas)
        slow = state.preview_acf(positions, deltas)
        assert np.allclose(fast, slow, atol=1e-9)

    def test_apply_contiguous_matches_recompute(self):
        x = _random_series(12)
        state = ACFAggregateState(x, 25)
        deltas = np.linspace(-0.5, 0.5, 9)
        state.apply_contiguous(140, deltas)
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-9)

    def test_empty_deltas_is_noop(self):
        x = _random_series(13)
        state = ACFAggregateState(x, 10)
        before = state.acf()
        state.apply_contiguous(5, np.empty(0))
        assert np.array_equal(before, state.acf())

    def test_out_of_bounds_range_raises(self):
        state = ACFAggregateState(_random_series(14), 5)
        with pytest.raises(IndexError):
            state.preview_acf_contiguous(298, np.ones(10))


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_incremental_always_matches_recompute(self, seed):
        """Property: after arbitrary random batches the incremental ACF equals
        a from-scratch recomputation."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 120))
        max_lag = int(rng.integers(1, min(n - 1, 20)))
        x = rng.normal(0, 1, n)
        state = ACFAggregateState(x, max_lag)
        for _round in range(3):
            count = int(rng.integers(1, 6))
            positions = rng.integers(0, n, count)
            deltas = rng.normal(0, 1, count)
            state.apply_changes(positions, deltas)
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-8)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_contiguous_fast_path_always_matches_generic(self, seed):
        """Property: the closed-form contiguous update equals the sequential
        per-position update for random ranges anywhere in the series."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(30, 150))
        max_lag = int(rng.integers(1, min(n - 1, 25)))
        x = rng.normal(0, 1, n)
        state = ACFAggregateState(x, max_lag)
        start = int(rng.integers(0, n - 1))
        length = int(rng.integers(1, n - start))
        deltas = rng.normal(0, 1, length)
        fast = state.preview_acf_contiguous(start, deltas)
        slow = state.preview_acf(np.arange(start, start + length), deltas)
        assert np.allclose(fast, slow, atol=1e-8)
