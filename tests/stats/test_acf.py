"""Tests for the ACF implementations (Equations 1 and 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generate_ar_process
from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.stats import acf, lagged_pearson_acf, stationary_acf
from repro.stats.acf import acf_from_sums


class TestAcfBasics:
    def test_white_noise_acf_near_zero(self, rng):
        x = rng.normal(0, 1, 20_000)
        values = acf(x, 10)
        assert np.all(np.abs(values) < 0.05)

    def test_perfect_sine_has_unit_acf_at_period(self):
        t = np.arange(2400)
        x = np.sin(2 * np.pi * t / 24)
        values = acf(x, 30)
        assert values[23] == pytest.approx(1.0, abs=0.01)
        # Half a period away the correlation is close to -1.
        assert values[11] == pytest.approx(-1.0, abs=0.02)

    def test_ar1_process_matches_theory(self):
        phi = 0.8
        x = generate_ar_process(60_000, [phi], seed=5)
        values = acf(x, 5)
        expected = phi ** np.arange(1, 6)
        assert np.allclose(values, expected, atol=0.03)

    def test_result_length_equals_max_lag(self, seasonal_series):
        assert acf(seasonal_series, 17).shape == (17,)

    def test_values_bounded_by_one(self, seasonal_series):
        values = acf(seasonal_series, 50)
        assert np.all(np.abs(values) <= 1.0 + 1e-9)

    def test_methods_agree_on_long_stationary_series(self, rng):
        x = generate_ar_process(30_000, [0.5], seed=9)
        pearson = lagged_pearson_acf(x, 5)
        stationary = stationary_acf(x, 5)
        assert np.allclose(pearson, stationary, atol=0.01)

    def test_constant_series_gives_zero(self):
        values = acf(np.ones(100), 5)
        assert np.allclose(values, 0.0)

    def test_unknown_method_raises(self, seasonal_series):
        with pytest.raises(ValueError):
            acf(seasonal_series, 5, method="bogus")


class TestAcfValidation:
    def test_lag_must_be_positive(self, seasonal_series):
        with pytest.raises(InvalidParameterError):
            acf(seasonal_series, 0)

    def test_lag_must_be_below_length(self):
        with pytest.raises(InvalidParameterError):
            acf(np.arange(10.0), 10)

    def test_empty_series_rejected(self):
        with pytest.raises(InvalidSeriesError):
            acf([], 1)

    def test_nan_rejected(self):
        with pytest.raises(InvalidSeriesError):
            acf([1.0, np.nan, 2.0], 1)


class TestAcfFromSums:
    def test_matches_numpy_corrcoef(self, rng):
        x = rng.normal(0, 1, 500)
        lag = 3
        head, tail = x[:-lag], x[lag:]
        count = head.size
        value = acf_from_sums(count, head.sum(), tail.sum(),
                              float(np.dot(head, head)), float(np.dot(tail, tail)),
                              float(np.dot(head, tail)))
        expected = np.corrcoef(head, tail)[0, 1]
        assert value == pytest.approx(expected, abs=1e-10)

    def test_degenerate_variance_returns_zero(self):
        assert acf_from_sums(10, 10.0, 10.0, 10.0, 10.0, 10.0) == 0.0
