"""Tests for the ACF-on-aggregates state (Definition 2, Equations 10-11)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.stats import ACFAggregateState, AggregatedACFState, acf, tumbling_window_aggregate


class TestTumblingWindowAggregate:
    def test_mean_of_simple_windows(self):
        x = np.arange(12, dtype=float)
        assert np.allclose(tumbling_window_aggregate(x, 3, "mean"), [1.0, 4.0, 7.0, 10.0])

    def test_sum_max_min(self):
        x = np.array([1.0, 5.0, 2.0, 8.0, 0.0, 3.0])
        assert np.allclose(tumbling_window_aggregate(x, 3, "sum"), [8.0, 11.0])
        assert np.allclose(tumbling_window_aggregate(x, 3, "max"), [5.0, 8.0])
        assert np.allclose(tumbling_window_aggregate(x, 3, "min"), [1.0, 0.0])

    def test_incomplete_trailing_window_dropped(self):
        x = np.arange(10, dtype=float)
        assert tumbling_window_aggregate(x, 3).size == 3

    def test_window_larger_than_series_rejected(self):
        with pytest.raises(InvalidParameterError):
            tumbling_window_aggregate(np.arange(5.0), 10)

    def test_unknown_agg_rejected(self):
        with pytest.raises(InvalidParameterError):
            tumbling_window_aggregate(np.arange(10.0), 2, "median")


class TestAggregatedState:
    def _series(self, seed: int = 0, n: int = 600) -> np.ndarray:
        rng = np.random.default_rng(seed)
        return 10 + np.sin(np.arange(n) / 15.0) * 4 + rng.normal(0, 0.5, n)

    def test_initial_acf_matches_aggregated_series(self):
        x = self._series()
        state = AggregatedACFState(x, 10, 20, "mean")
        expected = acf(tumbling_window_aggregate(x, 20, "mean"), 10)
        assert np.allclose(state.acf(), expected, atol=1e-10)

    @pytest.mark.parametrize("agg", ["mean", "sum", "max", "min"])
    def test_apply_matches_recompute(self, agg):
        x = self._series(3)
        state = AggregatedACFState(x, 8, 25, agg)
        rng = np.random.default_rng(7)
        positions = rng.integers(0, x.size, 12)
        deltas = rng.normal(0, 1.0, 12)
        state.apply_changes(positions, deltas)
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-9)

    def test_preview_equals_apply_mean(self):
        x = self._series(4)
        state = AggregatedACFState(x, 6, 30, "mean")
        positions = [10, 11, 12, 45, 200]
        deltas = [0.5, -1.0, 0.2, 2.0, -0.7]
        preview = state.preview_acf(positions, deltas)
        state.apply_changes(positions, deltas)
        assert np.allclose(preview, state.acf(), atol=1e-12)

    def test_changes_in_partial_trailing_window_ignored(self):
        x = self._series(5, n=610)  # 610 // 30 = 20 windows; 10 trailing points
        state = AggregatedACFState(x, 5, 30, "mean")
        before = state.acf()
        state.apply_changes([605], [50.0])
        assert np.allclose(before, state.acf())

    def test_contiguous_fast_path_matches_generic(self):
        x = self._series(6)
        state = AggregatedACFState(x, 8, 20, "mean")
        rng = np.random.default_rng(1)
        deltas = rng.normal(0, 0.5, 47)
        start = 113
        fast = state.preview_acf_contiguous(start, deltas)
        slow = state.preview_acf(np.arange(start, start + deltas.size), deltas)
        assert np.allclose(fast, slow, atol=1e-9)

    def test_apply_contiguous_matches_recompute(self):
        x = self._series(7)
        state = AggregatedACFState(x, 8, 20, "mean")
        deltas = np.linspace(-1, 1, 33)
        state.apply_contiguous(77, deltas)
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-9)

    def test_window_of(self):
        x = self._series(8, n=100)
        state = AggregatedACFState(x, 3, 10, "mean")
        assert state.window_of(0) == 0
        assert state.window_of(9) == 0
        assert state.window_of(10) == 1
        assert state.window_of(99) == 9

    def test_copy_independent(self):
        x = self._series(9)
        state = AggregatedACFState(x, 5, 20, "mean")
        clone = state.copy()
        state.apply_changes([3], [10.0])
        assert not np.allclose(state.current_raw[3], clone.current_raw[3])

    def test_inner_state_type(self):
        x = self._series(10)
        state = AggregatedACFState(x, 5, 20, "mean")
        assert isinstance(state.inner, ACFAggregateState)
        assert state.num_windows == x.size // 20


class TestAggregatedProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_mean_aggregation_incremental_matches_recompute(self, seed):
        """Property: random point changes keep the aggregated ACF consistent."""
        rng = np.random.default_rng(seed)
        window = int(rng.integers(2, 8))
        num_windows = int(rng.integers(8, 20))
        n = window * num_windows + int(rng.integers(0, window))
        x = rng.normal(0, 1, n)
        max_lag = int(rng.integers(1, min(num_windows - 1, 6)))
        state = AggregatedACFState(x, max_lag, window, "mean")
        count = int(rng.integers(1, 8))
        positions = rng.integers(0, n, count)
        deltas = rng.normal(0, 1, count)
        state.apply_changes(positions, deltas)
        assert np.allclose(state.acf(), state.recompute_acf(), atol=1e-8)
