"""Behavioural tests for the compression service.

Each robustness mechanism is tested twice where practical: a deterministic
unit test of the component (admission hysteresis, breaker state machine,
lifecycle ordering) and an end-to-end HTTP test of the same promise
through a real booted service.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.faultinject import ServiceFaultAction, active_plan
from repro.service import (AdmissionController, CircuitBreaker, Deadline,
                           Job, Lifecycle, ServiceConfig, ServiceMetrics)
from repro.storage.durable import DurableStore


# --------------------------------------------------------------------- #
# health + lifecycle
# --------------------------------------------------------------------- #
class TestLifecycle:
    def test_states_are_monotonic(self):
        lifecycle = Lifecycle()
        assert lifecycle.state == "starting"
        assert lifecycle.mark_running()
        assert lifecycle.begin_drain()
        assert not lifecycle.mark_running()      # no going back
        assert lifecycle.mark_stopped()
        assert not lifecycle.begin_drain()

    def test_readiness_outlives_nothing_liveness_outlives_drain(self):
        lifecycle = Lifecycle()
        lifecycle.mark_running()
        assert lifecycle.is_ready and lifecycle.is_alive
        lifecycle.begin_drain()
        assert not lifecycle.is_ready and lifecycle.is_alive
        lifecycle.mark_stopped()
        assert not lifecycle.is_alive

    def test_health_endpoints(self, service_factory):
        _service, client = service_factory()
        status, body, _headers = client.get("/healthz")
        assert status == 200 and body["alive"] and body["state"] == "running"
        status, body, _headers = client.get("/readyz")
        assert status == 200 and body["ready"]

    def test_readyz_flips_before_healthz_during_drain(self, service_factory):
        # An injected drain-site hang holds the service in `draining` long
        # enough to observe readiness off while liveness is still on.
        with active_plan([ServiceFaultAction(kind="hang", site="drain",
                                             seconds=1.0)]):
            service, client = service_factory()
            service.initiate_drain(reason="test")
            deadline = time.monotonic() + 0.8
            seen = None
            while time.monotonic() < deadline:
                status, body, _h = client.get("/readyz", timeout=2)
                if status == 503:
                    seen = (status, body)
                    break
                time.sleep(0.02)
            assert seen is not None, "readiness never flipped during drain"
            assert seen[1]["state"] == "draining"
            status, body, _h = client.get("/healthz", timeout=2)
            assert status == 200 and body["alive"]
            assert service.lifecycle.drained.wait(10)


# --------------------------------------------------------------------- #
# /compress
# --------------------------------------------------------------------- #
class TestCompressEndpoint:
    def test_round_trip(self, service_factory):
        _service, client = service_factory()
        status, body, _h = client.post("/compress", {
            "series": [[1.0, 2.0, 3.0] * 30, [5.0] * 64]})
        assert status == 200
        assert body["series"] == 2 and body["failed"] == 0
        assert body["encoded_bits"] > 0
        assert len(body["outcomes"]) == 2
        assert all(entry["ok"] and entry["bits"] > 0
                   for entry in body["outcomes"])

    def test_named_series_and_blocks(self, service_factory):
        _service, client = service_factory()
        status, body, _h = client.post("/compress", {
            "series": {"hot": [1.5] * 40, "cold": [2.5] * 40},
            "include_blocks": True})
        assert status == 200
        names = [entry["name"] for entry in body["outcomes"]]
        assert names == ["hot", "cold"]
        assert all("payload" in entry["block"] for entry in body["outcomes"])

    @pytest.mark.parametrize("document", (
        {"series": []},
        {"series": [[]]},
        {"series": [[1.0, "x"]]},
        {"series": [[1.0]], "names": ["a", "b"]},
        {"series": [[1.0]], "codec": "no-such-codec"},
        {"series": [[1.0]], "deadline_ms": -5},
        {"series": [[1.0]], "codec_options": "nope"},
        ["not", "an", "object"],
    ))
    def test_malformed_requests_get_400(self, service_factory, document):
        _service, client = service_factory()
        status, body, _h = client.post("/compress", document)
        assert status == 400
        assert "error" in body

    def test_unknown_endpoint_and_method(self, service_factory):
        _service, client = service_factory()
        assert client.post("/nope", {})[0] == 404
        assert client.request("PUT", "/compress", body={})[0] == 405

    def test_oversize_body_gets_413(self, service_factory):
        _service, client = service_factory(max_body_bytes=128)
        status, body, _h = client.post("/compress",
                                       {"series": [[1.0] * 500]})
        assert status == 413
        assert "error" in body


# --------------------------------------------------------------------- #
# /ingest
# --------------------------------------------------------------------- #
class TestIngestEndpoint:
    def test_plain_ingest_seals_chunks(self, service_factory):
        _service, client = service_factory()
        status, body, _h = client.post("/ingest",
                                       {"stream": "s", "values": [1.5] * 20})
        assert status == 200
        assert body["ingested"] == 20 and body["sealed_chunks"] == 2
        assert not body["duplicate"]

    def test_idempotency_key_dedupes(self, service_factory):
        _service, client = service_factory()
        headers = {"Idempotency-Key": "batch-1"}
        first = client.post("/ingest", {"stream": "s", "values": [2.0] * 20},
                            headers=headers)
        again = client.post("/ingest", {"stream": "s", "values": [2.0] * 20},
                            headers=headers)
        assert first[0] == again[0] == 200
        assert not first[1]["duplicate"] and again[1]["duplicate"]
        assert again[1]["ingested"] == 0

    @pytest.mark.parametrize("document", (
        {"values": [1.0]},
        {"stream": "", "values": [1.0]},
        {"stream": "s"},
        {"stream": "s", "values": []},
        {"stream": "s", "values": ["x"]},
        {"stream": "s", "values": [1.0], "idempotency_key": ""},
    ))
    def test_malformed_requests_get_400(self, service_factory, document):
        _service, client = service_factory()
        assert client.post("/ingest", document)[0] == 400

    def test_idempotency_without_store_is_503(self, service_factory):
        _service, client = service_factory(store=None)
        status, body, _h = client.post(
            "/ingest", {"stream": "s", "values": [1.0] * 4},
            headers={"Idempotency-Key": "k"})
        assert status == 503
        assert "durable store" in body["error"]

    def test_streams_summary(self, service_factory):
        _service, client = service_factory()
        client.post("/ingest", {"stream": "s", "values": [1.0] * 20})
        status, body, _h = client.get("/streams")
        assert status == 200
        assert body["streams"]["s"]["ingested_points"] == 20


# --------------------------------------------------------------------- #
# admission control
# --------------------------------------------------------------------- #
def _job(tenant: str = "t") -> Job:
    return Job(kind="compress", tenant=tenant, deadline=Deadline.after(30))


class TestAdmissionUnit:
    def make(self, **overrides) -> AdmissionController:
        settings = dict(queue_depth=4, high_watermark=3, low_watermark=1,
                        per_tenant_inflight=8, workers=1)
        settings.update(overrides)
        return AdmissionController(ServiceConfig(**settings),
                                   ServiceMetrics())

    def test_watermark_hysteresis_latches_and_unlatches(self):
        admission = self.make()
        jobs = [_job(f"t{i}") for i in range(3)]
        assert all(admission.submit(job) is None for job in jobs)
        # depth hit high_watermark=3: shedding latches.
        shed = admission.submit(_job("late"))
        assert shed is not None and shed.status == 429
        assert shed.reason == "overload" and shed.retry_after >= 1
        # Draining one job (depth 2 > low) must NOT unlatch...
        finished = admission.next_job()
        admission.finish(finished)
        assert admission.submit(_job("still")).status == 429
        # ...but reaching low_watermark=1 does.
        admission.finish(admission.next_job())
        assert admission.submit(_job("ok")) is None

    def test_queue_never_exceeds_depth(self):
        admission = self.make(high_watermark=4, low_watermark=0)
        outcomes = [admission.submit(_job(f"t{i}")) for i in range(10)]
        assert admission.depth <= 4
        assert sum(1 for shed in outcomes if shed is not None) == 6

    def test_per_tenant_cap(self):
        admission = self.make(per_tenant_inflight=2)
        assert admission.submit(_job("hot")) is None
        assert admission.submit(_job("hot")) is None
        shed = admission.submit(_job("hot"))
        assert shed is not None and shed.status == 429
        assert shed.reason == "tenant-cap"
        assert admission.submit(_job("cold")) is None

    def test_stop_refuses_everything(self):
        admission = self.make()
        admission.stop("draining")
        shed = admission.submit(_job())
        assert shed.status == 503 and shed.reason == "draining"

    def test_shed_queued_answers_every_waiter(self):
        admission = self.make()
        jobs = [_job(f"t{i}") for i in range(3)]
        for job in jobs:
            admission.submit(job)
        shed = admission.shed_queued(status=503, reason="draining")
        assert len(shed) == 3
        for job in jobs:
            assert job.done.is_set() and job.status == 503
            assert "Retry-After" in job.headers
        assert admission.depth == 0


class TestAdmissionHTTP:
    def test_overload_sheds_with_429_and_retry_after(self, service_factory):
        # One worker held by an injected 1 s hang; a burst beyond
        # queue_depth=2 must shed with well-formed 429s, never hang.
        with active_plan([ServiceFaultAction(kind="hang",
                                             site="mid_job_crash",
                                             target="/compress",
                                             seconds=1.0)]):
            _service, client = service_factory(
                workers=1, queue_depth=2, high_watermark=2, low_watermark=0)
            results = []
            lock = threading.Lock()

            def fire():
                outcome = client.post("/compress",
                                      {"series": [[1.0] * 64]}, timeout=30)
                with lock:
                    results.append(outcome)

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            statuses = sorted(status for status, _b, _h in results)
            assert len(statuses) == 6
            assert statuses.count(200) <= 3          # 1 running + 2 queued
            shed = [(status, body, headers)
                    for status, body, headers in results if status == 429]
            assert shed, f"no 429 in {statuses}"
            for _status, body, headers in shed:
                assert body["reason"] == "overload"
                assert int(float(headers["Retry-After"])) >= 1

    def test_tenant_cap_spares_other_tenants(self, service_factory):
        with active_plan([ServiceFaultAction(kind="hang",
                                             site="mid_job_crash",
                                             target="/compress",
                                             seconds=1.0)]):
            _service, client = service_factory(workers=1,
                                               per_tenant_inflight=1)
            results = {}

            def fire(name, tenant):
                results[name] = client.post(
                    "/compress", {"series": [[1.0] * 64]},
                    headers={"X-Tenant": tenant}, timeout=30)

            hog = threading.Thread(target=fire, args=("hog-1", "hog"))
            hog.start()
            time.sleep(0.3)      # let the hog's job reach the worker
            fire("hog-2", "hog")
            fire("other", "fair")
            hog.join(timeout=30)
            assert results["hog-2"][0] == 429
            assert results["hog-2"][1]["reason"] == "tenant-cap"
            assert results["other"][0] == 200
            assert results["hog-1"][0] == 200


# --------------------------------------------------------------------- #
# deadlines over HTTP
# --------------------------------------------------------------------- #
class TestDeadlineHTTP:
    def test_blown_deadline_is_a_prompt_504(self, service_factory):
        with active_plan([ServiceFaultAction(kind="hang",
                                             site="mid_job_crash",
                                             target="/compress",
                                             seconds=3.0)]):
            service, client = service_factory(workers=1)
            started = time.monotonic()
            status, body, headers = client.post(
                "/compress", {"series": [[1.0] * 64]},
                headers={"X-Deadline-Ms": "300"}, timeout=30)
            elapsed = time.monotonic() - started
        assert status == 504
        assert "deadline" in body["error"]
        assert "Retry-After" in headers
        assert elapsed < 2.0, "504 must arrive at the deadline, not the hang"
        assert service.metrics.counter(
            "repro_deadline_timeouts_total",
            labels={"endpoint": "/compress"}) == 1


# --------------------------------------------------------------------- #
# circuit breaker
# --------------------------------------------------------------------- #
class TestBreakerUnit:
    def test_closed_open_halfopen_cycle(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown=5.0,
                                 clock=lambda: clock[0])
        assert breaker.allow("gorilla") == (True, 0.0)
        breaker.record("gorilla", False)
        assert breaker.state_of("gorilla") == "closed"
        breaker.record("gorilla", False)
        assert breaker.state_of("gorilla") == "open"
        allowed, retry_after = breaker.allow("gorilla")
        assert not allowed and retry_after == pytest.approx(5.0)
        clock[0] = 6.0
        assert breaker.allow("gorilla") == (True, 0.0)   # the probe
        assert breaker.state_of("gorilla") == "half-open"
        assert not breaker.allow("gorilla")[0]           # one probe at a time
        breaker.record("gorilla", True)
        assert breaker.state_of("gorilla") == "closed"

    def test_failed_probe_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown=2.0,
                                 clock=lambda: clock[0])
        breaker.record("k", False)
        clock[0] = 3.0
        assert breaker.allow("k")[0]
        breaker.record("k", False)
        assert breaker.state_of("k") == "open"
        assert not breaker.allow("k")[0]

    def test_healthy_run_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record("k", False)
        breaker.record("k", False)
        breaker.record("k", True)
        breaker.record("k", False)
        assert breaker.state_of("k") == "closed"

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record("bad", False)
        assert not breaker.allow("bad")[0]
        assert breaker.allow("good")[0]


class TestBreakerHTTP:
    def test_open_breaker_fails_fast_then_probes(self, service_factory):
        service, client = service_factory(breaker_threshold=2,
                                          breaker_cooldown=0.3)
        for _ in range(2):
            service.breaker.record("gorilla", False)
        status, body, headers = client.post("/compress",
                                            {"series": [[1.0] * 32]})
        assert status == 503
        assert body["breaker"] == "open"
        assert "Retry-After" in headers
        time.sleep(0.4)
        # Cooldown elapsed: the probe goes through, succeeds, and closes.
        status, _body, _h = client.post("/compress",
                                        {"series": [[1.0] * 32]})
        assert status == 200
        assert service.breaker.state_of("gorilla") == "closed"


# --------------------------------------------------------------------- #
# /metrics
# --------------------------------------------------------------------- #
class TestMetricsEndpoint:
    def test_scrape_after_traffic(self, service_factory):
        _service, client = service_factory()
        client.post("/compress", {"series": [[1.0] * 64]})
        client.post("/ingest", {"stream": "s", "values": [2.0] * 20},
                    headers={"Idempotency-Key": "k"})
        client.post("/ingest", {"stream": "s", "values": [2.0] * 20},
                    headers={"Idempotency-Key": "k"})
        status, text, headers = client.get("/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        lines = text.splitlines()
        wanted = (
            'repro_requests_total{endpoint="/compress",status="200"} 1',
            'repro_requests_total{endpoint="/ingest",status="200"} 2',
            "repro_idempotent_duplicates_total 1",
            "repro_queue_depth 0",
            "repro_ready 1",
        )
        for needle in wanted:
            assert needle in lines, f"{needle!r} missing from scrape"
        assert any(line.startswith('repro_request_seconds{endpoint="/compress"')
                   and 'quantile="0.99"' in line for line in lines)
        assert any(line.startswith("repro_engine_series_total")
                   for line in lines)


# --------------------------------------------------------------------- #
# graceful drain
# --------------------------------------------------------------------- #
class TestDrain:
    def test_drain_finishes_inflight_work_and_checkpoints(self, tmp_path,
                                                          service_factory):
        service, client = service_factory(store=str(tmp_path / "drain-store"))
        client.post("/ingest", {"stream": "s", "values": [1.0] * 20},
                    headers={"Idempotency-Key": "k"})
        assert service.stop(timeout=15)
        report = service.drain_report
        assert report is not None and report.clean and not report.aborted
        assert report.shed_jobs == 0
        # The store is checkpointed and unlocked: reopen + verify contents.
        with DurableStore.open(str(tmp_path / "drain-store")) as store:
            assert store.recovery.clean
            assert store.length("s") == 20

    def test_drain_never_loses_acked_values(self, tmp_path, service_factory):
        store = str(tmp_path / "conserve-store")
        service, client = service_factory(store=store)
        # 20 values, chunk_size 8: 2 sealed pending + 4 buffered — none of
        # it drained to blocks yet.  All 20 must survive the stop.
        client.post("/ingest", {"stream": "s", "values": [1.0] * 20})
        assert service.stop(timeout=15)
        rebooted, client2 = service_factory(store=store)
        assert rebooted.replayed == 20
        status, body, _h = client2.get("/streams")
        assert status == 200
        summary = body["streams"]["s"]
        assert summary["ingested_points"] == 20

    def test_drain_under_load_sheds_queued_jobs(self, service_factory):
        with active_plan([ServiceFaultAction(kind="hang",
                                             site="mid_job_crash",
                                             target="/compress",
                                             seconds=1.0)]):
            service, client = service_factory(workers=1, drain_timeout=0.05)
            results = []
            lock = threading.Lock()

            def fire():
                outcome = client.post("/compress",
                                      {"series": [[1.0] * 64]}, timeout=30)
                with lock:
                    results.append(outcome)

            threads = [threading.Thread(target=fire) for _ in range(3)]
            for thread in threads:
                thread.start()
            time.sleep(0.3)      # first job reaches the worker, rest queue
            service.initiate_drain(reason="test")
            for thread in threads:
                thread.join(timeout=30)
            assert service.lifecycle.drained.wait(15)
            assert len(results) == 3
            shed = [body for status, body, _h in results if status == 503]
            assert service.drain_report.shed_jobs == len(shed)
            assert shed, "nothing was shed under a 50 ms drain budget"
            for body in shed:
                assert body["reason"] in ("draining", "aborted")

    def test_submissions_after_drain_get_503(self, service_factory):
        with active_plan([ServiceFaultAction(kind="hang", site="drain",
                                             seconds=1.0)]):
            service, client = service_factory()
            service.initiate_drain(reason="test")
            time.sleep(0.1)
            status, body, _h = client.post("/compress",
                                           {"series": [[1.0] * 16]},
                                           timeout=10)
            assert status == 503
            assert body["reason"] == "draining"
            assert service.lifecycle.drained.wait(10)
