"""Gating chaos matrix: every service fault site × kind.

For each ``(site, kind)`` pair the contract is checked end to end:

* **crash** — the client sees a dropped connection (never a half-written
  response), the service aborts with the spool closed abruptly, the store
  reopens with a clean recovery/fsck, and a retried idempotent ingest is
  applied exactly once;
* **raise** — a well-formed JSON error with the documented status code;
* **hang** — a delayed but otherwise correct response (or a 504 when the
  hang outlives the request deadline — tested separately).

The matrix runs in-process: ``InjectedCrash`` at a service site makes the
service close its WAL spool abruptly (no journal persistence, no drain),
which leaves the same on-disk state as a killed process.
"""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro.faultinject import SERVICE_KINDS, SERVICE_SITES, \
    ServiceFaultAction, active_plan
from repro.storage.durable import DurableStore
from repro.storage.recovery import fsck

INGEST = {"stream": "s", "values": [2.5] * 20}
KEY = {"Idempotency-Key": "chaos-key"}


def _assert_connection_dropped(client, path, body, headers):
    """The request must fail at the transport layer, not half-respond."""
    with pytest.raises((http.client.HTTPException, ConnectionError,
                        socket.timeout, OSError)):
        status, payload, _h = client.post(path, body, headers=headers,
                                          timeout=10)
        raise AssertionError(
            f"expected a dropped connection, got {status}: {payload}")


def _assert_store_recovers_exactly_once(service_factory, store,
                                        expect_duplicate):
    """Reboot on ``store``; the retried ingest lands exactly once."""
    rebooted, client = service_factory(store=store)
    status, body, _h = client.post("/ingest", INGEST, headers=KEY)
    assert status == 200
    assert body["duplicate"] is expect_duplicate
    status, body, _h = client.get("/streams")
    assert body["streams"]["s"]["ingested_points"] == 20
    assert rebooted.stop(timeout=15)
    report = fsck(store)
    assert report.clean, report.summary()


class TestChaosMatrix:
    """One deterministic scenario per (site, kind) combination."""

    def test_matrix_is_total(self):
        covered = {
            ("request_parse", "crash"), ("request_parse", "raise"),
            ("request_parse", "hang"),
            ("enqueue", "crash"), ("enqueue", "raise"), ("enqueue", "hang"),
            ("mid_job_crash", "crash"), ("mid_job_crash", "raise"),
            ("mid_job_crash", "hang"),
            ("drain", "crash"), ("drain", "raise"), ("drain", "hang"),
            ("response_write", "crash"), ("response_write", "raise"),
            ("response_write", "hang"),
        }
        assert covered == {(site, kind) for site in SERVICE_SITES
                           for kind in SERVICE_KINDS}

    # ------------------------------ crash ------------------------------ #
    @pytest.mark.parametrize("site,landed", (
        ("request_parse", False),   # crash before anything happened
        ("enqueue", False),         # crash before the job was queued
        ("mid_job_crash", True),    # crash after the WAL acked the append
        ("response_write", True),   # crash after the job, before the 200
    ))
    def test_crash_sites_recover_exactly_once(self, tmp_path,
                                              service_factory, site, landed):
        store = str(tmp_path / f"crash-{site}")
        with active_plan([ServiceFaultAction(kind="crash", site=site,
                                             target="/ingest")]):
            service, client = service_factory(store=store)
            _assert_connection_dropped(client, "/ingest", INGEST, KEY)
            assert service.lifecycle.drained.wait(10)
            assert service.drain_report.aborted
        # The abort skipped every graceful step; recovery must still be
        # clean and the retry applied exactly once (a duplicate ack when
        # the crash hit after the append, a fresh apply when before).
        _assert_store_recovers_exactly_once(service_factory, store,
                                            expect_duplicate=landed)

    def test_crash_during_drain_leaves_store_recoverable(self, tmp_path,
                                                         service_factory):
        store = str(tmp_path / "crash-drain")
        with active_plan([ServiceFaultAction(kind="crash", site="drain")]):
            service, client = service_factory(store=store)
            status, _body, _h = client.post("/ingest", INGEST, headers=KEY)
            assert status == 200
            service.initiate_drain(reason="test")
            assert service.lifecycle.drained.wait(10)
            assert service.drain_report.aborted
        _assert_store_recovers_exactly_once(service_factory, store,
                                            expect_duplicate=True)

    # ------------------------------ raise ------------------------------ #
    @pytest.mark.parametrize("site,status,fragment", (
        ("request_parse", 400, "request parse failed"),
        ("enqueue", 503, "enqueue failed"),
        ("mid_job_crash", 500, "injected fault"),
        ("response_write", 500, "response write failed"),
    ))
    def test_raise_sites_yield_wellformed_errors(self, tmp_path,
                                                 service_factory, site,
                                                 status, fragment):
        store = str(tmp_path / f"raise-{site}")
        with active_plan([ServiceFaultAction(kind="raise", site=site,
                                             target="/ingest")]):
            service, client = service_factory(store=store)
            got_status, body, _h = client.post("/ingest", INGEST, headers=KEY)
            assert got_status == status
            assert fragment in body["error"]
            # The fault was absorbed, not fatal: the service still serves.
            assert client.get("/readyz")[0] == 200
            assert service.stop(timeout=15)
        assert fsck(store).clean

    def test_raise_during_drain_still_converges(self, tmp_path,
                                                service_factory):
        store = str(tmp_path / "raise-drain")
        with active_plan([ServiceFaultAction(kind="raise", site="drain")]):
            service, client = service_factory(store=store)
            client.post("/ingest", INGEST, headers=KEY)
            service.initiate_drain(reason="test")
            assert service.lifecycle.drained.wait(10)
            report = service.drain_report
            assert report is not None and not report.aborted
            assert service.metrics.counter("repro_drain_faults_total") == 1
        assert fsck(store).clean

    # ------------------------------ hang ------------------------------- #
    @pytest.mark.parametrize("site", ("request_parse", "enqueue",
                                      "mid_job_crash", "response_write"))
    def test_hang_sites_delay_but_answer(self, tmp_path, service_factory,
                                         site):
        store = str(tmp_path / f"hang-{site}")
        with active_plan([ServiceFaultAction(kind="hang", site=site,
                                             target="/ingest",
                                             seconds=0.3)]):
            service, client = service_factory(store=store)
            status, body, _h = client.post("/ingest", INGEST, headers=KEY,
                                           timeout=15)
            assert status == 200 and body["ingested"] == 20
            assert service.stop(timeout=15)
        assert fsck(store).clean

    def test_hang_during_drain_still_converges(self, tmp_path,
                                               service_factory):
        store = str(tmp_path / "hang-drain")
        with active_plan([ServiceFaultAction(kind="hang", site="drain",
                                             seconds=0.3)]):
            service, client = service_factory(store=store)
            client.post("/ingest", INGEST, headers=KEY)
            assert service.stop(timeout=15)
            assert not service.drain_report.aborted
        assert fsck(store).clean


class TestCompressCrash:
    """A mid-job crash on /compress drops the connection and aborts."""

    def test_crash_mid_compress(self, tmp_path, service_factory):
        store = str(tmp_path / "crash-compress")
        with active_plan([ServiceFaultAction(kind="crash",
                                             site="mid_job_crash",
                                             target="/compress")]):
            service, client = service_factory(store=store)
            _assert_connection_dropped(client, "/compress",
                                       {"series": [[1.0] * 64]}, {})
            assert service.lifecycle.drained.wait(10)
            assert service.drain_report.aborted
        # Nothing of the compress touched the store; it reopens clean.
        with DurableStore.open(store) as reopened:
            assert reopened.recovery.clean


class TestCrashDoesNotDoubleApply:
    """The acked-exactly-once invariant under a crash-then-retry loop."""

    def test_repeated_crash_retry_cycles(self, tmp_path, service_factory):
        store = str(tmp_path / "cycles")
        # Crash the first ingest attempt of each of two boots, then let a
        # third boot succeed; the stream must hold exactly one batch.
        for _round in range(2):
            with active_plan([ServiceFaultAction(kind="crash",
                                                 site="mid_job_crash",
                                                 target="/ingest")]):
                service, client = service_factory(store=store)
                _assert_connection_dropped(client, "/ingest", INGEST, KEY)
                assert service.lifecycle.drained.wait(10)
        final, client = service_factory(store=store)
        status, body, _h = client.post("/ingest", INGEST, headers=KEY)
        assert status == 200 and body["duplicate"]
        status, body, _h = client.get("/streams")
        # Boot 2 drained and compacted 16 of the 20 values at startup, so
        # this boot replays only the 4-value tail.  A double-apply would
        # show 24 here; a lost batch would show 0.
        assert body["streams"]["s"]["ingested_points"] == 4
        assert final.stop(timeout=15)
        assert fsck(store).clean
