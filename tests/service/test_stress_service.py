"""Seeded service chaos soaks (opt-in: ``-m stress`` / REPRO_RUN_STRESS=1).

Each soak derives a service fault plan from its seed
(:func:`repro.faultinject.random_service_plan` — crashes, hangs, and
raises at random service sites) and runs a randomized request workload
against a real booted service.  Whatever the plan does, the invariants
hold:

* every answered request is well-formed — a documented status code with a
  JSON body — and every unanswered one is a dropped connection (a crash),
  never a hang past the client timeout;
* after the run (drain or abort), the durable store reopens with a clean
  recovery and a follow-up fsck converges;
* idempotent ingests are applied exactly once: however many retries a
  crash forces, a final reboot sees every key's batch exactly once.

A failing seed replays exactly: the plan is a pure function of the seed.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.faultinject import active_plan, random_service_plan
from repro.service import CompressionService, ServiceConfig
from repro.storage.recovery import fsck

STRESS_SEEDS = tuple(range(12))

#: Statuses a well-formed service response may carry.
ALLOWED_STATUSES = {200, 207, 400, 429, 500, 503, 504}


def _boot(store: str) -> CompressionService:
    service = CompressionService(ServiceConfig(
        port=0, workers=2, chunk_size=8, queue_depth=8,
        default_deadline=5.0, drain_timeout=2.0, store=store))
    service.start()
    threading.Thread(target=service.serve_forever, daemon=True).start()
    return service


def _post(port: int, path: str, body: dict, headers: dict):
    """One request; returns (status, parsed) or None for a dropped conn."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}" + path, data=json.dumps(body).encode(),
        method="POST", headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=20) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode())
    except (http.client.HTTPException, ConnectionError, socket.timeout,
            urllib.error.URLError, OSError):
        return None


@pytest.mark.stress
@pytest.mark.parametrize("seed", STRESS_SEEDS, ids=lambda s: f"seed{s}")
def test_service_chaos_soak(seed, tmp_path):
    store = str(tmp_path / "store")
    rng = np.random.default_rng(seed)
    acked_keys: set[str] = set()
    with active_plan(random_service_plan(seed)):
        for _boot_round in range(3):
            service = _boot(store)
            port = service.port
            for request_index in range(int(rng.integers(4, 10))):
                key = f"seed{seed}-key{int(rng.integers(0, 4))}"
                if rng.random() < 0.6:
                    outcome = _post(port, "/ingest",
                                    {"stream": f"s{int(rng.integers(0, 2))}",
                                     "values": [float(request_index)] * 12},
                                    {"Idempotency-Key": key})
                else:
                    outcome = _post(port, "/compress",
                                    {"series": [[1.0] * 32]}, {})
                if outcome is None:
                    break  # crash: this boot is dead, start the next
                status, body = outcome
                assert status in ALLOWED_STATUSES, (status, body)
                assert isinstance(body, dict) and (
                    status in (200, 207) or "error" in body), (status, body)
                if status == 200 and "stream" in body:
                    acked_keys.add(key)
            if service.lifecycle.is_alive:
                service.stop(timeout=15)
            assert service.lifecycle.drained.wait(15), "drain never converged"

    # Out of the fault plan: the store must recover and every acked key
    # must dedupe (its batch landed exactly once).
    report = fsck(store)
    assert report.clean, report.summary()
    service = _boot(store)
    for key in sorted(acked_keys):
        outcome = _post(service.port, "/ingest",
                        {"stream": "s0", "values": [9.9] * 12},
                        {"Idempotency-Key": key})
        assert outcome is not None
        status, body = outcome
        assert status == 200 and body["duplicate"], (key, status, body)
    assert service.stop(timeout=15)
    assert fsck(store).clean


@pytest.mark.stress
def test_overload_soak_never_grows_the_queue(tmp_path):
    """A sustained burst far past capacity: bounded queue, bounded memory."""
    service = _boot(str(tmp_path / "store"))
    port = service.port
    results: list = []
    lock = threading.Lock()

    def fire(index: int) -> None:
        outcome = _post(port, "/compress",
                        {"series": [[float(index)] * 256] * 4}, {})
        with lock:
            results.append(outcome)

    threads = [threading.Thread(target=fire, args=(index,))
               for index in range(64)]
    for thread in threads:
        thread.start()
    peak = 0
    while any(thread.is_alive() for thread in threads):
        peak = max(peak, service.admission.depth)
    for thread in threads:
        thread.join(timeout=60)
    assert peak <= service.config.queue_depth
    assert len(results) == 64
    statuses = sorted(status for status, _body in results)
    assert set(statuses) <= {200, 429, 503, 504}
    assert service.stop(timeout=15)
