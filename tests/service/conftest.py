"""Fixtures for the compression-service tests: boot helpers + HTTP client."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service import CompressionService, ServiceConfig


class Client:
    """A tiny urllib wrapper returning ``(status, parsed_body, headers)``."""

    def __init__(self, port: int):
        self.base = f"http://127.0.0.1:{port}"

    def request(self, method: str, path: str, body=None, headers=None,
                timeout: float = 15.0):
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(self.base + path, data=data,
                                         method=method, headers=headers or {})
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                raw = response.read().decode()
                status, resp_headers = response.status, dict(response.headers)
        except urllib.error.HTTPError as error:
            raw = error.read().decode()
            status, resp_headers = error.code, dict(error.headers)
        try:
            parsed = json.loads(raw)
        except json.JSONDecodeError:
            parsed = raw
        return status, parsed, resp_headers

    def get(self, path, **kwargs):
        return self.request("GET", path, **kwargs)

    def post(self, path, body, **kwargs):
        return self.request("POST", path, body=body, **kwargs)


@pytest.fixture()
def service_factory(tmp_path):
    """Boot services on free ports; everything booted is drained at exit."""
    booted: list[CompressionService] = []

    def boot(**overrides) -> tuple[CompressionService, Client]:
        settings = dict(port=0, workers=2, chunk_size=8,
                        default_deadline=5.0, drain_timeout=5.0,
                        store=str(tmp_path / "store"))
        settings.update(overrides)
        service = CompressionService(ServiceConfig(**settings))
        service.start()
        threading.Thread(target=service.serve_forever, daemon=True).start()
        booted.append(service)
        return service, Client(service.port)

    yield boot
    for service in booted:
        if service.lifecycle.is_alive:
            service.stop(timeout=15.0)
        service.lifecycle.drained.wait(timeout=15.0)
