"""Tests for the Gorilla / Chimp codecs and the bitstream layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CodecError
from repro.lossless import (
    BitReader,
    BitWriter,
    ChimpCodec,
    GorillaCodec,
    bits_to_float,
    float_to_bits,
)


class TestBitstream:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        pattern = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        for bit in pattern:
            writer.write_bit(bit)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert [reader.read_bit() for _ in range(len(pattern))] == pattern

    def test_multi_bit_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0xDEADBEEF, 32)
        writer.write_bits(0x1FFFFFFFFFFFFF, 53)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read_bits(4) == 0b1011
        assert reader.read_bits(32) == 0xDEADBEEF
        assert reader.read_bits(53) == 0x1FFFFFFFFFFFFF

    def test_bit_length_accounting(self):
        writer = BitWriter()
        writer.write_bits(0, 13)
        assert writer.bit_length == 13
        writer.write_bit(1)
        assert writer.bit_length == 14

    def test_read_past_end_raises(self):
        writer = BitWriter()
        writer.write_bits(3, 2)
        reader = BitReader(writer.to_bytes(), writer.bit_length)
        reader.read_bits(2)
        with pytest.raises(CodecError):
            reader.read_bit()

    def test_invalid_width(self):
        with pytest.raises(CodecError):
            BitWriter().write_bits(1, 65)
        with pytest.raises(CodecError):
            BitReader(b"\x00").read_bits(65)

    def test_float_bit_reinterpretation(self):
        for value in (0.0, 1.0, -1.5, 3.141592653589793, 1e300, -1e-300):
            assert bits_to_float(float_to_bits(value)) == value


class TestCodecsRoundtrip:
    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_exact_roundtrip_on_typical_signals(self, codec_cls):
        rng = np.random.default_rng(0)
        signals = {
            "noise": rng.normal(0, 1, 500),
            "rounded-sensor": np.round(np.sin(np.arange(500) / 9) * 25 + 60, 2),
            "integers": rng.integers(0, 500, 500).astype(float),
            "many-repeats": np.repeat(rng.normal(0, 1, 50), 10),
            "constant": np.full(200, 42.125),
            "single": np.array([1.5]),
        }
        codec = codec_cls()
        for name, signal in signals.items():
            payload, bits, count = codec.encode(signal)
            decoded = codec.decode(payload, bits, count)
            assert np.array_equal(decoded, signal), f"{codec.name} failed on {name}"

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_repeated_values_compress_below_raw(self, codec_cls):
        signal = np.repeat([1.25, 2.5, 2.5, 2.5], 100)
        bits_per_value = codec_cls().bits_per_value(signal)
        assert bits_per_value < 64

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_special_float_values(self, codec_cls):
        signal = np.array([0.0, -0.0, 1e308, -1e308, 5e-324, 1.0])
        codec = codec_cls()
        payload, bits, count = codec.encode(signal)
        assert np.array_equal(codec.decode(payload, bits, count), signal)

    def test_decode_requires_positive_count(self):
        codec = GorillaCodec()
        payload, bits, _count = codec.encode(np.array([1.0, 2.0]))
        with pytest.raises(CodecError):
            codec.decode(payload, bits, 0)

    def test_chimp_beats_gorilla_on_low_precision_data(self):
        # Chimp's claim to fame: fewer bits on values with few trailing zeros.
        rng = np.random.default_rng(5)
        signal = np.round(rng.normal(100, 5, 2000), 1)
        assert ChimpCodec().bits_per_value(signal) <= GorillaCodec().bits_per_value(signal) * 1.1


class TestCodecsProperty:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e12, max_value=1e12),
                    min_size=1, max_size=80))
    def test_gorilla_roundtrip_random_floats(self, values):
        codec = GorillaCodec()
        signal = np.asarray(values, dtype=np.float64)
        payload, bits, count = codec.encode(signal)
        assert np.array_equal(codec.decode(payload, bits, count), signal)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                              min_value=-1e12, max_value=1e12),
                    min_size=1, max_size=80))
    def test_chimp_roundtrip_random_floats(self, values):
        codec = ChimpCodec()
        signal = np.asarray(values, dtype=np.float64)
        payload, bits, count = codec.encode(signal)
        assert np.array_equal(codec.decode(payload, bits, count), signal)
