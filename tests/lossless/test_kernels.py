"""Bit-exact cross-checks of the block bitstream and codec kernels.

The block kernels must be indistinguishable from the original per-bit
implementations (preserved in :mod:`repro._kernels.reference`): identical
payload bytes, identical bit lengths, and exact round-trips for arbitrary
width sequences (0–64) and hostile float payloads (NaN/±inf bit patterns,
−0.0, denormals, empty and length-1 series).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._kernels import BlockBitReader, BlockBitWriter, clz64, ctz64, pack_bits
from repro._kernels.reference import (
    ReferenceBitReader,
    ReferenceBitWriter,
    reference_chimp_decode,
    reference_chimp_encode,
    reference_gorilla_decode,
    reference_gorilla_encode,
)
from repro.exceptions import CodecError, InvalidSeriesError
from repro.lossless import ChimpCodec, GorillaCodec, bits_to_float, float_to_bits

_FIELDS = st.lists(
    st.tuples(st.integers(min_value=0, max_value=(1 << 64) - 1),
              st.integers(min_value=0, max_value=64)),
    min_size=0, max_size=120)


class TestBlockBitstreamProperties:
    @settings(max_examples=60, deadline=None)
    @given(_FIELDS)
    def test_block_writer_matches_reference_bytes(self, fields):
        block = BlockBitWriter()
        reference = ReferenceBitWriter()
        for value, width in fields:
            block.write_bits(value, width)
            reference.write_bits(value, width)
        assert block.bit_length == reference.bit_length
        assert block.to_bytes() == reference.to_bytes()

    @settings(max_examples=60, deadline=None)
    @given(_FIELDS)
    def test_write_bits_array_matches_sequential(self, fields):
        sequential = BlockBitWriter()
        for value, width in fields:
            sequential.write_bits(value, width)
        batched = BlockBitWriter()
        batched.write_bits_array(
            np.array([value for value, _ in fields], dtype=np.uint64),
            np.array([width for _, width in fields], dtype=np.int64))
        assert batched.bit_length == sequential.bit_length
        assert batched.to_bytes() == sequential.to_bytes()

    @settings(max_examples=60, deadline=None)
    @given(_FIELDS)
    def test_roundtrip_and_cross_reads(self, fields):
        writer = BlockBitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        payload = writer.to_bytes()
        bit_length = writer.bit_length
        expected = [value & ((1 << width) - 1) for value, width in fields]
        widths = [width for _, width in fields]

        block_reader = BlockBitReader(payload, bit_length)
        assert [block_reader.read_bits(w) for w in widths] == expected
        # The reference reader must agree on block-written bytes and
        # vice versa (the byte layouts are the same format).
        reference_reader = ReferenceBitReader(payload, bit_length)
        assert [reference_reader.read_bits(w) for w in widths] == expected
        array_reader = BlockBitReader(payload, bit_length)
        assert array_reader.read_bits_array(
            np.asarray(widths, dtype=np.int64)).tolist() == expected

    @settings(max_examples=40, deadline=None)
    @given(_FIELDS)
    def test_mixed_chunk_append(self, fields):
        """Interleaving write_bits and write_bits_array keeps the layout."""
        sequential = BlockBitWriter()
        mixed = BlockBitWriter()
        for index, (value, width) in enumerate(fields):
            sequential.write_bits(value, width)
            if index % 2:
                mixed.write_bits(value, width)
            else:
                mixed.write_bits_array(np.array([value], dtype=np.uint64),
                                       np.array([width], dtype=np.int64))
        assert mixed.to_bytes() == sequential.to_bytes()
        assert mixed.bit_length == sequential.bit_length


class TestBlockBitstreamEdges:
    def test_zero_width_fields(self):
        writer = BlockBitWriter()
        writer.write_bits(0xFFFF, 0)
        assert writer.bit_length == 0
        writer.write_bits(0b101, 3)
        writer.write_bits(12345, 0)
        assert writer.bit_length == 3
        reader = BlockBitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read_bits(0) == 0
        assert reader.read_bits(3) == 0b101

    def test_invalid_widths_raise(self):
        with pytest.raises(CodecError):
            BlockBitWriter().write_bits(1, 65)
        with pytest.raises(CodecError):
            BlockBitWriter().write_bits(1, -1)
        with pytest.raises(CodecError):
            BlockBitReader(b"\x00" * 16).read_bits(65)
        with pytest.raises(CodecError):
            pack_bits([1], [70])

    def test_read_past_end_raises(self):
        writer = BlockBitWriter()
        writer.write_bits(3, 2)
        reader = BlockBitReader(writer.to_bytes(), writer.bit_length)
        assert reader.read_bits(2) == 3
        with pytest.raises(CodecError):
            reader.read_bit()
        with pytest.raises(CodecError):
            BlockBitReader(writer.to_bytes(), 2).read_bits_array(
                np.asarray([2, 1], dtype=np.int64))

    def test_special_float_bit_patterns(self):
        specials = [float("nan"), float("inf"), float("-inf"), -0.0, 0.0,
                    5e-324, -5e-324, 1e308, -1e308]
        writer = BlockBitWriter()
        for value in specials:
            writer.write_bits(float_to_bits(value), 64)
        reader = BlockBitReader(writer.to_bytes(), writer.bit_length)
        decoded = [bits_to_float(reader.read_bits(64)) for _ in specials]
        for original, roundtripped in zip(specials, decoded):
            bits_original = float_to_bits(original)
            assert float_to_bits(roundtripped) == bits_original
        # -0.0 must keep its sign bit, NaN its exact payload.
        assert np.signbit(decoded[3])
        assert np.isnan(decoded[0])

    def test_overstated_bit_length_raises_not_pad_zeros(self):
        # A stated bit_length beyond the payload must fail on read instead
        # of silently serving the word-padding zeros.
        reader = BlockBitReader(b"\x01", bit_length=16)
        with pytest.raises(CodecError):
            reader.read_bits(16)
        ok = BlockBitReader(b"\x01", bit_length=16)
        assert ok.read_bits(8) == 1
        with pytest.raises(CodecError):
            ok.read_bits(8)

    def test_swar_popcount_matches_native(self):
        from repro._kernels.bitops import _popcount64_swar, popcount64

        rng = np.random.default_rng(3)
        samples = np.concatenate([
            rng.integers(0, 1 << 63, 500).astype(np.uint64),
            np.array([0, 1, (1 << 64) - 1, 1 << 63], dtype=np.uint64),
        ])
        assert _popcount64_swar(samples).tolist() == popcount64(samples).tolist()

    def test_bitcount_kernels(self):
        values = np.array([0, 1, 2, 3, 1 << 63, (1 << 64) - 1, 0x00F0_0000_0000_0000],
                          dtype=np.uint64)
        expected_clz = [64, 63, 62, 62, 0, 0, 8]
        expected_ctz = [64, 0, 1, 0, 63, 0, 52]
        assert clz64(values).tolist() == expected_clz
        assert ctz64(values).tolist() == expected_ctz


_CODEC_FLOATS = st.floats(allow_nan=False, allow_infinity=False, width=64,
                          allow_subnormal=True)


class TestCodecCrossChecks:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(_CODEC_FLOATS, min_size=1, max_size=60))
    def test_gorilla_byte_identical_to_reference(self, values):
        signal = np.asarray(values, dtype=np.float64)
        payload, bits, count = GorillaCodec().encode(signal)
        reference_payload, reference_bits, reference_count = \
            reference_gorilla_encode(signal)
        assert (payload, bits, count) == (reference_payload, reference_bits,
                                          reference_count)
        assert np.array_equal(GorillaCodec().decode(payload, bits, count), signal)
        assert np.array_equal(reference_gorilla_decode(payload, bits, count), signal)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(_CODEC_FLOATS, min_size=1, max_size=60))
    def test_chimp_byte_identical_to_reference(self, values):
        signal = np.asarray(values, dtype=np.float64)
        payload, bits, count = ChimpCodec().encode(signal)
        reference_payload, reference_bits, reference_count = \
            reference_chimp_encode(signal)
        assert (payload, bits, count) == (reference_payload, reference_bits,
                                          reference_count)
        assert np.array_equal(ChimpCodec().decode(payload, bits, count), signal)
        assert np.array_equal(reference_chimp_decode(payload, bits, count), signal)

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_negative_zero_and_denormals(self, codec_cls):
        signal = np.array([0.0, -0.0, 5e-324, -5e-324, -0.0, 0.0, 1.0, -0.0])
        codec = codec_cls()
        payload, bits, count = codec.encode(signal)
        decoded = codec.decode(payload, bits, count)
        assert decoded.view(np.uint64).tolist() == signal.view(np.uint64).tolist()

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_length_one_series(self, codec_cls):
        codec = codec_cls()
        payload, bits, count = codec.encode(np.array([-123.456]))
        assert (bits, count) == (64, 1)
        assert codec.decode(payload, bits, count).tolist() == [-123.456]

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_empty_series_rejected(self, codec_cls):
        with pytest.raises(InvalidSeriesError):
            codec_cls().encode(np.array([], dtype=np.float64))

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_nan_and_inf_series_rejected(self, codec_cls):
        # The validation layer rejects non-finite *series* (their bit
        # patterns still travel fine through the raw bitstream, covered
        # above); the behaviour matches the original implementation.
        with pytest.raises(InvalidSeriesError):
            codec_cls().encode(np.array([1.0, float("nan")]))
        with pytest.raises(InvalidSeriesError):
            codec_cls().encode(np.array([1.0, float("inf")]))

    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec])
    def test_truncated_payload_raises(self, codec_cls):
        codec = codec_cls()
        signal = np.linspace(0.0, 1.0, 32)
        payload, bits, count = codec.encode(signal)
        with pytest.raises(CodecError):
            codec.decode(payload[: len(payload) // 2], bits, count)
        with pytest.raises(CodecError):
            codec.decode(payload, bits // 2, count)
