"""The bundled corpus and the ingest pipeline — fully offline, always.

No test here (or anywhere in the suite) touches the network: the bundled
snapshots are the default byte source, and the fetch/cache logic is
exercised with fake in-memory fetchers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data.timeseries import TimeSeries
from repro.exceptions import ChecksumMismatchError, IngestError
from repro.ingest import (
    BUNDLED_DIR,
    CORPUS,
    BundledFetcher,
    CachedFetcher,
    DatasetSource,
    corpus_names,
    corpus_source,
    corpus_to_store,
    fetch_bytes,
    load_corpus,
    load_corpus_series,
    parse_csv_column,
    sha256_hex,
    source_to_series,
    verify_corpus,
)

#: Expected lengths of the bundled series (their published sizes).
EXPECTED_POINTS = {"airline": 144, "lynx": 114, "nile": 100, "sunspots": 100}


class FakeFetcher:
    """In-memory fetcher standing in for a network source."""

    def __init__(self, payload: bytes):
        self.payload = payload
        self.calls = 0

    def fetch(self, source: DatasetSource) -> bytes:
        self.calls += 1
        return self.payload


class TestBundledSnapshots:
    def test_every_snapshot_matches_its_pin(self):
        for source in CORPUS.values():
            payload = (BUNDLED_DIR / source.filename).read_bytes()
            assert sha256_hex(payload) == source.sha256, source.name

    def test_manifest_agrees_with_the_pins(self):
        manifest = json.loads(
            (BUNDLED_DIR / "MANIFEST.json").read_text(encoding="utf-8"))
        for source in CORPUS.values():
            entry = manifest[source.filename]
            assert entry["sha256"] == source.sha256
            assert entry["bytes"] == (BUNDLED_DIR / source.filename).stat().st_size

    def test_verify_corpus_returns_every_pin(self):
        assert verify_corpus() == {
            name: source.sha256 for name, source in CORPUS.items()}


class TestCorpusLoading:
    def test_names_and_sources(self):
        assert corpus_names() == ["airline", "lynx", "nile", "sunspots"]
        assert corpus_source("AIRLINE").name == "airline"
        with pytest.raises(IngestError, match="unknown corpus series"):
            corpus_source("no-such-series")

    @pytest.mark.parametrize("name", sorted(EXPECTED_POINTS))
    def test_series_loads_offline_with_provenance(self, name):
        series = load_corpus_series(name)
        assert isinstance(series, TimeSeries)
        assert series.values.size == EXPECTED_POINTS[name]
        assert series.values.dtype == np.float64
        assert np.all(np.isfinite(series.values))
        assert series.metadata["sha256"] == CORPUS[name].sha256
        assert series.metadata["corpus"] is True
        assert series.metadata["license"]
        assert series.metadata["origin"]

    def test_known_values_are_exact(self):
        # First/last values of the published series: a parsing or snapshot
        # regression cannot shift the data without tripping these.
        airline = load_corpus_series("airline").values
        assert (airline[0], airline[-1]) == (112.0, 432.0)
        nile = load_corpus_series("nile").values
        assert (nile[0], nile[-1]) == (1120.0, 740.0)

    def test_load_corpus_loads_everything_in_order(self):
        corpus = load_corpus()
        assert list(corpus) == corpus_names()
        assert all(isinstance(series, TimeSeries) for series in corpus.values())

    def test_corpus_round_trips_through_the_store(self):
        store = corpus_to_store()
        for name, series in load_corpus().items():
            np.testing.assert_array_equal(store.read(name), series.values)
            assert store.info(name).metadata["sha256"] == CORPUS[name].sha256


class TestChecksumEnforcement:
    def test_tampered_bytes_raise(self):
        source = corpus_source("airline")
        fetcher = FakeFetcher(b"month,passengers\n1949-01,999\n")
        with pytest.raises(ChecksumMismatchError, match="SHA-256 mismatch"):
            fetch_bytes(source, fetcher=fetcher)

    def test_tampered_bundle_raises(self, tmp_path):
        source = corpus_source("airline")
        (tmp_path / source.filename).write_bytes(b"not the snapshot")
        with pytest.raises(ChecksumMismatchError):
            fetch_bytes(source, fetcher=BundledFetcher(tmp_path))

    def test_missing_bundle_raises_ingest_error(self, tmp_path):
        with pytest.raises(IngestError, match="missing"):
            fetch_bytes(corpus_source("airline"), fetcher=BundledFetcher(tmp_path))

    def test_custom_fetcher_still_verified(self):
        source = corpus_source("lynx")
        payload = (BUNDLED_DIR / source.filename).read_bytes()
        assert fetch_bytes(source, fetcher=FakeFetcher(payload)) == payload


class TestCachedFetcher:
    def _source(self, payload: bytes) -> DatasetSource:
        return DatasetSource(name="fake", filename="fake.csv",
                             sha256=sha256_hex(payload), column="value")

    def test_fetches_once_then_serves_from_cache(self, tmp_path):
        payload = b"value\n1.0\n2.0\n"
        inner = FakeFetcher(payload)
        cached = CachedFetcher(inner, cache_dir=tmp_path)
        source = self._source(payload)
        for _ in range(3):
            assert cached.fetch(source) == payload
        assert inner.calls == 1
        assert (cached.hits, cached.misses) == (2, 1)
        assert cached.cache_path(source).is_file()

    def test_corrupted_cache_entry_is_refetched(self, tmp_path):
        payload = b"value\n1.0\n2.0\n"
        inner = FakeFetcher(payload)
        cached = CachedFetcher(inner, cache_dir=tmp_path)
        source = self._source(payload)
        cached.fetch(source)
        cached.cache_path(source).write_bytes(b"bit rot")
        assert cached.fetch(source) == payload
        assert inner.calls == 2
        assert cached.cache_path(source).read_bytes() == payload

    def test_bad_bytes_are_never_cached(self, tmp_path):
        payload = b"value\n1.0\n"
        cached = CachedFetcher(FakeFetcher(b"tampered"), cache_dir=tmp_path)
        with pytest.raises(ChecksumMismatchError):
            cached.fetch(self._source(payload))
        assert list(tmp_path.iterdir()) == []

    def test_checksum_bump_invalidates_the_old_entry(self, tmp_path):
        old = b"value\n1.0\n"
        new = b"value\n2.0\n"
        cached = CachedFetcher(FakeFetcher(old), cache_dir=tmp_path)
        cached.fetch(self._source(old))
        # The pin changed (new upstream snapshot): the old entry's key no
        # longer matches, so the new bytes are fetched and cached separately.
        cached.inner = FakeFetcher(new)
        assert cached.fetch(self._source(new)) == new
        assert cached.misses == 2

    def test_cache_dir_honours_environment_override(self, tmp_path, monkeypatch):
        from repro.ingest.pipeline import CACHE_ENV, default_cache_dir
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestParsing:
    def test_parse_csv_column_picks_the_named_column(self):
        payload = b"year,flow\n1871,1120\n1872,1160\n"
        np.testing.assert_array_equal(parse_csv_column(payload, "flow"),
                                      [1120.0, 1160.0])

    def test_unknown_column_raises(self):
        with pytest.raises(IngestError, match="not in CSV header"):
            parse_csv_column(b"year,flow\n1871,1120\n", "level")

    def test_headerless_or_empty_payload_raises(self):
        with pytest.raises(IngestError, match="no data rows"):
            parse_csv_column(b"year,flow\n", "flow")

    def test_non_numeric_cell_raises(self):
        with pytest.raises(IngestError, match="cannot parse"):
            parse_csv_column(b"year,flow\n1871,n/a\n", "flow")

    def test_source_to_series_supports_custom_parse(self):
        source = DatasetSource(name="blob", filename="blob.bin",
                               sha256=sha256_hex(b"\x01\x02"))
        series = source_to_series(source, b"\x01\x02",
                                  parse=lambda raw: np.frombuffer(raw, dtype=np.uint8)
                                  .astype(np.float64))
        np.testing.assert_array_equal(series.values, [1.0, 2.0])
