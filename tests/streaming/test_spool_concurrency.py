"""Concurrency coverage for the WAL spool: replay vs live ingest.

The service serializes every touch of its shared
:class:`~repro.streaming.MultiStreamCompressor` behind one lock; these
tests pin down the contracts that discipline relies on:

* ``replay_spool`` is a *boot-time* operation — it refuses to run once
  live ingestion has started, so a replay can never interleave with
  ``add``/``drain`` on the same compressor;
* concurrent locked ingest across threads conserves every acked value
  through an abrupt (crash-like) spool close and a fresh replay;
* concurrent retries of one idempotency key apply its batch exactly once.

The ``-m stress`` soak repeats the crash/replay cycle across seeds and
rounds; the unmarked tests are the deterministic tier-1 subset.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.streaming import MultiStreamCompressor


def _fresh(tmp_path, **kwargs):
    kwargs.setdefault("spool_to", tmp_path / "spool")
    return MultiStreamCompressor(8, "gorilla", **kwargs)


class TestReplayGuards:
    def test_replay_refused_after_add(self, tmp_path):
        multi = _fresh(tmp_path)
        multi.add("s", [1.0, 2.0])
        with pytest.raises(InvalidParameterError, match="before any values"):
            multi.replay_spool()
        multi.close()

    def test_replay_refused_without_spool(self, tmp_path):
        multi = MultiStreamCompressor(8, "gorilla")
        with pytest.raises(InvalidParameterError, match="no spool"):
            multi.replay_spool()


def _concurrent_ingest(multi, *, threads: int, batches: int, seed: int):
    """Locked multi-thread ingest, one stream per thread; returns acked."""
    lock = threading.Lock()
    acked: dict[str, list[float]] = {f"t{i}": [] for i in range(threads)}
    errors: list[BaseException] = []

    def run(stream: str, worker_seed: int) -> None:
        rng = np.random.default_rng(worker_seed)
        try:
            for _ in range(batches):
                values = [float(v) for v in
                          np.round(rng.normal(size=int(rng.integers(1, 14))),
                                   3)]
                with lock:
                    multi.add(stream, values)
                    acked[stream].extend(values)
                    if rng.random() < 0.3:
                        multi.drain()
        except BaseException as error:  # surfaced by the main thread
            errors.append(error)

    workers = [threading.Thread(target=run, args=(f"t{i}", seed * 101 + i))
               for i in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=60)
    assert not errors, errors
    return acked


class TestConcurrentIngestThenReplay:
    def test_crash_replay_conserves_every_acked_value(self, tmp_path):
        multi = _fresh(tmp_path)
        acked = _concurrent_ingest(multi, threads=4, batches=12, seed=7)
        # Crash: close the spool abruptly, skipping every graceful step.
        multi.spool.close()

        rebooted = _fresh(tmp_path)
        replayed = rebooted.replay_spool()
        rebooted.flush()
        assert replayed > 0
        for stream, values in acked.items():
            reconstructed = rebooted.reconstruct(stream)
            # Values drained before the crash were compacted out of the
            # spool; what replays must be exactly the undrained suffix —
            # never duplicated, reordered, or corrupted.
            suffix = np.asarray(values[len(values) - reconstructed.size:],
                                dtype=np.float64)
            assert reconstructed.size <= len(values)
            np.testing.assert_allclose(reconstructed, suffix, atol=1e-2)
        rebooted.close()

    def test_concurrent_retries_of_one_key_apply_once(self, tmp_path):
        multi = _fresh(tmp_path)
        lock = threading.Lock()
        outcomes: list[bool] = []

        def retry() -> None:
            with lock:
                _sealed, duplicate = multi.add_idempotent(
                    "s", [4.2] * 12, "the-key")
            outcomes.append(duplicate)

        workers = [threading.Thread(target=retry) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=30)
        assert len(outcomes) == 8
        assert outcomes.count(False) == 1, "key applied more than once"
        assert multi.report("s").ingested_points == 12
        multi.close()


@pytest.mark.stress
@pytest.mark.parametrize("seed", tuple(range(8)), ids=lambda s: f"seed{s}")
def test_spool_concurrency_soak(seed, tmp_path):
    """Rounds of concurrent ingest + crash + replay, across seeds."""
    rng = np.random.default_rng(seed)
    tail: dict[str, int] = {}
    for round_index in range(3):
        multi = _fresh(tmp_path)
        if round_index:
            multi.replay_spool()
        acked = _concurrent_ingest(
            multi, threads=int(rng.integers(2, 6)),
            batches=int(rng.integers(6, 20)), seed=seed * 13 + round_index)
        for stream, values in acked.items():
            tail[stream] = tail.get(stream, 0) + len(values)
        multi.spool.close()     # crash between rounds

    final = _fresh(tmp_path)
    replayed = final.replay_spool()
    final.flush()
    assert replayed >= 0
    for stream in tail:
        # Whatever survived compaction reconstructs without error and never
        # exceeds what was acked in total.
        assert final.reconstruct(stream).size <= tail[stream]
    final.close()
