"""Property-based tests for the input-policy layer (``repro.sanitize``).

Hypothesis drives random NaN-run placements, gap patterns, and shuffled
arrival orders through :func:`repro.sanitize.sanitize` and the streaming
compressors, asserting the invariants the layer promises:

* kept values are exactly the finite input values, in (time)order;
* ``restore_shape`` is the exact inverse of ``on_nan="split"``;
* segment boundaries are strictly inside the kept array and sealed chunks
  never bridge them;
* stream accounting always balances: ``ingested = sealed + buffered +
  dropped``;
* clean input is returned as the *same array object* (bit-identity of
  sanitized and unsanitized runs).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PolicyViolationError
from repro.sanitize import InputPolicy, restore_shape, sanitize
from repro.streaming import StreamingCompressor

SETTINGS = settings(max_examples=40, deadline=None)

finite_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False, width=64),
    min_size=1, max_size=120)


@st.composite
def values_with_nan_runs(draw):
    """A finite base array with random NaN runs spliced in."""
    base = np.asarray(draw(finite_values), dtype=np.float64)
    run_count = draw(st.integers(min_value=1, max_value=4))
    values = base
    for _ in range(run_count):
        position = draw(st.integers(min_value=0, max_value=values.size))
        length = draw(st.integers(min_value=1, max_value=6))
        values = np.concatenate([values[:position],
                                 np.full(length, np.nan), values[position:]])
    return values


@st.composite
def gapped_timestamps(draw, size):
    """Mostly-regular timestamps with a few large gaps; returns (stamps, gaps)."""
    deltas = np.ones(size - 1, dtype=np.float64)
    gap_count = draw(st.integers(min_value=0, max_value=min(3, size - 1)))
    gap_positions = draw(st.lists(
        st.integers(min_value=0, max_value=size - 2),
        min_size=gap_count, max_size=gap_count, unique=True))
    for position in gap_positions:
        deltas[position] = draw(st.floats(min_value=50.0, max_value=1e4))
    stamps = np.concatenate([[0.0], np.cumsum(deltas)])
    return stamps, len(gap_positions)


class TestNanRunProperties:
    @SETTINGS
    @given(values=values_with_nan_runs())
    def test_split_drops_exactly_the_nans(self, values):
        result = sanitize(values, InputPolicy(on_nan="split"))
        finite = values[~np.isnan(values)]
        assert np.array_equal(result.values, finite)
        assert result.report.dropped_nan == int(np.isnan(values).sum())
        assert result.report.final_length == finite.size

    @SETTINGS
    @given(values=values_with_nan_runs())
    def test_restore_shape_inverts_split(self, values):
        result = sanitize(values, InputPolicy(on_nan="split"))
        restored = restore_shape(result.values,
                                 result.report.as_metadata())
        assert restored.size == values.size
        nan_mask = np.isnan(values)
        assert np.array_equal(np.isnan(restored), nan_mask)
        assert np.array_equal(restored[~nan_mask], values[~nan_mask])

    @SETTINGS
    @given(values=values_with_nan_runs())
    def test_segment_starts_are_interior_and_increasing(self, values):
        result = sanitize(values, InputPolicy(on_nan="split"))
        starts = result.segment_starts
        assert starts == sorted(set(starts))
        assert all(0 < start < result.values.size for start in starts)

    @SETTINGS
    @given(values=values_with_nan_runs())
    def test_skip_matches_split_values(self, values):
        skip = sanitize(values, InputPolicy(on_nan="skip"))
        split = sanitize(values, InputPolicy(on_nan="split"))
        assert np.array_equal(skip.values, split.values)
        assert skip.report.nan_runs == []  # skip records only counts
        assert skip.segment_starts == []

    @SETTINGS
    @given(values=values_with_nan_runs())
    def test_default_policy_raises(self, values):
        with pytest.raises(PolicyViolationError):
            sanitize(values)


class TestTimestampProperties:
    @SETTINGS
    @given(data=st.data(), values=finite_values)
    def test_gap_split_partitions_the_values(self, data, values):
        values = np.asarray(values, dtype=np.float64)
        if values.size < 2:
            return
        stamps, gap_count = data.draw(gapped_timestamps(size=values.size))
        result = sanitize(values, InputPolicy(on_gap="split", gap_limit=10.0),
                          timestamps=stamps)
        assert result.report.gaps == gap_count
        assert len(result.segment_starts) == gap_count
        segments = np.split(result.values, result.segment_starts)
        assert np.array_equal(np.concatenate(segments), values)

    @SETTINGS
    @given(data=st.data(), values=finite_values)
    def test_sort_recovers_timestamp_order(self, data, values):
        values = np.asarray(values, dtype=np.float64)
        order = data.draw(st.permutations(range(values.size)))
        stamps = np.asarray(order, dtype=np.float64)
        result = sanitize(values, InputPolicy(on_out_of_order="sort",
                                              on_gap="ignore"),
                          timestamps=stamps)
        inverse = np.argsort(stamps, kind="stable")
        assert np.array_equal(result.values, values[inverse])
        assert result.report.sorted == bool(
            values.size > 1 and np.any(np.diff(stamps) < 0))

    @SETTINGS
    @given(values=finite_values)
    def test_monotonic_timestamps_are_clean(self, values):
        values = np.asarray(values, dtype=np.float64)
        stamps = np.arange(values.size, dtype=np.float64)
        result = sanitize(values, InputPolicy(on_gap="split",
                                              on_out_of_order="sort"),
                          timestamps=stamps)
        assert result.values is values
        assert result.report.clean


class TestCleanInputIdentity:
    @SETTINGS
    @given(values=finite_values)
    def test_clean_input_is_same_object(self, values):
        array = np.asarray(values, dtype=np.float64)
        result = sanitize(array, InputPolicy(on_nan="split", on_inf="skip"))
        assert result.values is array
        assert result.report.clean
        assert result.segment_starts == []

    @SETTINGS
    @given(values=finite_values)
    def test_streaming_bit_identity_on_clean_input(self, values):
        array = np.asarray(values, dtype=np.float64)
        plain = StreamingCompressor(16, codec="gorilla")
        policed = StreamingCompressor(16, codec="gorilla",
                                      policy=InputPolicy(on_nan="split",
                                                         on_gap="split"))
        chunks_plain = plain.add(array) + plain.flush()
        chunks_policed = policed.add(array) + policed.flush()
        assert [chunk.block.payload for chunk in chunks_plain] \
            == [chunk.block.payload for chunk in chunks_policed]


class TestStreamingAccounting:
    @SETTINGS
    @given(values=values_with_nan_runs(),
           chunk_size=st.integers(min_value=2, max_value=40))
    def test_ingest_balance_invariant(self, values, chunk_size):
        stream = StreamingCompressor(chunk_size, codec="gorilla",
                                     policy=InputPolicy(on_nan="split"))
        stream.add(values)
        report = stream.report()
        assert report.ingested_points == (report.sealed_points
                                          + report.buffered_points
                                          + report.dropped_points)
        assert report.dropped_points == int(np.isnan(values).sum())
        stream.flush()
        report = stream.report()
        assert report.buffered_points == 0
        finite = values[~np.isnan(values)]
        assert report.sealed_points == finite.size
        assert np.array_equal(stream.reconstruct(), finite)

    @SETTINGS
    @given(values=values_with_nan_runs(),
           chunk_size=st.integers(min_value=2, max_value=40))
    def test_no_sealed_chunk_bridges_a_nan_run(self, values, chunk_size):
        """Each sealed chunk must come entirely from one gap-free segment."""
        stream = StreamingCompressor(chunk_size, codec="gorilla",
                                     policy=InputPolicy(on_nan="split"))
        chunks = stream.add(values) + stream.flush()
        # Segment boundaries in kept coordinates, straight from sanitize.
        boundaries = set(
            sanitize(values, InputPolicy(on_nan="split")).segment_starts)
        offset = 0
        for chunk in chunks:
            interior = set(range(offset + 1, offset + chunk.length))
            assert not (interior & boundaries), \
                f"chunk at offset {offset} bridges a NaN run"
            offset += chunk.length
