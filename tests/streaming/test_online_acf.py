"""Tests for the streaming ACF estimator and drift monitor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.stats import acf
from repro.streaming import AcfDriftMonitor, DriftEvent, OnlineAcfEstimator

RNG = np.random.default_rng(5)


def _seasonal(n: int, period: int = 24, noise: float = 0.1) -> np.ndarray:
    t = np.arange(n)
    return np.sin(2 * np.pi * t / period) + noise * RNG.standard_normal(n)


class TestOnlineAcfEstimator:
    def test_matches_batch_acf(self):
        x = _seasonal(600)
        estimator = OnlineAcfEstimator(max_lag=30)
        estimator.update(x)
        np.testing.assert_allclose(estimator.acf(), acf(x, 30), atol=1e-9)

    def test_incremental_batches_equal_single_batch(self):
        x = _seasonal(500)
        whole = OnlineAcfEstimator(max_lag=12)
        whole.update(x)
        parts = OnlineAcfEstimator(max_lag=12)
        for chunk in np.array_split(x, 7):
            parts.update(chunk)
        np.testing.assert_allclose(parts.acf(), whole.acf(), atol=1e-12)
        assert parts.count == x.size

    def test_short_stream_unobservable_lags_are_zero(self):
        estimator = OnlineAcfEstimator(max_lag=10)
        estimator.update([1.0, 2.0, 3.0])
        result = estimator.acf()
        assert result.size == 10
        assert np.all(result[2:] == 0.0)

    def test_constant_stream_yields_zero_acf(self):
        estimator = OnlineAcfEstimator(max_lag=5)
        estimator.update(np.full(100, 7.0))
        np.testing.assert_array_equal(estimator.acf(), np.zeros(5))

    def test_acf_with_smaller_max_lag(self):
        x = _seasonal(200)
        estimator = OnlineAcfEstimator(max_lag=20)
        estimator.update(x)
        np.testing.assert_allclose(estimator.acf(5), acf(x, 20)[:5], atol=1e-9)

    def test_invalid_requested_lag(self):
        estimator = OnlineAcfEstimator(max_lag=5)
        estimator.update(_seasonal(50))
        with pytest.raises(InvalidParameterError):
            estimator.acf(0)

    def test_rejects_non_finite_values(self):
        estimator = OnlineAcfEstimator(max_lag=3)
        with pytest.raises(InvalidSeriesError):
            estimator.push(np.nan)

    def test_invalid_max_lag(self):
        with pytest.raises(InvalidParameterError):
            OnlineAcfEstimator(max_lag=0)

    @given(arrays(np.float64, st.integers(min_value=20, max_value=150),
                  elements=st.floats(min_value=-100, max_value=100,
                                     allow_nan=False, allow_infinity=False)))
    @settings(max_examples=25, deadline=None)
    def test_streaming_equals_batch_property(self, x):
        # Near-constant series are numerically degenerate for both the batch
        # and the streaming estimator (0/0 correlations); skip them.
        assume(float(np.std(x)) > 1e-6)
        estimator = OnlineAcfEstimator(max_lag=8)
        estimator.update(x)
        np.testing.assert_allclose(estimator.acf(), acf(x, 8), atol=1e-6)


class TestAcfDriftMonitor:
    def test_no_drift_on_stationary_stream(self):
        x = _seasonal(2_000, period=24)
        monitor = AcfDriftMonitor(max_lag=24, window=240, threshold=0.2)
        events = monitor.update(x)
        assert events == []
        assert monitor.reference is not None

    def test_detects_seasonality_change(self):
        stable = _seasonal(1_000, period=24)
        changed = _seasonal(1_000, period=7)
        monitor = AcfDriftMonitor(max_lag=24, window=240, threshold=0.15)
        assert monitor.update(stable) == []
        events = monitor.update(changed)
        assert len(events) >= 1
        assert isinstance(events[0], DriftEvent)
        assert events[0].deviation >= 0.15
        assert events[0].position > 1_000

    def test_explicit_reference(self):
        x = _seasonal(600, period=24)
        reference = acf(x, 24)
        monitor = AcfDriftMonitor(max_lag=24, window=200, threshold=0.15,
                                  reference=reference)
        np.testing.assert_array_equal(monitor.reference, reference)
        assert monitor.update(x) == []

    def test_cooldown_limits_event_rate(self):
        stable = _seasonal(600, period=24)
        noise = RNG.standard_normal(1_200)
        low_cooldown = AcfDriftMonitor(max_lag=24, window=120, threshold=0.1, cooldown=1)
        high_cooldown = AcfDriftMonitor(max_lag=24, window=120, threshold=0.1, cooldown=600)
        for monitor in (low_cooldown, high_cooldown):
            monitor.update(stable)
            monitor.update(noise)
        assert len(high_cooldown.events) <= len(low_cooldown.events)
        assert len(high_cooldown.events) <= 2

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            AcfDriftMonitor(max_lag=24, window=20, threshold=0.1)
        with pytest.raises(InvalidParameterError):
            AcfDriftMonitor(max_lag=24, window=100, threshold=0.0)
        with pytest.raises(InvalidParameterError):
            AcfDriftMonitor(max_lag=24, window=100, threshold=0.1, reference=[0.1, 0.2])

    def test_rejects_non_finite(self):
        monitor = AcfDriftMonitor(max_lag=4, window=20, threshold=0.1)
        with pytest.raises(InvalidSeriesError):
            monitor.push(np.inf)

    def test_events_recorded_on_monitor(self):
        monitor = AcfDriftMonitor(max_lag=12, window=100, threshold=0.1)
        monitor.update(_seasonal(400, period=12))
        monitor.update(RNG.standard_normal(400))
        assert monitor.events == [] or all(isinstance(e, DriftEvent) for e in monitor.events)
