"""Tests for the chunked streaming CAMEO compressor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import available_codecs, codec_spec, get_codec
from repro.data.timeseries import IrregularSeries
from repro.exceptions import InvalidParameterError, InvalidSeriesError
from repro.stats import acf
from repro.streaming import StreamingCameoCompressor, StreamingCompressor, concat_irregular

RNG = np.random.default_rng(9)


def _seasonal(n: int, period: int = 24, noise: float = 0.05) -> np.ndarray:
    t = np.arange(n)
    return 5 + np.sin(2 * np.pi * t / period) + noise * RNG.standard_normal(n)


class TestStreamingCompressor:
    def test_chunks_cover_the_stream(self):
        stream = StreamingCameoCompressor(chunk_size=200, max_lag=24, epsilon=0.05)
        x = _seasonal(730)
        chunks = stream.add(x) + stream.finalize()
        assert [c.length for c in chunks] == [200, 200, 200, 130]
        assert [c.start for c in chunks] == [0, 200, 400, 600]
        assert sum(c.kept_points for c in chunks) == stream.report().kept_points

    def test_every_chunk_honours_the_bound(self):
        epsilon = 0.03
        stream = StreamingCameoCompressor(chunk_size=240, max_lag=24, epsilon=epsilon)
        x = _seasonal(960)
        chunks = stream.add(x) + stream.finalize()
        for chunk in chunks:
            original = x[chunk.start: chunk.start + chunk.length]
            reconstruction = chunk.compressed.decompress()
            lag = min(24, chunk.length - 1)
            deviation = float(np.mean(np.abs(acf(original, lag) - acf(reconstruction, lag))))
            assert deviation <= epsilon + 1e-9
            assert chunk.achieved_deviation <= epsilon + 1e-9

    def test_incremental_feeding_matches_bulk_feeding(self):
        x = _seasonal(600)
        bulk = StreamingCameoCompressor(chunk_size=150, max_lag=12, epsilon=0.05)
        bulk_chunks = bulk.add(x) + bulk.finalize()
        drip = StreamingCameoCompressor(chunk_size=150, max_lag=12, epsilon=0.05)
        drip_chunks = []
        for value in x:
            drip_chunks.extend(drip.add(value))
        drip_chunks.extend(drip.finalize())
        assert len(bulk_chunks) == len(drip_chunks)
        for a, b in zip(bulk_chunks, drip_chunks):
            np.testing.assert_array_equal(a.compressed.indices, b.compressed.indices)
            np.testing.assert_array_equal(a.compressed.values, b.compressed.values)

    def test_report_accounting(self):
        stream = StreamingCameoCompressor(chunk_size=128, max_lag=16, epsilon=0.05)
        x = _seasonal(300)
        stream.add(x)
        report = stream.report()
        assert report.ingested_points == 300
        assert report.sealed_points == 256
        assert report.buffered_points == 44
        assert report.chunks == 2
        assert report.compression_ratio >= 1.0
        assert len(report.chunk_deviations) == 2
        assert report.worst_chunk_deviation == max(report.chunk_deviations)

    def test_global_acf_tracks_raw_stream(self):
        stream = StreamingCameoCompressor(chunk_size=128, max_lag=12, epsilon=0.05)
        x = _seasonal(500)
        stream.add(x)
        np.testing.assert_allclose(stream.global_acf(), acf(x, 12), atol=1e-9)

    def test_global_acf_disabled(self):
        stream = StreamingCameoCompressor(chunk_size=128, max_lag=12, epsilon=0.05,
                                          track_global_acf=False)
        stream.add(_seasonal(200))
        with pytest.raises(InvalidParameterError):
            stream.global_acf()

    def test_finalize_empty_buffer_returns_nothing(self):
        stream = StreamingCameoCompressor(chunk_size=100, max_lag=10, epsilon=0.05)
        stream.add(_seasonal(200))
        assert stream.finalize() == []

    def test_finalize_single_value_rejected(self):
        stream = StreamingCameoCompressor(chunk_size=100, max_lag=10, epsilon=0.05)
        stream.add(_seasonal(201))
        with pytest.raises(InvalidSeriesError):
            stream.finalize()

    def test_chunk_size_must_exceed_lags(self):
        with pytest.raises(InvalidParameterError):
            StreamingCameoCompressor(chunk_size=30, max_lag=24, epsilon=0.05)

    def test_compressor_options_forwarded(self):
        stream = StreamingCameoCompressor(chunk_size=200, max_lag=12, epsilon=0.05,
                                          statistic="pacf", blocking="1logn")
        chunks = stream.add(_seasonal(200))
        assert chunks[0].compressed.metadata["statistic"] == "pacf"

    def test_non_default_knobs_survive_the_chunk_boundary(self):
        # Every configured knob must reach the per-chunk compressor AND be
        # visible in each sealed block's metadata (not just in the codec).
        stream = StreamingCameoCompressor(
            chunk_size=200, max_lag=12, epsilon=0.05,
            blocking=3, batch_size=1, on_violation="skip", metric="cheb")
        compressor = stream.codec._compressor
        assert compressor.blocking == 3
        assert compressor.batch_size == 1
        assert compressor.on_violation == "skip"
        chunks = stream.add(_seasonal(450)) + stream.flush()
        assert len(chunks) >= 2
        for chunk in chunks:
            metadata = chunk.block.metadata
            if metadata.get("short_segment"):
                continue
            assert metadata["blocking"] == 3
            assert metadata["batch_size"] == 1
            assert metadata["metric"] == "cheb"
            assert metadata["stopped_by"] is not None
            # The bulky reference vector must not ride along.
            assert "reference_statistic" not in metadata

    def test_speculative_batch_survives_name_based_codec_route(self):
        stream = StreamingCompressor(
            chunk_size=128, codec="cameo",
            codec_options=dict(max_lag=10, epsilon=0.05, batch_size=4,
                               blocking=5))
        chunks = stream.add(_seasonal(256)) + stream.flush()
        for chunk in chunks:
            if chunk.block.metadata.get("short_segment"):
                continue
            assert chunk.block.metadata["batch_size"] == 4
            assert chunk.block.metadata["blocking"] == 5


class TestStreamingGenericCodec:
    """Edge cases of the codec-generic stream compressor."""

    def test_empty_stream_flush_returns_nothing(self):
        stream = StreamingCompressor(chunk_size=64, codec="raw")
        assert stream.flush() == []
        assert stream.finalize() == []
        assert stream.reconstruct().size == 0
        report = stream.report()
        assert report.chunks == 0 and report.ingested_points == 0
        assert report.compression_ratio == 1.0

    def test_final_partial_chunk_via_flush(self):
        stream = StreamingCompressor(chunk_size=100, codec="gorilla")
        x = _seasonal(250)
        sealed = stream.add(x)
        assert [c.length for c in sealed] == [100, 100]
        tail = stream.flush()
        assert [c.length for c in tail] == [50]
        assert stream.report().buffered_points == 0
        np.testing.assert_array_equal(stream.reconstruct(), x)

    def test_chunk_size_one(self):
        stream = StreamingCompressor(chunk_size=1, codec="raw")
        x = _seasonal(10)
        sealed = stream.add(x)
        assert len(sealed) == 10
        assert all(c.length == 1 for c in sealed)
        assert stream.flush() == []
        np.testing.assert_array_equal(stream.reconstruct(), x)

    def test_codec_instance_and_options_are_exclusive(self):
        with pytest.raises(InvalidParameterError):
            StreamingCompressor(chunk_size=8, codec=get_codec("raw"),
                                codec_options={"x": 1})

    def test_global_acf_disabled_by_default(self):
        stream = StreamingCompressor(chunk_size=8, codec="raw")
        stream.add(_seasonal(16))
        with pytest.raises(InvalidParameterError):
            stream.global_acf()

    def test_report_tracks_encoded_bits(self):
        stream = StreamingCompressor(chunk_size=128, codec="gorilla")
        x = _seasonal(256)
        stream.add(x)
        report = stream.report()
        assert report.encoded_bits == sum(c.block.bits for c in stream.results)
        assert report.bits_per_value == pytest.approx(report.encoded_bits / 256.0)

    def test_non_point_codec_has_no_irregular_view(self):
        stream = StreamingCompressor(chunk_size=64, codec="gorilla")
        stream.add(_seasonal(64))
        with pytest.raises(InvalidParameterError):
            stream.to_irregular()

    @pytest.mark.parametrize("name", sorted(available_codecs()))
    def test_roundtrip_smoke_over_every_registered_codec(self, name, fast_codec_options):
        """Chunks + final flush cover the stream for every codec."""
        stream = StreamingCompressor(chunk_size=100, codec=name,
                                     codec_options=fast_codec_options(name))
        x = _seasonal(230)
        sealed = stream.add(x) + stream.flush()
        assert [c.length for c in sealed] == [100, 100, 30]
        reconstruction = stream.reconstruct()
        assert reconstruction.shape == x.shape
        assert np.all(np.isfinite(reconstruction))
        if codec_spec(name).family in ("raw", "lossless"):
            np.testing.assert_array_equal(reconstruction, x)
        report = stream.report()
        assert report.sealed_points == 230
        assert report.encoded_bits > 0


class TestConcatIrregular:
    def test_roundtrip_against_chunkwise_reconstruction(self):
        stream = StreamingCameoCompressor(chunk_size=250, max_lag=24, epsilon=0.05)
        x = _seasonal(1_000)
        stream.add(x)
        stream.finalize()
        stitched = stream.to_irregular("session")
        assert isinstance(stitched, IrregularSeries)
        assert stitched.original_length == 1_000
        chunkwise = np.concatenate([c.compressed.decompress() for c in stream.results])
        np.testing.assert_allclose(stitched.decompress(), chunkwise)

    def test_stitched_series_preserves_acf_globally(self):
        stream = StreamingCameoCompressor(chunk_size=480, max_lag=24, epsilon=0.01)
        x = _seasonal(1_920)
        stream.add(x)
        stream.finalize()
        reconstruction = stream.to_irregular().decompress()
        deviation = float(np.mean(np.abs(acf(x, 24) - acf(reconstruction, 24))))
        # Per-chunk bound is 0.01; the global deviation stays the same order.
        assert deviation <= 0.03

    def test_empty_chunk_list_rejected(self):
        with pytest.raises(InvalidParameterError):
            concat_irregular([])

    def test_non_irregular_chunk_rejected(self):
        with pytest.raises(InvalidParameterError):
            concat_irregular([np.arange(5)])

    def test_metadata_counts_chunks(self):
        stream = StreamingCameoCompressor(chunk_size=100, max_lag=10, epsilon=0.05)
        stream.add(_seasonal(250))
        stream.finalize()
        stitched = stream.to_irregular()
        assert stitched.metadata["chunks"] == 3


class TestMultiStreamCompressor:
    def test_chunks_match_single_stream_compressor(self):
        """Every multi-stream chunk equals the single-stream chunk bit for bit."""
        from repro.streaming import MultiStreamCompressor

        x_a = np.round(_seasonal(500), 3)
        x_b = np.round(_seasonal(300, period=12), 3)
        multi = MultiStreamCompressor(chunk_size=128, codec="gorilla")
        multi.add("a", x_a)
        multi.add("b", x_b)
        multi.flush()

        for stream, x in (("a", x_a), ("b", x_b)):
            single = StreamingCompressor(chunk_size=128, codec="gorilla")
            single.add(x)
            single.flush()
            multi_results = multi.results(stream)
            assert len(multi_results) == len(single.results)
            for mine, theirs in zip(multi_results, single.results):
                assert mine.block.payload == theirs.block.payload
            assert np.array_equal(multi.reconstruct(stream), x)
            assert multi.report(stream).chunks == single.report().chunks
            assert multi.report(stream).encoded_bits == single.report().encoded_bits

    def test_cameo_chunks_match_single_stream(self):
        from repro.streaming import MultiStreamCompressor

        x = _seasonal(420)
        multi = MultiStreamCompressor(chunk_size=140, codec="cameo",
                                      codec_options=dict(max_lag=12, epsilon=0.05))
        multi.add("s", x)
        multi.flush()
        single = StreamingCompressor(chunk_size=140, codec="cameo",
                                     codec_options=dict(max_lag=12, epsilon=0.05))
        single.add(x)
        single.flush()
        for mine, theirs in zip(multi.results("s"), single.results):
            assert (mine.block.payload.indices.tolist()
                    == theirs.block.payload.indices.tolist())

    def test_drain_batches_across_streams(self):
        from repro.streaming import MultiStreamCompressor

        multi = MultiStreamCompressor(chunk_size=64, codec="gorilla")
        for stream in ("a", "b", "c"):
            sealed = multi.add(stream, np.round(_seasonal(64), 3))
            assert sealed == 1
        assert multi.results("a") == []  # nothing encoded until drain
        sealed_pairs = multi.drain()
        assert len(sealed_pairs) == 3
        assert sorted(stream for stream, _chunk in sealed_pairs) == ["a", "b", "c"]

    def test_failed_chunk_is_isolated(self):
        from repro.streaming import MultiStreamCompressor

        multi = MultiStreamCompressor(chunk_size=32, codec="gorilla")
        multi.add("good", np.round(_seasonal(32), 3))
        multi._pending.append(("bad", np.full(32, np.nan)))
        sealed = multi.flush()
        assert [stream for stream, _chunk in sealed] == ["good"]
        assert len(multi.errors) == 1
        assert multi.errors[0].name == "bad"
        assert multi.results("bad") == []

    def test_unknown_stream_report_raises(self):
        from repro.streaming import MultiStreamCompressor

        multi = MultiStreamCompressor(chunk_size=32, codec="raw")
        with pytest.raises(InvalidParameterError):
            multi.report("nope")
        assert multi.reconstruct("nope").size == 0

    def test_failed_chunk_keeps_stream_offsets_truthful(self):
        from repro.streaming import MultiStreamCompressor

        multi = MultiStreamCompressor(chunk_size=32, codec="gorilla")
        good = np.round(_seasonal(32), 3)
        # NaN input is rejected at add(); an encode-time failure can still
        # happen (codec-specific errors), simulated by injecting a sealed
        # chunk that will fail, *before* a healthy one of the same stream.
        multi._pending.append(("s", np.full(32, np.nan)))
        multi.add("s", good)
        multi.drain()
        assert len(multi.errors) == 1
        results = multi.results("s")
        assert len(results) == 1
        # Chunk 1 starts at stream position 32 even though chunk 0 failed.
        assert results[0].start == 32
        report = multi.report("s")
        assert report.sealed_points == 64
        assert report.chunks == 1
