"""Tests for the Matrix Profile, irregular MP, and UCR scoring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.anomaly import (
    detect_discord,
    irregular_matrix_profile,
    matrix_profile,
    regular_matrix_profile_naive,
    sliding_window_stats,
    top_discord,
    ucr_score,
)
from repro.core import cameo_compress
from repro.data import generate_anomaly_case, generate_anomaly_corpus
from repro.exceptions import InvalidParameterError


def _signal_with_anomaly(n: int = 1500, period: int = 50, seed: int = 0
                         ) -> tuple[np.ndarray, int]:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    x = np.sin(2 * np.pi * t / period) + rng.normal(0, 0.1, n)
    anomaly_at = 1000
    x[anomaly_at:anomaly_at + 3] += 4.0
    return x, anomaly_at


class TestSlidingStats:
    def test_matches_direct_computation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(0, 1, 200)
        means, stds = sliding_window_stats(x, 20)
        assert means.size == 181
        assert means[0] == pytest.approx(np.mean(x[:20]))
        assert stds[50] == pytest.approx(np.std(x[50:70]), abs=1e-9)


class TestMatrixProfile:
    def test_profile_shape(self):
        x, _pos = _signal_with_anomaly(800)
        result = matrix_profile(x, 50)
        assert result.profile.size == x.size - 50 + 1

    def test_discord_located_at_injected_anomaly(self):
        x, anomaly_at = _signal_with_anomaly()
        result = matrix_profile(x, 50)
        assert abs(result.discord_index() - anomaly_at) <= 50

    def test_periodic_signal_has_low_profile(self):
        t = np.arange(600)
        x = np.sin(2 * np.pi * t / 30)
        result = matrix_profile(x, 30)
        # Every subsequence repeats, so normalised distances are near zero
        # except at the exclusion boundaries.
        assert np.median(result.profile) < 0.5

    def test_window_validation(self):
        x, _pos = _signal_with_anomaly(300)
        with pytest.raises(InvalidParameterError):
            matrix_profile(x, 2)
        with pytest.raises(InvalidParameterError):
            matrix_profile(x, 200)

    def test_top_discord_over_window_range(self):
        x, anomaly_at = _signal_with_anomaly(seed=2)
        index, distance, window = top_discord(x, (40, 60))
        assert distance > 0
        assert 40 <= window <= 60
        assert abs(index - anomaly_at) <= 60

    def test_detect_discord_returns_centre(self):
        x, anomaly_at = _signal_with_anomaly(seed=3)
        detected = detect_discord(x, window_range=(40, 60))
        assert abs(detected - anomaly_at) <= 100


class TestUcrScore:
    def test_raw_corpus_scores_high(self):
        corpus = generate_anomaly_corpus(6, length=1500, period=60, seed=2)
        score, outcomes = ucr_score(corpus, window_range=(50, 70))
        assert len(outcomes) == 6
        assert score >= 0.5

    def test_destroyed_series_scores_lower_or_equal(self):
        corpus = generate_anomaly_corpus(4, length=1200, period=60, seed=3)
        baseline_score, _ = ucr_score(corpus, window_range=(50, 70))
        def destroy(case):
            values = case.values
            return np.interp(np.arange(values.size), [0, values.size - 1],
                             [values[0], values[-1]])
        destroyed_score, _ = ucr_score(corpus, destroy, window_range=(50, 70))
        assert destroyed_score <= baseline_score

    def test_outcome_details(self):
        corpus = generate_anomaly_corpus(2, length=1200, period=60, seed=4)
        _score, outcomes = ucr_score(corpus, window_range=(50, 70))
        for outcome in outcomes:
            assert "anomaly_start" in outcome.details
            assert isinstance(outcome.hit, bool)


class TestIrregularProfile:
    def test_runs_on_compressed_series_and_uses_fewer_points(self):
        x, anomaly_at = _signal_with_anomaly(seed=5)
        compressed = cameo_compress(x, max_lag=50, epsilon=0.02)
        result = irregular_matrix_profile(compressed, 100)
        assert result.points_per_segment < 100
        assert result.profile.size == result.starts.size
        del anomaly_at

    def test_regular_reference_finds_anomaly(self):
        x, anomaly_at = _signal_with_anomaly(seed=6)
        result = regular_matrix_profile_naive(x, 100)
        assert abs(result.discord_index() - anomaly_at) <= 150

    def test_irregular_close_to_regular_at_low_compression(self):
        x, anomaly_at = _signal_with_anomaly(seed=7)
        compressed = cameo_compress(x, max_lag=50, epsilon=0.002)
        irregular = irregular_matrix_profile(compressed, 100)
        assert abs(irregular.discord_index() - anomaly_at) <= 200

    def test_window_validation(self):
        x, _pos = _signal_with_anomaly(400, seed=8)
        compressed = cameo_compress(x, max_lag=20, epsilon=0.05)
        with pytest.raises(InvalidParameterError):
            irregular_matrix_profile(compressed, 300)
