"""Integration tests across subsystems — the paper's pipelines in miniature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.benchlib import (
    bench_dataset,
    format_table,
    run_cameo,
    run_line_simplifier,
    run_lossy_baseline,
)
from repro.compressors import FFTCompressor, acf_deviation_of
from repro.core import CameoCompressor, cameo_compress
from repro.data import load_dataset
from repro.features import feature_deviations
from repro.forecasting import HoltWinters, evaluate_forecast, train_test_split
from repro.lossless import ChimpCodec, GorillaCodec
from repro.metrics import mae, pearson_correlation
from repro.simplify import AcfConstrainedSimplifier, VisvalingamWhyatt
from repro.stats import acf


class TestCompressionPipelines:
    def test_cameo_vs_vw_on_synthetic_pedestrian(self):
        """Figure 6 in miniature: same bound, CAMEO's CR is competitive."""
        series = load_dataset("Pedestrian", length=1500, seed=1)
        epsilon = 0.02
        cameo = CameoCompressor(24, epsilon).compress(series)
        vw = AcfConstrainedSimplifier(VisvalingamWhyatt(), 24, epsilon).compress(series)
        for result in (cameo, vw):
            deviation = mae(acf(series.values, 24), acf(result.decompress(), 24))
            assert deviation <= epsilon + 1e-9
        assert cameo.compression_ratio() >= 0.8 * vw.compression_ratio()

    def test_bits_per_value_comparison_runs(self):
        """Table 2 in miniature: CAMEO bits/value below raw 64 and the
        lossless codecs decode exactly."""
        series = load_dataset("ElecPower", length=1200, seed=2)
        compressed = cameo_compress(series.values, max_lag=48, epsilon=0.01)
        assert compressed.bits_per_value() < 64.0
        for codec in (GorillaCodec(), ChimpCodec()):
            payload, bits, count = codec.encode(series.values)
            assert np.array_equal(codec.decode(payload, bits, count), series.values)

    def test_compression_preserves_forecasting_better_than_fft_extreme(self):
        """EXP2 in miniature: at matched compression ratios CAMEO's ACF-aware
        selection should not be dramatically worse for forecasting than an
        aggressive FFT truncation."""
        series = load_dataset("Pedestrian", length=1200, seed=3)
        train, test = train_test_split(series.values, 24)

        cameo = CameoCompressor(24, epsilon=None, target_ratio=6.0).compress(train)
        cameo_error = evaluate_forecast(HoltWinters(24), cameo.decompress(), test).error

        fft = FFTCompressor(keep_components=max(int(train.size / 6 / 3), 2)).compress(train)
        fft_error = evaluate_forecast(HoltWinters(24), fft.decompress(), test).error

        raw_error = evaluate_forecast(HoltWinters(24), train, test).error
        assert cameo_error < 3 * max(raw_error, 0.05)
        assert np.isfinite(fft_error)


class TestFeatureCorrelationPipeline:
    def test_acf_feature_tracks_compression_level(self):
        """Figure 1 in miniature: ACF1 deviation grows monotonically-ish with
        the FFT compression level and correlates with it."""
        series = load_dataset("Pedestrian", length=1200, seed=4)
        levels = [0.4, 0.2, 0.1, 0.05, 0.02]
        acf1_dev = []
        for level in levels:
            reconstruction = FFTCompressor(level).compress(series.values).decompress()
            deviations = feature_deviations(series.values, reconstruction, period=24)
            acf1_dev.append(deviations["acf1"])
        compression = [1.0 / level for level in levels]
        assert pearson_correlation(np.asarray(compression), np.asarray(acf1_dev)) > 0.5


class TestBenchHarness:
    def test_run_helpers_produce_consistent_records(self):
        series = bench_dataset("ElecPower", seed=5)
        series = series.slice(0, 900)
        series.metadata.update({"acf_lags": 24, "agg_window": 1})
        cameo_run = run_cameo(series, 0.02)
        vw_run = run_line_simplifier("VW", series, 0.02)
        pmc_run = run_lossy_baseline("PMC", series, 0.02)
        for record in (cameo_run, vw_run, pmc_run):
            assert record.compression_ratio >= 1.0
            assert record.acf_deviation <= 0.02 + 1e-6
            assert record.elapsed_seconds > 0
        table = format_table(["method", "cr"], [[cameo_run.method,
                                                 f"{cameo_run.compression_ratio:.2f}"]])
        assert "method" in table

    def test_acf_deviation_of_agrees_with_direct_computation(self):
        series = load_dataset("MinTemp", length=1000, seed=6)
        reconstruction = FFTCompressor(0.1).compress(series.values).decompress()
        helper = acf_deviation_of(series.values, reconstruction, 30)
        direct = mae(acf(series.values, 30), acf(reconstruction, 30))
        assert helper == pytest.approx(direct, abs=1e-12)
