"""Cross-module property tests: invariants that must hold across subsystems.

These tests tie together the compressor, the streaming wrapper, the storage
engine and the statistics toolkit: whatever path a series takes through the
library, the statistic bound, the reconstruction geometry and the accounting
must stay consistent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CameoCompressor, cameo_compress
from repro.stats import acf
from repro.storage import TimeSeriesStore, available_codecs, make_codec
from repro.streaming import StreamingCameoCompressor

RNG = np.random.default_rng(31)


def _series(n: int, period: int, noise: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (np.sin(2 * np.pi * t / period) + 0.2 * np.sin(2 * np.pi * t / (period * 3))
            + noise * rng.standard_normal(n))


class TestCompressorInvariants:
    @given(st.integers(min_value=150, max_value=400),
           st.integers(min_value=8, max_value=32),
           st.floats(min_value=0.005, max_value=0.08),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=12, deadline=None)
    def test_bound_geometry_and_accounting(self, n, period, epsilon, seed):
        """Bound holds, endpoints retained, indices sorted, CR consistent."""
        values = _series(n, period, 0.1, seed)
        max_lag = min(period, n // 4)
        result = cameo_compress(values, max_lag=max_lag, epsilon=epsilon)

        # Geometry invariants of the irregular representation.
        assert result.indices[0] == 0 and result.indices[-1] == n - 1
        assert np.all(np.diff(result.indices) > 0)
        np.testing.assert_array_equal(result.values, values[result.indices])

        # The ACF bound is honoured by the reconstruction.
        reconstruction = result.decompress()
        deviation = float(np.mean(np.abs(acf(values, max_lag) - acf(reconstruction, max_lag))))
        assert deviation <= epsilon + 1e-9

        # Accounting is consistent.
        assert result.compression_ratio() == pytest.approx(n / len(result))
        assert result.bits_per_value() == pytest.approx(64 * len(result) / n)

        # Retained points are reproduced exactly by the reconstruction.
        np.testing.assert_allclose(reconstruction[result.indices], values[result.indices])

    @given(st.floats(min_value=0.002, max_value=0.05),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_skip_policy_never_compresses_less_than_stop(self, epsilon, seed):
        values = _series(300, 20, 0.1, seed)
        stop = CameoCompressor(20, epsilon, on_violation="stop").compress(values)
        skip = CameoCompressor(20, epsilon, on_violation="skip").compress(values)
        assert skip.compression_ratio() >= stop.compression_ratio() - 1e-12


class TestStreamingOfflineConsistency:
    def test_single_chunk_stream_equals_offline_compression(self):
        """A stream whose chunk covers the whole series is offline CAMEO."""
        values = _series(512, 24, 0.1, seed=3)
        offline = cameo_compress(values, max_lag=24, epsilon=0.02)
        stream = StreamingCameoCompressor(chunk_size=512, max_lag=24, epsilon=0.02)
        chunks = stream.add(values)
        assert len(chunks) == 1
        np.testing.assert_array_equal(chunks[0].compressed.indices, offline.indices)
        np.testing.assert_array_equal(chunks[0].compressed.values, offline.values)

    @given(st.integers(min_value=2, max_value=5))
    @settings(max_examples=5, deadline=None)
    def test_chunking_never_violates_per_chunk_bound(self, num_chunks):
        epsilon = 0.02
        chunk_size = 200
        values = _series(chunk_size * num_chunks, 20, 0.1, seed=num_chunks)
        stream = StreamingCameoCompressor(chunk_size=chunk_size, max_lag=20, epsilon=epsilon)
        chunks = stream.add(values)
        assert len(chunks) == num_chunks
        assert stream.report().worst_chunk_deviation <= epsilon + 1e-9


class TestStorageConsistency:
    @given(st.sampled_from(sorted(set(available_codecs()) - {"pmc", "swing", "simpiece", "fft"})),
           st.integers(min_value=64, max_value=300))
    @settings(max_examples=10, deadline=None)
    def test_store_read_matches_direct_codec_roundtrip(self, codec_name, segment_size):
        """Reading a one-segment store equals decoding the codec directly."""
        values = _series(segment_size, 16, 0.1, seed=segment_size)
        codec = make_codec(codec_name, **({"max_lag": 8, "epsilon": 0.05}
                                          if codec_name not in ("raw", "gorilla", "chimp")
                                          else {}))
        direct = codec.decode(codec.encode(values))

        store = TimeSeriesStore()
        store.create_series("s", codec=codec, segment_size=segment_size)
        store.append("s", values)
        np.testing.assert_allclose(store.read("s"), direct)

    def test_footprint_never_exceeds_raw_for_irregular_codecs(self):
        values = _series(2_000, 24, 0.05, seed=7)
        store = TimeSeriesStore(default_segment_size=500)
        store.create_series("s", codec="cameo",
                            codec_options={"max_lag": 24, "epsilon": 0.05})
        store.append("s", values)
        store.flush("s")
        info = store.info("s")
        # 64 bits/value + 32 bits/index per *retained* point; with a 0.05
        # bound on this smooth series the footprint must beat raw storage.
        assert info.encoded_bits < info.raw_bits
        assert info.bits_per_value < 64
