"""Unit tests for the quality measures (paper Section 2.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidSeriesError
from repro.metrics import (
    chebyshev,
    get_metric,
    mae,
    mape,
    mean_error,
    msmape,
    nrmse,
    pearson_correlation,
    psnr,
    register_metric,
    rmse,
    smape,
    available_metrics,
)


class TestBasicMetrics:
    def test_mae_simple(self):
        assert mae([1.0, 2.0, 3.0], [2.0, 2.0, 2.0]) == pytest.approx(2.0 / 3.0)

    def test_mae_zero_for_identical(self):
        x = np.linspace(0, 1, 50)
        assert mae(x, x) == 0.0

    def test_rmse_matches_manual(self):
        x = np.array([0.0, 0.0, 0.0, 0.0])
        y = np.array([1.0, -1.0, 1.0, -1.0])
        assert rmse(x, y) == pytest.approx(1.0)

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=100)
        y = rng.normal(size=100)
        assert rmse(x, y) >= mae(x, y) - 1e-12

    def test_nrmse_normalises_by_range(self):
        x = np.array([0.0, 10.0, 5.0])
        y = np.array([0.0, 10.0, 6.0])
        expected = np.sqrt((1.0 ** 2) / 3.0) / 10.0
        assert nrmse(x, y) == pytest.approx(expected)

    def test_nrmse_constant_original_sentinel(self):
        # A constant original has zero value range: the quotient is
        # undefined, so the documented sentinel applies — 0.0 when the
        # reconstruction is exact, inf otherwise (never a silent fallback
        # to unnormalized RMSE, which made incomparable scales comparable).
        x = np.ones(10)
        assert nrmse(x, x.copy()) == 0.0
        assert nrmse(x, np.ones(10) * 2.0) == np.inf
        assert nrmse(x, np.ones(10) + 1e-9) == np.inf

    def test_chebyshev_is_max_abs(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.5, 0.0, 3.0])
        assert chebyshev(x, y) == pytest.approx(2.0)

    def test_mean_error_signed(self):
        assert mean_error([2.0, 2.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert mean_error([1.0, 1.0], [2.0, 2.0]) == pytest.approx(-1.0)

    def test_mape_percentage(self):
        assert mape([10.0, 20.0], [11.0, 18.0]) == pytest.approx((0.1 + 0.1) / 2 * 100)

    def test_smape_symmetric(self):
        x = np.array([1.0, 2.0, 4.0])
        y = np.array([2.0, 1.0, 5.0])
        assert smape(x, y) == pytest.approx(smape(y, x))

    def test_psnr_infinite_for_exact(self):
        x = np.arange(10, dtype=float)
        assert psnr(x, x) == np.inf

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(1)
        x = np.sin(np.arange(500) / 10.0)
        small = psnr(x, x + rng.normal(0, 0.01, 500))
        large = psnr(x, x + rng.normal(0, 0.1, 500))
        assert small > large


class TestMsmape:
    def test_zero_for_identical(self):
        x = np.abs(np.random.default_rng(2).normal(5, 1, 30))
        assert msmape(x, x) == 0.0

    def test_positive_and_finite_with_zeros(self):
        x = np.array([0.0, 0.0, 1.0, 2.0])
        y = np.array([0.5, 0.0, 1.0, 2.5])
        value = msmape(x, y)
        assert np.isfinite(value)
        assert value > 0.0

    def test_stabiliser_reduces_blowup_vs_smape(self):
        # Near-zero actuals blow up SMAPE; the history-based stabiliser keeps
        # mSMAPE moderate (history must be non-constant for S_i > 0).
        x = np.array([100.0, 90.0, 110.0, 0.001])
        y = np.array([100.0, 90.0, 110.0, 1.0])
        assert msmape(x, y) < smape(x, y)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(50, dtype=float)
        assert pearson_correlation(x, 3 * x + 2) == pytest.approx(1.0)

    def test_anti_correlation(self):
        x = np.arange(50, dtype=float)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0


class TestValidation:
    def test_shape_mismatch_raises(self):
        with pytest.raises(InvalidSeriesError):
            mae([1.0, 2.0], [1.0])

    def test_nan_rejected(self):
        with pytest.raises(InvalidSeriesError):
            rmse([1.0, np.nan], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(InvalidSeriesError):
            mae([], [])


class TestDegenerateInputsAcrossRegistry:
    """Every registered metric agrees on what degenerate input means."""

    @pytest.mark.parametrize("name", sorted(set(available_metrics())))
    def test_empty_input_raises(self, name):
        with pytest.raises(InvalidSeriesError):
            get_metric(name)(np.array([]), np.array([]))

    @pytest.mark.parametrize("name", sorted(set(available_metrics())))
    def test_all_nan_input_raises(self, name):
        nans = np.full(8, np.nan)
        with pytest.raises(InvalidSeriesError):
            get_metric(name)(nans, np.zeros(8))
        with pytest.raises(InvalidSeriesError):
            get_metric(name)(np.zeros(8), nans)

    @pytest.mark.parametrize("name", sorted(set(available_metrics())))
    def test_length_one_identical_never_nan(self, name):
        # Length-1 series are valid but degenerate (zero value range, no
        # variance): identical inputs must map to each metric's documented
        # perfect score or sentinel, never NaN.
        value = get_metric(name)(np.array([3.0]), np.array([3.0]))
        assert not np.isnan(value)

    def test_length_one_sentinels(self):
        assert nrmse(np.array([3.0]), np.array([3.0])) == 0.0
        assert nrmse(np.array([3.0]), np.array([4.0])) == np.inf
        assert psnr(np.array([3.0]), np.array([3.0])) == np.inf


class TestRegistry:
    def test_builtins_present(self):
        names = available_metrics()
        for name in ("mae", "rmse", "nrmse", "msmape", "cheb", "psnr"):
            assert name in names

    def test_get_metric_by_name(self):
        assert get_metric("mae") is mae

    def test_get_metric_callable_passthrough(self):
        fn = lambda x, y: 0.0  # noqa: E731
        assert get_metric(fn) is fn

    def test_unknown_metric_raises(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            get_metric("definitely-not-a-metric")

    def test_register_custom_metric(self):
        register_metric("test-half-mae", lambda x, y: 0.5 * mae(x, y), overwrite=True)
        fn = get_metric("test-half-mae")
        assert fn([0.0, 0.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_register_duplicate_without_overwrite_raises(self):
        from repro.exceptions import InvalidParameterError

        register_metric("test-dup", lambda x, y: 0.0, overwrite=True)
        with pytest.raises(InvalidParameterError):
            register_metric("test-dup", lambda x, y: 1.0)
