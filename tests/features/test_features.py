"""Tests for the tsfeatures-style feature extraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.features import FEATURE_NAMES, extract_features, feature_deviations


def _seasonal(n: int = 600, seed: int = 0, noise: float = 0.2) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 5 + 2 * np.sin(2 * np.pi * t / 24) + rng.normal(0, noise, n)


class TestExtractFeatures:
    def test_all_features_present(self):
        features = extract_features(_seasonal(), period=24)
        for name in FEATURE_NAMES:
            assert name in features
            assert np.isfinite(features[name])

    def test_seasonal_strength_high_for_seasonal_series(self):
        features = extract_features(_seasonal(noise=0.05), period=24)
        assert features["seasonal_strength"] > 0.8

    def test_seasonal_strength_zero_without_period(self):
        features = extract_features(_seasonal(), period=None)
        assert features["seasonal_strength"] == 0.0

    def test_acf1_near_one_for_smooth_series(self):
        t = np.arange(500)
        features = extract_features(np.sin(2 * np.pi * t / 100), period=100)
        assert features["acf1"] > 0.95

    def test_acf1_near_zero_for_white_noise(self, rng):
        features = extract_features(rng.normal(0, 1, 5000), period=None)
        assert abs(features["acf1"]) < 0.05

    def test_linearity_detects_trend(self):
        x = np.linspace(0, 10, 300) + np.random.default_rng(1).normal(0, 0.1, 300)
        features = extract_features(x, period=None)
        assert abs(features["linearity"]) > 1.0

    def test_curvature_detects_quadratic(self):
        t = np.linspace(-1, 1, 300)
        features = extract_features(5 * t * t, period=None)
        assert abs(features["curvature"]) > abs(features["linearity"])

    def test_nonlinearity_higher_for_nonlinear_process(self, rng):
        linear = rng.normal(0, 1, 2000)
        x = np.zeros(2000)
        for t in range(2, 2000):
            x[t] = 0.5 * x[t - 1] - 0.4 * x[t - 1] ** 2 * np.sign(x[t - 2]) + linear[t] * 0.3
        nonlinear_score = extract_features(x, period=None)["nonlinearity"]
        linear_score = extract_features(linear, period=None)["nonlinearity"]
        assert nonlinear_score > linear_score


class TestFeatureDeviations:
    def test_zero_for_identical_series(self):
        x = _seasonal(seed=2)
        deviations = feature_deviations(x, x, period=24)
        for name in FEATURE_NAMES:
            assert deviations[name] == pytest.approx(0.0, abs=1e-12)
        assert deviations["nrmse"] == 0.0

    def test_larger_distortion_larger_acf_deviation(self):
        x = _seasonal(seed=3)
        rng = np.random.default_rng(4)
        mild = x + rng.normal(0, 0.1, x.size)
        severe = x + rng.normal(0, 2.0, x.size)
        mild_dev = feature_deviations(x, mild, period=24)
        severe_dev = feature_deviations(x, severe, period=24)
        assert severe_dev["acf1"] > mild_dev["acf1"]
        assert severe_dev["nrmse"] > mild_dev["nrmse"]

    def test_includes_reconstruction_metrics(self):
        x = _seasonal(seed=5)
        deviations = feature_deviations(x, x + 0.1, period=24)
        assert "nrmse" in deviations and "psnr" in deviations
