"""Tests for the lossy compression baselines (PMC, SWING, Sim-Piece, FFT)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compressors import (
    FFTCompressor,
    PoorMansCompressionMean,
    SimPiece,
    SwingFilter,
    acf_deviation_of,
    pmc_segments,
    search_parameter_for_acf,
    simpiece_segments,
    swing_segments,
)
from repro.exceptions import InvalidParameterError
from repro.metrics import nrmse


def _series(n: int = 1500, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 20 + 5 * np.sin(2 * np.pi * np.arange(n) / 48) + rng.normal(0, 0.5, n)


class TestPmc:
    def test_error_bound_holds(self):
        x = _series()
        model = PoorMansCompressionMean(0.5).compress(x)
        assert np.max(np.abs(model.decompress() - x)) <= 0.5 + 1e-9

    def test_constant_series_single_segment(self):
        x = np.full(300, 7.0)
        segments = pmc_segments(x, 0.1)
        assert len(segments) == 1

    def test_larger_bound_fewer_segments(self):
        x = _series(seed=1)
        small = PoorMansCompressionMean(0.2).compress(x)
        large = PoorMansCompressionMean(2.0).compress(x)
        assert large.metadata["segments"] <= small.metadata["segments"]

    def test_mean_variant(self):
        x = _series(seed=2)
        model = PoorMansCompressionMean(1.0, variant="mean").compress(x)
        assert np.max(np.abs(model.decompress() - x)) <= 2.0  # mean variant: 2x bound worst case

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            PoorMansCompressionMean(0.0)
        with pytest.raises(ValueError):
            PoorMansCompressionMean(1.0, variant="mode")

    def test_compression_ratio_accounting(self):
        x = _series(seed=3)
        model = PoorMansCompressionMean(1.0).compress(x)
        assert model.compression_ratio() == pytest.approx(
            x.size / (2 * model.metadata["segments"]))
        assert model.bits_per_value() == pytest.approx(
            2 * model.metadata["segments"] * 64 / x.size)


class TestSwing:
    def test_error_bound_holds(self):
        x = _series(seed=4)
        model = SwingFilter(0.6).compress(x)
        assert np.max(np.abs(model.decompress() - x)) <= 0.6 + 1e-6

    def test_linear_series_one_segment(self):
        x = np.linspace(0, 50, 400)
        segments = swing_segments(x, 0.01)
        assert len(segments) <= 2

    def test_reconstruction_length(self):
        x = _series(seed=5)
        assert SwingFilter(0.5).compress(x).decompress().size == x.size

    def test_larger_bound_more_compression(self):
        x = _series(seed=6)
        small = SwingFilter(0.2).compress(x)
        large = SwingFilter(3.0).compress(x)
        assert large.compression_ratio() >= small.compression_ratio()


class TestSimPiece:
    def test_error_bound_holds(self):
        x = _series(seed=7)
        model = SimPiece(0.6).compress(x)
        assert np.max(np.abs(model.decompress() - x)) <= 2 * 0.6 + 1e-6

    def test_groups_never_exceed_segments(self):
        x = _series(seed=8)
        model = SimPiece(0.5).compress(x)
        assert model.metadata["groups"] <= model.metadata["segments"]

    def test_segment_cover_is_complete(self):
        x = _series(300, seed=9)
        segments = simpiece_segments(x, 0.4)
        covered = sorted((segment.start, segment.end) for segment in segments)
        assert covered[0][0] == 0
        assert covered[-1][1] == x.size - 1
        for (s1, e1), (s2, _e2) in zip(covered[:-1], covered[1:]):
            assert s2 == e1 + 1

    def test_merging_improves_over_unmerged_storage(self):
        x = _series(seed=10)
        model = SimPiece(1.0).compress(x)
        unmerged_cost = 3 * model.metadata["segments"]
        assert model.stored_values <= unmerged_cost


class TestFft:
    def test_keep_all_components_reconstructs_exactly(self):
        x = _series(512, seed=11)
        model = FFTCompressor(1.0).compress(x)
        assert np.allclose(model.decompress(), x, atol=1e-8)

    def test_fewer_components_higher_error(self):
        x = _series(1024, seed=12)
        coarse = FFTCompressor(0.01).compress(x)
        fine = FFTCompressor(0.3).compress(x)
        assert nrmse(x, coarse.decompress()) >= nrmse(x, fine.decompress())

    def test_seasonal_series_compresses_well(self):
        t = np.arange(2048)
        x = np.sin(2 * np.pi * t / 64) + 0.5 * np.sin(2 * np.pi * t / 16)
        model = FFTCompressor(keep_components=4).compress(x)
        assert nrmse(x, model.decompress()) < 0.01
        assert model.compression_ratio() > 100

    def test_invalid_parameters(self):
        with pytest.raises(InvalidParameterError):
            FFTCompressor(0.0)
        with pytest.raises(InvalidParameterError):
            FFTCompressor(keep_components=0)

    def test_metadata(self):
        x = _series(256, seed=13)
        model = FFTCompressor(0.1).compress(x)
        assert model.metadata["kept_components"] == round(0.1 * model.metadata["total_components"])


class TestAcfSearch:
    def test_deviation_helper_zero_for_identical(self):
        x = _series(seed=14)
        assert acf_deviation_of(x, x, 24) == pytest.approx(0.0, abs=1e-12)

    def test_search_respects_bound_when_feasible(self):
        x = _series(seed=15)
        model, _param, deviation = search_parameter_for_acf(
            lambda e: SwingFilter(e).compress(x), x, 24, 0.02, high=5.0)
        assert deviation < 0.02
        assert model.compression_ratio() >= 1.0

    def test_search_monotone_improvement(self):
        x = _series(seed=16)
        tight, _p1, _d1 = search_parameter_for_acf(
            lambda e: PoorMansCompressionMean(e).compress(x), x, 24, 0.005, high=5.0)
        loose, _p2, _d2 = search_parameter_for_acf(
            lambda e: PoorMansCompressionMean(e).compress(x), x, 24, 0.05, high=5.0)
        assert loose.compression_ratio() >= tight.compression_ratio() - 1e-9

    def test_invalid_epsilon(self):
        x = _series(200, seed=17)
        with pytest.raises(InvalidParameterError):
            search_parameter_for_acf(lambda e: SwingFilter(e).compress(x), x, 10, 0.0)


class TestPropertyBased:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.05, max_value=2.0))
    def test_pmc_and_swing_respect_linf_bound(self, seed, bound):
        """Property: both segment compressors honour the per-value bound."""
        rng = np.random.default_rng(seed)
        x = np.cumsum(rng.normal(0, 1, 200))
        for compressor in (PoorMansCompressionMean(bound), SwingFilter(bound)):
            reconstruction = compressor.compress(x).decompress()
            assert np.max(np.abs(reconstruction - x)) <= bound + 1e-6
