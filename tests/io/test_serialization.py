"""Tests for compressed-representation serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cameo_compress
from repro.data import IrregularSeries
from repro.exceptions import DecompressionError
from repro.io import (
    irregular_from_json,
    irregular_to_json,
    load_irregular_json,
    load_irregular_npz,
    save_irregular_json,
    save_irregular_npz,
)


def _example(seed: int = 0) -> IrregularSeries:
    rng = np.random.default_rng(seed)
    x = np.sin(np.arange(400) / 10.0) + rng.normal(0, 0.2, 400)
    return cameo_compress(x, max_lag=20, epsilon=0.05)


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self):
        original = _example()
        restored = irregular_from_json(irregular_to_json(original))
        assert np.array_equal(original.indices, restored.indices)
        assert np.array_equal(original.values, restored.values)
        assert original.original_length == restored.original_length
        assert restored.metadata["compressor"] == "CAMEO"

    def test_decompression_identical_after_roundtrip(self):
        original = _example(1)
        restored = irregular_from_json(irregular_to_json(original))
        assert np.allclose(original.decompress(), restored.decompress())

    def test_invalid_json_rejected(self):
        with pytest.raises(DecompressionError):
            irregular_from_json("{not valid json")
        with pytest.raises(DecompressionError):
            irregular_from_json('{"format": "something-else"}')

    def test_file_roundtrip(self, tmp_path):
        original = _example(2)
        path = save_irregular_json(original, tmp_path / "compressed.json")
        restored = load_irregular_json(path)
        assert np.array_equal(original.indices, restored.indices)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DecompressionError):
            load_irregular_json(tmp_path / "absent.json")


class TestNpzRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = _example(3)
        save_irregular_npz(original, tmp_path / "compressed.npz")
        restored = load_irregular_npz(tmp_path / "compressed.npz")
        assert np.array_equal(original.indices, restored.indices)
        assert np.array_equal(original.values, restored.values)
        assert restored.metadata["epsilon"] == original.metadata["epsilon"]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DecompressionError):
            load_irregular_npz(tmp_path / "absent.npz")
