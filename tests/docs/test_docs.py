"""Tier-1 guards for the docs layer.

CI has a dedicated docs job (link check + example smoke run); these tests
keep the same guarantees inside the tier-1 suite so a broken docs change
cannot land even when only the default suite runs.
"""

from __future__ import annotations

import importlib.util
import py_compile
from pathlib import Path

import pytest

from repro.codecs import available_codecs

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
DOCS = REPO_ROOT / "docs"


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestDocsPages:
    def test_required_pages_exist(self):
        for page in ("architecture.md", "codecs.md", "evaluation.md",
                     "native.md", "performance.md", "robustness.md",
                     "service.md", "storage.md"):
            assert (DOCS / page).is_file(), f"docs/{page} is missing"

    def test_every_registered_codec_documented(self):
        text = (DOCS / "codecs.md").read_text(encoding="utf-8")
        missing = [name for name in available_codecs() if f"`{name}`" not in text]
        assert not missing, f"codecs missing from docs/codecs.md: {missing}"

    def test_readme_links_docs_and_reference_baseline(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for needle in ("docs/architecture.md", "docs/codecs.md",
                       "docs/evaluation.md", "docs/native.md",
                       "docs/performance.md", "docs/robustness.md",
                       "docs/service.md", "docs/storage.md",
                       "_kernels/reference.py"):
            assert needle in readme, f"README.md should mention {needle}"

    def test_service_page_documents_every_fault_site_and_status(self):
        from repro.faultinject import SERVICE_KINDS, SERVICE_SITES

        text = (DOCS / "service.md").read_text(encoding="utf-8")
        missing = [site for site in SERVICE_SITES if f"`{site}`" not in text]
        assert not missing, \
            f"fault sites missing from docs/service.md: {missing}"
        for kind in SERVICE_KINDS:
            assert kind in text, f"docs/service.md should cover kind {kind!r}"
        for status in ("207", "413", "429", "503", "504"):
            assert status in text, \
                f"docs/service.md should document status {status}"

    def test_roadmap_points_to_performance_page(self):
        roadmap = (REPO_ROOT / "ROADMAP.md").read_text(encoding="utf-8")
        assert "docs/performance.md" in roadmap


class TestLinkChecker:
    def test_no_broken_intra_repo_links(self, capsys):
        checker = _load_check_links()
        assert checker.main([]) == 0, capsys.readouterr().err

    def test_detects_broken_link(self, tmp_path):
        checker = _load_check_links()
        bad = tmp_path / "bad.md"
        bad.write_text("see [missing](no/such/file.md)", encoding="utf-8")
        problems = checker.check_file(bad)
        assert len(problems) == 1 and "no/such/file.md" in problems[0]

    def test_ignores_external_links_anchors_and_code_blocks(self, tmp_path):
        checker = _load_check_links()
        page = tmp_path / "ok.md"
        page.write_text(
            "[web](https://example.com) [anchor](#section) "
            "`[code](fake.md)`\n```\n[fenced](also/fake.md)\n```\n",
            encoding="utf-8")
        assert checker.check_file(page) == []

    def test_unpaired_backtick_does_not_swallow_later_links(self, tmp_path):
        checker = _load_check_links()
        page = tmp_path / "typo.md"
        page.write_text("a stray `backtick\n[broken](missing.md)\nmore `code`\n",
                        encoding="utf-8")
        problems = checker.check_file(page)
        assert len(problems) == 1 and "missing.md" in problems[0]

    def test_root_relative_links_resolve_against_repo_root(self, tmp_path):
        checker = _load_check_links()
        page = tmp_path / "root.md"
        page.write_text("[arch](/docs/architecture.md) [bad](/docs/nope.md)",
                        encoding="utf-8")
        problems = checker.check_file(page)
        assert len(problems) == 1 and "/docs/nope.md" in problems[0]


class TestExampleScripts:
    @pytest.mark.parametrize("script", sorted(
        path.name for path in (REPO_ROOT / "examples").glob("*.py")))
    def test_examples_compile(self, script, tmp_path):
        # CI's docs job *runs* pacf_compression.py; tier-1 just guarantees
        # every example stays syntactically valid.
        py_compile.compile(str(REPO_ROOT / "examples" / script),
                           cfile=str(tmp_path / (script + "c")), doraise=True)

    def test_pacf_example_is_referenced_from_readme(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        assert "pacf_compression.py" in readme
