"""Tests for the naive / drift / Theta forecasting baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import InvalidParameterError, ModelError
from repro.forecasting import (
    DriftForecaster,
    NaiveForecaster,
    SeasonalNaive,
    ThetaForecaster,
    evaluate_forecast,
    make_forecaster,
    train_test_split,
)

RNG = np.random.default_rng(13)


def _trend_seasonal(n: int = 480, period: int = 24) -> np.ndarray:
    t = np.arange(n)
    return 50 + 0.05 * t + 8 * np.sin(2 * np.pi * t / period) + 0.5 * RNG.standard_normal(n)


class TestNaiveForecaster:
    def test_repeats_last_value(self):
        model = NaiveForecaster().fit([1.0, 2.0, 5.0])
        np.testing.assert_array_equal(model.forecast(4), np.full(4, 5.0))

    def test_requires_fit(self):
        with pytest.raises(ModelError):
            NaiveForecaster().forecast(3)

    def test_invalid_horizon(self):
        model = NaiveForecaster().fit([1.0, 2.0])
        with pytest.raises(InvalidParameterError):
            model.forecast(0)

    @given(arrays(np.float64, st.integers(min_value=1, max_value=50),
                  elements=st.floats(min_value=-1e6, max_value=1e6,
                                     allow_nan=False, allow_infinity=False)))
    @settings(max_examples=25, deadline=None)
    def test_forecast_is_always_last_observation(self, values):
        model = NaiveForecaster().fit(values)
        assert np.all(model.forecast(3) == values[-1])


class TestDriftForecaster:
    def test_linear_series_extrapolated_exactly(self):
        values = 2.0 + 0.5 * np.arange(100)
        forecast = DriftForecaster().fit(values).forecast(10)
        expected = values[-1] + 0.5 * np.arange(1, 11)
        np.testing.assert_allclose(forecast, expected)

    def test_flat_series_has_zero_drift(self):
        forecast = DriftForecaster().fit(np.full(20, 3.0)).forecast(5)
        np.testing.assert_array_equal(forecast, np.full(5, 3.0))

    def test_needs_two_points(self):
        with pytest.raises(ModelError):
            DriftForecaster().fit([1.0])

    def test_slope_uses_endpoints_only(self):
        values = np.asarray([0.0, 100.0, -50.0, 10.0])
        model = DriftForecaster().fit(values)
        assert model.forecast(1)[0] == pytest.approx(10.0 + 10.0 / 3.0)


class TestThetaForecaster:
    def test_linear_trend_recovered(self):
        values = 10 + 0.3 * np.arange(200)
        forecast = ThetaForecaster().fit(values).forecast(12)
        # Theta adds only half the trend slope on top of the flat SES level,
        # so the forecast grows but undershoots the true line.
        assert np.all(np.diff(forecast) > 0)
        assert forecast[0] >= values[-1] - 1.0
        assert forecast[-1] <= values[-1] + 0.3 * 12 + 1.0

    def test_seasonal_adjustment_improves_on_naive(self):
        values = _trend_seasonal()
        train, actual = train_test_split(values, 24)
        theta_error = evaluate_forecast(ThetaForecaster(period=24), train, actual).error
        naive_error = evaluate_forecast(NaiveForecaster(), train, actual).error
        assert theta_error < naive_error

    def test_theta_competitive_with_seasonal_naive(self):
        values = _trend_seasonal()
        train, actual = train_test_split(values, 24)
        theta_error = evaluate_forecast(ThetaForecaster(period=24), train, actual).error
        snaive_error = evaluate_forecast(SeasonalNaive(24), train, actual).error
        assert theta_error <= snaive_error * 1.5

    def test_needs_two_full_cycles_for_seasonality(self):
        with pytest.raises(ModelError):
            ThetaForecaster(period=24).fit(np.arange(30, dtype=float))

    def test_needs_three_points(self):
        with pytest.raises(ModelError):
            ThetaForecaster().fit([1.0, 2.0])

    def test_negative_period_rejected(self):
        with pytest.raises(InvalidParameterError):
            ThetaForecaster(period=-1)

    def test_centred_series_falls_back_to_flat_seasonality(self):
        t = np.arange(96)
        values = np.sin(2 * np.pi * t / 24)   # zero mean, some phases near zero
        forecast = ThetaForecaster(period=24).fit(values).forecast(24)
        assert forecast.shape == (24,)
        assert np.all(np.isfinite(forecast))

    def test_explicit_alpha(self):
        values = _trend_seasonal(200)
        forecast = ThetaForecaster(alpha=0.3).fit(values).forecast(5)
        assert forecast.shape == (5,)

    def test_name_reflects_period(self):
        assert ThetaForecaster().name == "Theta"
        assert ThetaForecaster(period=24).name == "Theta24"


class TestFactoryIntegration:
    @pytest.mark.parametrize("name,cls", [
        ("naive", NaiveForecaster),
        ("drift", DriftForecaster),
        ("theta", ThetaForecaster),
    ])
    def test_make_forecaster_builds_baselines(self, name, cls):
        model = make_forecaster(name, period=24)
        assert isinstance(model, cls)

    def test_baselines_run_through_evaluation_protocol(self):
        values = _trend_seasonal(300)
        train, actual = train_test_split(values, 24)
        for name in ("naive", "drift", "theta"):
            evaluation = evaluate_forecast(make_forecaster(name, period=24), train, actual)
            assert np.isfinite(evaluation.error)
            assert evaluation.forecast.shape == actual.shape
