"""Tests for the forecasting substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError, ModelError
from repro.forecasting import (
    AutoRegressive,
    BoxCoxTransform,
    DynamicHarmonicRegression,
    HoltLinear,
    HoltWinters,
    MLPAutoregressor,
    STLForecaster,
    SeasonalNaive,
    SimpleExponentialSmoothing,
    decompose,
    evaluate_forecast,
    fourier_terms,
    make_forecaster,
    train_test_split,
    yule_walker,
)
from repro.metrics import msmape


def _seasonal(n: int = 480, period: int = 24, seed: int = 0, noise: float = 0.3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 10 + 3 * np.sin(2 * np.pi * t / period) + 0.002 * t + rng.normal(0, noise, n)


class TestSplitAndEvaluate:
    def test_split_shapes(self):
        x = np.arange(100.0)
        train, test = train_test_split(x, 10)
        assert train.size == 90 and test.size == 10
        assert np.array_equal(test, np.arange(90.0, 100.0))

    def test_split_horizon_too_large(self):
        with pytest.raises(ModelError):
            train_test_split(np.arange(10.0), 10)

    def test_evaluate_forecast_returns_error(self):
        x = _seasonal()
        train, test = train_test_split(x, 24)
        evaluation = evaluate_forecast(SeasonalNaive(24), train, test)
        assert evaluation.error >= 0.0
        assert evaluation.forecast.shape == test.shape
        assert evaluation.metric == "msmape"


class TestExponentialSmoothing:
    def test_ses_flat_forecast(self):
        x = np.ones(50) * 5 + np.random.default_rng(0).normal(0, 0.01, 50)
        forecast = SimpleExponentialSmoothing().fit_forecast(x, 5)
        assert np.allclose(forecast, 5.0, atol=0.1)
        assert np.unique(np.round(forecast, 9)).size == 1

    def test_holt_extrapolates_trend(self):
        x = np.linspace(0, 100, 200)
        forecast = HoltLinear().fit_forecast(x, 10)
        assert forecast[-1] > 100.0

    def test_holt_winters_beats_naive_on_seasonal_data(self):
        x = _seasonal(seed=1)
        train, test = train_test_split(x, 24)
        hw_error = evaluate_forecast(HoltWinters(24), train, test).error
        flat_error = evaluate_forecast(SimpleExponentialSmoothing(), train, test).error
        assert hw_error < flat_error

    def test_holt_winters_requires_two_cycles(self):
        with pytest.raises(ModelError):
            HoltWinters(24).fit(np.arange(30.0))

    def test_forecast_before_fit_raises(self):
        with pytest.raises(ModelError):
            HoltWinters(12).forecast(5)

    def test_holt_winters_seasonal_pattern_in_forecast(self):
        x = _seasonal(seed=2, noise=0.05)
        forecast = HoltWinters(24).fit_forecast(x, 48)
        # The forecast must itself oscillate with the period.
        assert np.std(forecast[:24]) > 0.5


class TestDecomposition:
    def test_components_sum_to_series(self):
        x = _seasonal(seed=3)
        decomposition = decompose(x, 24)
        assert np.allclose(decomposition.trend + decomposition.seasonal
                           + decomposition.remainder, x, atol=1e-9)

    def test_seasonal_strength_high_for_seasonal_series(self):
        x = _seasonal(seed=4, noise=0.1)
        assert decompose(x, 24).seasonal_strength() > 0.8

    def test_seasonal_strength_low_for_noise(self, rng):
        x = rng.normal(0, 1, 480)
        assert decompose(x, 24).seasonal_strength() < 0.4

    def test_needs_two_periods(self):
        with pytest.raises(ModelError):
            decompose(np.arange(30.0), 24)


class TestAutoRegressive:
    def test_yule_walker_recovers_ar1(self):
        from repro.data import generate_ar_process

        x = generate_ar_process(30_000, [0.6], seed=1)
        assert yule_walker(x, 1)[0] == pytest.approx(0.6, abs=0.05)

    def test_order_selection_bounded(self):
        x = _seasonal(seed=5)
        model = AutoRegressive(max_order=6).fit(x)
        assert 1 <= model.order <= 6

    def test_differencing_handles_trend(self):
        x = np.linspace(0, 100, 300) + np.random.default_rng(2).normal(0, 0.5, 300)
        forecast = AutoRegressive(order=2, difference=1).fit_forecast(x, 10)
        assert forecast[-1] > 95.0

    def test_too_short_series(self):
        with pytest.raises(ModelError):
            AutoRegressive(order=2).fit(np.arange(5.0))

    def test_invalid_difference(self):
        with pytest.raises(ModelError):
            AutoRegressive(order=1, difference=2)


class TestDhr:
    def test_fourier_terms_shape_and_range(self):
        terms = fourier_terms(100, 24, 3)
        assert terms.shape == (100, 6)
        assert np.max(np.abs(terms)) <= 1.0 + 1e-12

    def test_dhr_captures_seasonality(self):
        x = _seasonal(seed=6, noise=0.1)
        train, test = train_test_split(x, 24)
        dhr_error = evaluate_forecast(DynamicHarmonicRegression(24, 3), train, test).error
        naive_error = evaluate_forecast(SimpleExponentialSmoothing(), train, test).error
        assert dhr_error < naive_error

    def test_too_many_harmonics_rejected(self):
        with pytest.raises(ModelError):
            DynamicHarmonicRegression(10, 6)


class TestMlp:
    def test_learns_seasonal_pattern_better_than_flat(self):
        x = _seasonal(seed=7, noise=0.1)
        train, test = train_test_split(x, 24)
        mlp = MLPAutoregressor(window=24, hidden_units=16, epochs=40, seed=1)
        mlp_error = evaluate_forecast(mlp, train, test).error
        flat_error = evaluate_forecast(SimpleExponentialSmoothing(), train, test).error
        assert mlp_error < flat_error

    def test_deterministic_given_seed(self):
        x = _seasonal(240, seed=8)
        a = MLPAutoregressor(window=12, epochs=10, seed=3).fit_forecast(x, 6)
        b = MLPAutoregressor(window=12, epochs=10, seed=3).fit_forecast(x, 6)
        assert np.allclose(a, b)

    def test_too_short_series(self):
        with pytest.raises(ModelError):
            MLPAutoregressor(window=24).fit(np.arange(10.0))


class TestPipelines:
    def test_stl_forecasters_reasonable(self):
        x = _seasonal(seed=9)
        train, test = train_test_split(x, 24)
        for base in ("ets", "arima"):
            error = evaluate_forecast(STLForecaster(24, base), train, test).error
            assert error < 0.2

    def test_seasonal_naive_repeats_cycle(self):
        x = _seasonal(seed=10, noise=0.0)
        forecast = SeasonalNaive(24).fit_forecast(x, 24)
        assert np.allclose(forecast, x[-24:], atol=1e-9)

    def test_make_forecaster_names(self):
        for name in ("holt-winters", "ses", "holt", "stl-ets", "stl-arima", "arima",
                     "dhr-arima", "mlp", "snaive"):
            model = make_forecaster(name, period=24)
            assert hasattr(model, "fit")
        with pytest.raises(InvalidParameterError):
            make_forecaster("prophet", period=24)

    def test_lstm_alias_maps_to_mlp(self):
        assert isinstance(make_forecaster("lstm", period=24), MLPAutoregressor)


class TestBoxCox:
    def test_roundtrip(self):
        x = np.abs(np.random.default_rng(3).normal(10, 3, 200)) + 1.0
        transform = BoxCoxTransform()
        transformed = transform.fit_transform(x)
        assert np.allclose(transform.inverse_transform(transformed), x, atol=1e-6)

    def test_standardisation(self):
        x = np.abs(np.random.default_rng(4).normal(50, 10, 500)) + 1.0
        transformed = BoxCoxTransform().fit_transform(x)
        assert abs(float(np.mean(transformed))) < 1e-8
        assert float(np.std(transformed)) == pytest.approx(1.0, abs=1e-8)

    def test_handles_non_positive_data_with_shift(self):
        x = np.random.default_rng(5).normal(0, 1, 300)
        transform = BoxCoxTransform()
        transformed = transform.fit_transform(x)
        assert np.allclose(transform.inverse_transform(transformed), x, atol=1e-6)

    def test_transform_before_fit_raises(self):
        with pytest.raises(InvalidParameterError):
            BoxCoxTransform().transform(np.ones(10))

    def test_forecast_degrades_with_heavy_compression(self):
        """End-to-end sanity: destroying the signal hurts forecast accuracy."""
        x = _seasonal(seed=11, noise=0.1)
        train, test = train_test_split(x, 24)
        good = evaluate_forecast(HoltWinters(24), train, test).error
        destroyed = np.interp(np.arange(train.size),
                              [0, train.size - 1], [train[0], train[-1]])
        bad = evaluate_forecast(HoltWinters(24), destroyed, test).error
        assert bad > good
        assert msmape(test, SeasonalNaive(24).fit_forecast(destroyed, 24)) > good
