"""Shared fixtures and configuration for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

#: Marker for the fault-injection soak tests (opt-in, non-gating in CI).
STRESS_MARKER = "stress"
#: Environment override that enables the stress tests without ``-m``.
STRESS_ENV = "REPRO_RUN_STRESS"


def pytest_configure(config):  # noqa: D103 - pytest hook
    config.addinivalue_line(
        "markers",
        f"{STRESS_MARKER}: fault-injection soak tests "
        f"(opt-in: run with -m {STRESS_MARKER})")


def pytest_collection_modifyitems(config, items):
    """Skip stress-marked soaks unless they were asked for.

    The soak spawns many process pools and sleeps through injected hangs —
    minutes of wall clock that belong in the scheduled CI stress job, not
    the gating tier-1 run.  A small deterministic smoke subset of the same
    harness stays unmarked and gates every run.
    """
    markexpr = getattr(config.option, "markexpr", "") or ""
    if STRESS_MARKER in markexpr:
        return
    if os.environ.get(STRESS_ENV, "0") not in ("0", "", "false"):
        return
    skip_stress = pytest.mark.skip(
        reason=f"stress soaks run only with -m {STRESS_MARKER} "
               f"(or {STRESS_ENV}=1)")
    for item in items:
        if STRESS_MARKER in item.keywords:
            item.add_marker(skip_stress)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture()
def seasonal_series() -> np.ndarray:
    """A medium-length seasonal series with noise (period 24)."""
    rng = np.random.default_rng(7)
    t = np.arange(1200)
    return (5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
            + 0.5 * np.sin(2 * np.pi * t / 168)
            + rng.normal(0.0, 0.3, t.size))


@pytest.fixture()
def short_seasonal_series() -> np.ndarray:
    """A short seasonal series for the slower algorithms (period 24)."""
    rng = np.random.default_rng(11)
    t = np.arange(400)
    return 10.0 + 3.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0.0, 0.4, t.size)


@pytest.fixture()
def noisy_walk() -> np.ndarray:
    """A random-walk series without seasonality."""
    rng = np.random.default_rng(3)
    return np.cumsum(rng.normal(0.0, 1.0, 800))


@pytest.fixture(scope="session")
def fast_codec_options():
    """Fast, valid constructor options per registered codec (by name)."""
    def options_for(name: str) -> dict:
        from repro.codecs import codec_spec

        family = codec_spec(name).family
        if family in ("cameo", "simplify"):
            return {"max_lag": 8, "epsilon": 0.05}
        if family == "model":
            return {"error_bound": 0.5} if name != "fft" else {"keep_fraction": 0.2}
        return {}

    return options_for
