"""Tests for the command-line interface."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def sample_csv(tmp_path):
    rng = np.random.default_rng(0)
    values = 10 + 3 * np.sin(2 * np.pi * np.arange(600) / 24) + rng.normal(0, 0.3, 600)
    path = tmp_path / "readings.csv"
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "value"])
        for index, value in enumerate(values):
            writer.writerow([index, f"{value:.6f}"])
    return path, values


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for command in ("compress", "decompress", "analyze"):
            args = parser.parse_args([command, "file.csv"]
                                     if command != "decompress" else [command, "file.json"])
            assert args.command == command

    def test_compress_defaults(self):
        args = build_parser().parse_args(["compress", "x.csv"])
        assert args.max_lag == 24
        assert args.epsilon == 0.01
        assert args.statistic == "acf"


class TestCompressDecompress:
    def test_roundtrip_json(self, sample_csv, tmp_path, capsys):
        path, values = sample_csv
        compressed_path = tmp_path / "out.cameo.json"
        code = main(["compress", str(path), "--column", "value", "--max-lag", "24",
                     "--epsilon", "0.02", "--output", str(compressed_path)])
        assert code == 0
        assert compressed_path.exists()
        output = capsys.readouterr().out
        assert "ratio" in output

        restored_path = tmp_path / "restored.csv"
        code = main(["decompress", str(compressed_path), "--output", str(restored_path)])
        assert code == 0
        with open(restored_path, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        restored = np.asarray([float(row[1]) for row in rows[1:]])
        assert restored.size == values.size
        # Reconstruction error is bounded by the series scale.
        assert float(np.max(np.abs(restored - values))) < float(np.ptp(values))

    def test_roundtrip_npz(self, sample_csv, tmp_path):
        path, _values = sample_csv
        compressed_path = tmp_path / "out.npz"
        assert main(["compress", str(path), "--column", "value",
                     "--output", str(compressed_path)]) == 0
        assert main(["decompress", str(compressed_path),
                     "--output", str(tmp_path / "r.csv")]) == 0

    def test_target_ratio_mode(self, sample_csv, tmp_path, capsys):
        path, _values = sample_csv
        out = tmp_path / "ratio.json"
        code = main(["compress", str(path), "--column", "value", "--target-ratio", "5",
                     "--epsilon", "1", "--output", str(out)])
        assert code == 0
        assert "5.0" in capsys.readouterr().out

    def test_missing_column_errors(self, sample_csv, tmp_path):
        path, _values = sample_csv
        code = main(["compress", str(path), "--column", "nope",
                     "--output", str(tmp_path / "x.json")])
        assert code == 2


class TestCodecSelection:
    def test_list_codecs(self, capsys):
        from repro.codecs import available_codecs

        assert main(["list-codecs"]) == 0
        output = capsys.readouterr().out
        for name in available_codecs():
            assert name in output

    @pytest.mark.parametrize("codec,extra", [
        ("gorilla", []),
        ("pmc", ["--codec-arg", "error_bound=0.5"]),
        ("vw", ["--epsilon", "0.05"]),
    ])
    def test_codec_roundtrip(self, codec, extra, sample_csv, tmp_path, capsys):
        path, values = sample_csv
        compressed = tmp_path / f"out.{codec}.json"
        code = main(["compress", str(path), "--column", "value", "--codec", codec,
                     *extra, "--output", str(compressed)])
        assert code == 0
        assert compressed.exists()
        assert "bits/value" in capsys.readouterr().out

        restored = tmp_path / "restored.csv"
        assert main(["decompress", str(compressed), "--output", str(restored)]) == 0
        with open(restored, newline="", encoding="utf-8") as handle:
            rows = list(csv.reader(handle))
        restored_values = np.asarray([float(row[1]) for row in rows[1:]])
        assert restored_values.size == values.size
        if codec == "gorilla":
            np.testing.assert_allclose(restored_values, values, atol=1e-6)

    def test_unknown_codec_lists_available(self, sample_csv, tmp_path, capsys):
        path, _values = sample_csv
        code = main(["compress", str(path), "--codec", "zstd",
                     "--output", str(tmp_path / "x.json")])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown codec" in err and "gorilla" in err

    def test_non_cameo_codec_rejects_npz_output(self, sample_csv, tmp_path, capsys):
        path, _values = sample_csv
        code = main(["compress", str(path), "--codec", "gorilla",
                     "--output", str(tmp_path / "out.npz")])
        assert code == 2
        assert ".json" in capsys.readouterr().err

    def test_bad_codec_arg_rejected(self, sample_csv, tmp_path):
        path, _values = sample_csv
        code = main(["compress", str(path), "--codec", "pmc",
                     "--codec-arg", "error_bound", "--output", str(tmp_path / "x.json")])
        assert code == 2

    def test_codec_arg_reaches_cameo(self, sample_csv, tmp_path, capsys):
        path, _values = sample_csv
        out = tmp_path / "out.json"
        code = main(["compress", str(path), "--column", "value", "--epsilon", "1",
                     "--codec-arg", "target_ratio=5", "--output", str(out)])
        assert code == 0
        assert "5.0" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_report(self, sample_csv, capsys):
        path, _values = sample_csv
        assert main(["analyze", str(path), "--column", "value", "--max-lag", "24"]) == 0
        output = capsys.readouterr().out
        assert "ACF1" in output
        assert "Gorilla" in output
        assert "CAMEO" in output

    def test_analyze_with_aggregation(self, sample_csv, capsys):
        path, _values = sample_csv
        assert main(["analyze", str(path), "--column", "value", "--max-lag", "8",
                     "--agg-window", "12"]) == 0
        assert "windows" in capsys.readouterr().out

    def test_analyze_with_extra_codec(self, sample_csv, capsys):
        path, _values = sample_csv
        assert main(["analyze", str(path), "--column", "value", "--codec", "pmc",
                     "--codec-arg", "error_bound=0.5"]) == 0
        output = capsys.readouterr().out
        assert "pmc" in output and "Gorilla" in output and "CAMEO" in output


class TestCompressBatch:
    @pytest.fixture()
    def csv_dir(self, tmp_path):
        rng = np.random.default_rng(5)
        directory = tmp_path / "sensors"
        directory.mkdir()
        fleet = {}
        for index in range(4):
            values = np.round(
                10 + 3 * np.sin(2 * np.pi * np.arange(200) / 24)
                + rng.normal(0, 0.3, 200), 3)
            path = directory / f"sensor{index}.csv"
            with open(path, "w", newline="", encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["t", "value"])
                for t, value in enumerate(values):
                    writer.writerow([t, repr(float(value))])
            fleet[f"sensor{index}"] = values
        return directory, fleet

    def test_batch_roundtrip_gorilla(self, csv_dir, tmp_path, capsys):
        directory, fleet = csv_dir
        out_dir = tmp_path / "out"
        code = main(["compress-batch", str(directory), "--codec", "gorilla",
                     "--output-dir", str(out_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "compressed 4/4 series with gorilla" in output
        assert "points/s" in output
        import json

        from repro.codecs import get_codec
        from repro.codecs.serialize import block_from_document

        codec = get_codec("gorilla")
        for name, values in fleet.items():
            document = json.loads((out_dir / f"{name}.gorilla.json").read_text())
            block = block_from_document(document)
            assert np.array_equal(codec.decode(block), values)

    def test_batch_cameo_matches_single_compress(self, csv_dir, tmp_path):
        directory, fleet = csv_dir
        out_dir = tmp_path / "out-cameo"
        code = main(["compress-batch", str(directory / "*.csv"),
                     "--codec", "cameo", "--max-lag", "12",
                     "--epsilon", "0.05", "--output-dir", str(out_dir)])
        assert code == 0
        import json

        from repro.codecs import get_codec
        from repro.codecs.serialize import block_from_document

        codec = get_codec("cameo", max_lag=12, epsilon=0.05)
        for name, values in fleet.items():
            document = json.loads((out_dir / f"{name}.cameo.json").read_text())
            block = block_from_document(document)
            reference = codec.encode(values)
            assert (block.payload.indices.tolist()
                    == reference.payload.indices.tolist())

    def test_unreadable_file_is_isolated(self, csv_dir, tmp_path, capsys):
        directory, _fleet = csv_dir
        (directory / "broken.csv").write_text("a,b\n1,not-a-number\n")
        out_dir = tmp_path / "out-mixed"
        code = main(["compress-batch", str(directory), "--codec", "gorilla",
                     "--output-dir", str(out_dir)])
        assert code == 3
        output = capsys.readouterr().out
        assert "FAILED broken" in output
        assert "compressed 4/5 series" in output
        assert len(list(out_dir.glob("*.json"))) == 4

    def test_no_matches_errors(self, tmp_path, capsys):
        code = main(["compress-batch", str(tmp_path / "nothing-*.csv")])
        assert code == 2
        assert "no input files matched" in capsys.readouterr().err

    def test_same_stem_inputs_do_not_collide(self, tmp_path, capsys):
        rng = np.random.default_rng(1)
        fleets = {}
        for sub in ("east", "west"):
            directory = tmp_path / sub
            directory.mkdir()
            values = np.round(rng.normal(10, 1, 120), 3)
            with open(directory / "sensor.csv", "w", newline="",
                      encoding="utf-8") as handle:
                writer = csv.writer(handle)
                writer.writerow(["t", "value"])
                for t, value in enumerate(values):
                    writer.writerow([t, repr(float(value))])
            fleets[sub] = values
        out_dir = tmp_path / "out"
        code = main(["compress-batch", str(tmp_path / "east"),
                     str(tmp_path / "west"), "--codec", "gorilla",
                     "--output-dir", str(out_dir)])
        assert code == 0
        written = sorted(path.name for path in out_dir.glob("*.json"))
        assert written == ["east-sensor.gorilla.json", "west-sensor.gorilla.json"]
        import json

        from repro.codecs import get_codec
        from repro.codecs.serialize import block_from_document

        codec = get_codec("gorilla")
        for sub in ("east", "west"):
            document = json.loads(
                (out_dir / f"{sub}-sensor.gorilla.json").read_text())
            assert np.array_equal(codec.decode(block_from_document(document)),
                                  fleets[sub])


class TestBatchExitCodes:
    """compress-batch exit-code matrix: 0 all-ok, 3 partial, 4 total failure,
    including the new timeout/degradation and input-policy outcomes."""

    @staticmethod
    def _write_csv(path, values):
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.writer(handle)
            writer.writerow(["value"])
            for value in values:
                writer.writerow([value])

    @pytest.fixture()
    def mixed_dir(self, tmp_path):
        directory = tmp_path / "mixed"
        directory.mkdir()
        clean = np.round(np.sin(np.arange(150) / 7.0), 3)
        self._write_csv(directory / "good.csv", clean)
        hostile = [v if not 40 <= i < 50 else "nan"
                   for i, v in enumerate(clean)]
        self._write_csv(directory / "gappy.csv", hostile)
        return directory

    def test_all_ok_exits_zero(self, mixed_dir, tmp_path):
        code = main(["compress-batch", str(mixed_dir / "good.csv"),
                     "--codec", "gorilla",
                     "--output-dir", str(tmp_path / "ok")])
        assert code == 0

    def test_partial_failure_exits_three(self, mixed_dir, tmp_path, capsys):
        code = main(["compress-batch", str(mixed_dir), "--codec", "gorilla",
                     "--output-dir", str(tmp_path / "partial")])
        assert code == 3
        assert "FAILED gappy" in capsys.readouterr().out

    def test_total_failure_exits_four(self, mixed_dir, tmp_path, capsys):
        code = main(["compress-batch", str(mixed_dir / "gappy.csv"),
                     "--codec", "gorilla",
                     "--output-dir", str(tmp_path / "total")])
        assert code == 4
        assert "compressed 0/1" in capsys.readouterr().out

    def test_nan_policy_turns_failure_into_success(self, mixed_dir, tmp_path,
                                                   capsys):
        out_dir = tmp_path / "policy"
        code = main(["compress-batch", str(mixed_dir), "--codec", "gorilla",
                     "--on-nan", "skip", "--output-dir", str(out_dir)])
        assert code == 0
        output = capsys.readouterr().out
        assert "1 series sanitized" in output
        assert len(list(out_dir.glob("*.json"))) == 2

    def test_split_policy_records_metadata(self, mixed_dir, tmp_path):
        import json

        out_dir = tmp_path / "split"
        code = main(["compress-batch", str(mixed_dir / "gappy.csv"),
                     "--codec", "gorilla", "--on-nan", "split",
                     "--output-dir", str(out_dir)])
        assert code == 0
        document = json.loads((out_dir / "gappy.gorilla.json").read_text())
        record = document["metadata"]["sanitize"]
        assert record["dropped_nan"] == 10
        assert record["nan_runs"] == [[40, 10]]

    def test_injected_fault_with_on_degrade_error_exits_three(
            self, mixed_dir, tmp_path, capsys):
        from repro.faultinject import FaultAction, active_plan

        with active_plan([FaultAction(kind="raise", series=0, site="chunk",
                                      max_hits=None)]):
            code = main(["compress-batch", str(mixed_dir / "good.csv"),
                         "--codec", "gorilla", "--backend", "process",
                         "--workers", "2", "--timeout", "10",
                         "--retries", "0", "--on-degrade", "error",
                         "--output-dir", str(tmp_path / "fault")])
        assert code == 4
        output = capsys.readouterr().out
        assert "recovery:" in output
        assert "quarantined" in output

    def test_injected_fault_with_degradation_exits_zero(
            self, mixed_dir, tmp_path, capsys):
        from repro.faultinject import FaultAction, active_plan

        with active_plan([FaultAction(kind="corrupt", series=0)]):
            code = main(["compress-batch", str(mixed_dir / "good.csv"),
                         "--codec", "gorilla", "--backend", "process",
                         "--workers", "2", "--timeout", "10",
                         "--output-dir", str(tmp_path / "degraded")])
        assert code == 0
        output = capsys.readouterr().out
        assert "series degraded" in output

    def test_fault_knob_defaults(self):
        args = build_parser().parse_args(
            ["compress-batch", "x.csv"])
        assert args.timeout is None
        assert args.retries == 1
        assert args.on_degrade == "degrade"
        assert args.on_nan == "raise"
        assert args.on_inf == "raise"


class TestStoreCommands:
    @pytest.fixture()
    def plain_csv(self, tmp_path):
        values = np.round(np.random.default_rng(5).normal(size=40), 3)
        path = tmp_path / "plain.csv"
        path.write_text("\n".join(f"{v}" for v in values) + "\n",
                        encoding="utf-8")
        return path, values

    def test_store_subcommands_parse(self):
        parser = build_parser()
        args = parser.parse_args(["store", "fsck", "dir"])
        assert args.store_command == "fsck" and args.fsync == "always"
        args = parser.parse_args(["store", "save", "dir", "--input", "x.csv",
                                  "--series", "s", "--codec", "raw"])
        assert args.codec == "raw" and args.segment_size is None

    def test_save_load_roundtrip(self, plain_csv, tmp_path, capsys):
        path, values = plain_csv
        directory = tmp_path / "db"
        assert main(["store", "save", str(directory), "--input", str(path),
                     "--series", "t", "--codec", "raw",
                     "--segment-size", "16"]) == 0
        assert "saved 40 values" in capsys.readouterr().out

        out_csv = tmp_path / "out.csv"
        assert main(["store", "load", str(directory), "--series", "t",
                     "--output", str(out_csv)]) == 0
        restored = np.loadtxt(out_csv, delimiter=",", skiprows=1,
                              usecols=1)
        assert np.array_equal(restored, values)

    def test_append_extends_series(self, plain_csv, tmp_path, capsys):
        path, values = plain_csv
        directory = tmp_path / "db"
        main(["store", "save", str(directory), "--input", str(path),
              "--series", "t", "--codec", "raw"])
        assert main(["store", "append", str(directory), "--input", str(path),
                     "--series", "t"]) == 0
        assert "length now 80" in capsys.readouterr().out

    def test_append_to_missing_store_errors(self, plain_csv, tmp_path):
        path, _values = plain_csv
        assert main(["store", "append", str(tmp_path / "absent"),
                     "--input", str(path), "--series", "t"]) == 2

    def test_load_summary_lists_series(self, plain_csv, tmp_path, capsys):
        path, _values = plain_csv
        directory = tmp_path / "db"
        main(["store", "save", str(directory), "--input", str(path),
              "--series", "t", "--codec", "gorilla"])
        capsys.readouterr()
        assert main(["store", "load", str(directory)]) == 0
        output = capsys.readouterr().out
        assert "1 series" in output and "codec gorilla" in output

    def test_fsck_exit_code_matrix(self, plain_csv, tmp_path, capsys):
        """Exit 0 on a clean store, 4 after corruption, 0 once repaired."""
        from repro.faultinject import inject_bit_flip

        path, _values = plain_csv
        directory = tmp_path / "db"
        main(["store", "save", str(directory), "--input", str(path),
              "--series", "t", "--codec", "raw", "--segment-size", "8"])
        assert main(["store", "fsck", str(directory)]) == 0
        assert "store is clean" in capsys.readouterr().out

        target = sorted(directory.glob("segments/*/*/seg-*.json"))[0]
        inject_bit_flip(target, 123)
        assert main(["store", "fsck", str(directory)]) == 4
        output = capsys.readouterr().out
        assert "quarantined 1 segment(s)" in output
        assert "checksum-mismatch" in output

        # The corruption was contained: the next scan is clean again.
        assert main(["store", "fsck", str(directory)]) == 0

        # Reads of the quarantined range fail loudly, not silently.
        assert main(["store", "load", str(directory), "--series", "t",
                     "--output", str(tmp_path / "o.csv")]) == 2

    def test_fsck_missing_store_errors(self, tmp_path):
        assert main(["store", "fsck", str(tmp_path / "absent")]) == 2


class TestServe:
    """The `repro serve` matrix: parse, boot, drain, and failure exits."""

    def test_serve_flags_parse_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8765
        assert args.workers == 2
        assert args.queue_depth == 64
        assert args.drain_timeout == 10.0
        assert args.store is None
        assert args.codec == "gorilla"

    def test_serve_flags_parse_explicit(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--workers", "4", "--queue-depth", "16",
             "--drain-timeout", "2.5", "--store", "/tmp/s",
             "--fsync", "never", "--chunk-size", "32"])
        assert (args.port, args.workers, args.queue_depth) == (0, 4, 16)
        assert args.drain_timeout == 2.5
        assert args.store == "/tmp/s" and args.fsync == "never"

    def _spawn(self, *extra, port):
        import os
        import subprocess
        import sys

        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", str(port), *extra],
            env=dict(os.environ), stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True)

    @staticmethod
    def _free_port() -> int:
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            return probe.getsockname()[1]

    def _wait_ready(self, port: int) -> None:
        import time
        import urllib.request

        for _ in range(200):
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/readyz", timeout=1)
                return
            except OSError:
                time.sleep(0.05)
        raise AssertionError("service never became ready")

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        import json
        import signal
        import urllib.request

        port = self._free_port()
        process = self._spawn("--store", str(tmp_path / "store"),
                              "--chunk-size", "8", port=port)
        try:
            self._wait_ready(port)
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/ingest",
                data=json.dumps({"stream": "s",
                                 "values": [1.0] * 20}).encode(),
                method="POST", headers={"Idempotency-Key": "cli"})
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 200
            process.send_signal(signal.SIGTERM)
            output, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
        assert process.returncode == 0, output
        assert "drained" in output
        # The drained store is unlocked and fsck-clean.
        assert main(["store", "fsck", str(tmp_path / "store")]) == 0

    def test_bind_failure_exits_four(self):
        import socket

        with socket.socket() as occupier:
            occupier.bind(("127.0.0.1", 0))
            occupier.listen(1)
            busy_port = occupier.getsockname()[1]
            process = self._spawn(port=busy_port)
            output, _ = process.communicate(timeout=30)
        assert process.returncode == 4, output
        assert "cannot bind" in output

    def test_locked_store_exits_four(self, tmp_path):
        from repro.storage import DurableStore

        store_dir = tmp_path / "locked"
        with DurableStore.create(store_dir):
            process = self._spawn("--store", str(store_dir),
                                  port=self._free_port())
            output, _ = process.communicate(timeout=30)
        assert process.returncode == 4, output
        assert "cannot open store" in output
        assert "held by pid" in output

    def test_bad_flags_exit_two(self, tmp_path):
        assert main(["serve", "--port", "70000"]) == 2
        assert main(["serve", "--workers", "0"]) == 2
