"""Fault-injection matrix for the supervised batch engine.

Every recovery path the supervisor promises is exercised with a
deterministic :mod:`repro.faultinject` plan, on every backend where the
fault is meaningful: per-series isolation of injected encode failures,
chunk-level retry, worker-crash recovery (pool rebuild), hang/timeout
recovery, the ``process → thread → serial`` degradation ladder, and the
zero-shared-memory-residue guarantee.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import BatchEngine, SupervisorPolicy, compress_batch
from repro.engine.backends import segment_residue
from repro.exceptions import InvalidParameterError
from repro.faultinject import FaultAction, active_plan, random_plan

BACKENDS = ("serial", "thread", "process")

#: Generous per-chunk budget for tests that must not time out.
SAFE_TIMEOUT = 20.0


def make_batch(count: int = 6, base: int = 120) -> list[np.ndarray]:
    return [np.round(np.sin(np.arange(base + 13 * index) / 7.0), 3)
            for index in range(count)]


def run(batch, backend, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("timeout", SAFE_TIMEOUT)
    return compress_batch(batch, codec="gorilla", backend=backend, **kwargs)


class TestEncodeSiteIsolation:
    """An injected per-series failure costs exactly that series."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_raise_mid_encode_is_one_error_outcome(self, backend):
        batch = make_batch()
        with active_plan([FaultAction(kind="raise", series=2, site="encode",
                                      max_hits=None)]):
            result = run(batch, backend, retries=0, fastpath=False)
        assert len(result) == len(batch)
        assert result.report.failed == 1
        assert not result[2].ok
        assert result[2].error_type == "InjectedFault"
        for index in (0, 1, 3, 4, 5):
            assert result[index].ok, result[index].error


class TestChunkRetry:
    """A once-only chunk fault is absorbed by the in-tier retry."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_transient_raise_recovers(self, backend):
        batch = make_batch()
        with active_plan([FaultAction(kind="raise", series=1, site="chunk")]):
            result = run(batch, backend, retries=1)
        assert result.report.failed == 0
        assert result.report.retries >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exhausted_retries_still_terminate(self, backend):
        batch = make_batch()
        with active_plan([FaultAction(kind="raise", series=1, site="chunk",
                                      max_hits=None)]):
            result = run(batch, backend, retries=1, on_degrade="error")
        assert len(result) == len(batch)
        assert result.report.failed >= 1
        assert result.report.quarantined_chunks >= 1


class TestCrashRecovery:
    """A crashing worker breaks the pool; the supervisor rebuilds it."""

    def test_process_worker_crash_recovers_on_retry(self):
        batch = make_batch()
        with active_plan([FaultAction(kind="crash", series=1)]):
            result = run(batch, "process", retries=1)
        assert result.report.failed == 0
        assert result.report.pool_rebuilds >= 1
        assert result.report.retries >= 1

    @pytest.mark.parametrize("backend", ("serial", "thread"))
    def test_in_process_crash_becomes_exception(self, backend):
        # In the plan-activating process a crash degrades to InjectedCrash,
        # so the same plan exercises serial/thread without killing pytest.
        batch = make_batch()
        with active_plan([FaultAction(kind="crash", series=1)]):
            result = run(batch, backend, retries=1)
        assert result.report.failed == 0
        assert result.report.retries >= 1

    def test_no_shared_memory_residue_after_crash(self):
        batch = make_batch()
        with active_plan([FaultAction(kind="crash", series=0)]):
            run(batch, "process", retries=1)
        assert segment_residue() == []

    def test_crash_without_retries_yields_error_outcomes(self):
        batch = make_batch()
        with active_plan([FaultAction(kind="crash", series=0,
                                      max_hits=None)]):
            result = run(batch, "process", retries=0, on_degrade="error")
        assert len(result) == len(batch)
        assert result.report.failed >= 1
        assert segment_residue() == []


class TestHangTimeout:
    """A hung chunk is killed at the timeout and retried or written off."""

    def test_process_hang_recovers_on_retry(self):
        batch = make_batch()
        with active_plan([FaultAction(kind="hang", series=0, seconds=8.0)]):
            result = run(batch, "process", timeout=1.0, retries=1)
        assert result.report.failed == 0
        assert result.report.timeouts >= 1
        assert result.report.pool_rebuilds >= 1
        assert segment_residue() == []

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_persistent_hang_terminates_with_timeout_outcomes(self, backend):
        # Short sleeps: abandoned thread-rung tasks outlive the call and are
        # joined at interpreter exit, so they must run out quickly.
        batch = make_batch(count=4)
        with active_plan([FaultAction(kind="hang", series=0, seconds=1.2,
                                      max_hits=None)]):
            result = run(batch, backend, timeout=0.3, retries=0)
        assert len(result) == len(batch)
        bad = result.errors()
        assert bad and all(outcome.error_type == "ChunkTimeoutError"
                           for outcome in bad)
        # A hang must never reach the untimed serial rung.
        assert all(outcome.degraded_to != "serial" for outcome in bad)

    def test_no_timeout_means_unbounded(self):
        batch = make_batch(count=3)
        with active_plan([FaultAction(kind="hang", series=0, seconds=0.4)]):
            result = run(batch, "thread", timeout=None, retries=0)
        assert result.report.failed == 0
        assert result.report.timeouts == 0


class TestDegradationLadder:
    """A quarantined chunk walks process → thread → serial per on_degrade."""

    def test_corrupt_manifest_degrades_to_thread(self):
        # The corrupted manifest poisons every in-tier retry (the task
        # tuples are built once), so the chunk must leave the process tier;
        # the thread rung re-encodes from the parent's arrays and succeeds.
        batch = make_batch()
        with active_plan([FaultAction(kind="corrupt", series=1)]):
            result = run(batch, "process", retries=1)
        assert result.report.failed == 0
        assert result.report.quarantined_chunks >= 1
        assert result.report.degraded_chunks >= 1
        degraded = [outcome for outcome in result if outcome.degraded_to]
        assert degraded
        assert all(outcome.degraded_to == "thread" for outcome in degraded)
        assert result.report.degraded_series == len(degraded)
        assert segment_residue() == []

    def test_on_degrade_serial_skips_thread_rung(self):
        batch = make_batch()
        with active_plan([FaultAction(kind="corrupt", series=1)]):
            result = run(batch, "process", retries=0, on_degrade="serial")
        assert result.report.failed == 0
        degraded = [outcome for outcome in result if outcome.degraded_to]
        assert degraded
        assert all(outcome.degraded_to == "serial" for outcome in degraded)

    def test_on_degrade_error_records_failures(self):
        batch = make_batch()
        with active_plan([FaultAction(kind="corrupt", series=1)]):
            result = run(batch, "process", retries=0, on_degrade="error")
        assert len(result) == len(batch)
        assert result.report.failed >= 1
        assert result.report.degraded_chunks == 0
        assert segment_residue() == []


class TestRandomPlanSmoke:
    """Gating smoke subset of the stress soak: a few fixed seeds."""

    @pytest.mark.parametrize("seed", (3, 7))
    @pytest.mark.parametrize("backend", ("serial", "process"))
    def test_random_plan_always_terminates(self, seed, backend):
        batch = make_batch()
        actions = random_plan(seed, len(batch))
        with active_plan(actions):
            result = run(batch, backend, timeout=1.5, retries=1)
        assert len(result) == len(batch), f"seed {seed} lost outcomes"
        assert sorted(outcome.index for outcome in result) == list(range(len(batch)))
        assert segment_residue() == [], f"seed {seed} leaked shared memory"


class TestPolicyValidation:
    def test_supervisor_policy_rejects_bad_values(self):
        with pytest.raises(InvalidParameterError):
            SupervisorPolicy(timeout=0.0)
        with pytest.raises(InvalidParameterError):
            SupervisorPolicy(retries=-1)
        with pytest.raises(InvalidParameterError):
            SupervisorPolicy(backoff=-0.1)
        with pytest.raises(InvalidParameterError):
            SupervisorPolicy(on_degrade="explode")

    def test_engine_rejects_bad_knobs(self):
        with pytest.raises(InvalidParameterError):
            BatchEngine("gorilla", timeout=-1.0)
        with pytest.raises(InvalidParameterError):
            BatchEngine("gorilla", on_degrade="explode")
        with pytest.raises(InvalidParameterError):
            BatchEngine("gorilla", policy="skip")


class TestCleanPathIdentity:
    """Supervision must not change results when nothing goes wrong."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_knobs_do_not_change_clean_results(self, backend):
        batch = make_batch()
        baseline = compress_batch(batch, codec="gorilla")
        supervised = run(batch, backend, retries=2)
        assert [outcome.block.payload for outcome in baseline] \
            == [outcome.block.payload for outcome in supervised]
        report = supervised.report
        assert report.retries == 0 and report.timeouts == 0
        assert report.pool_rebuilds == 0 and report.degraded_chunks == 0
