"""Fault-injection soak for the supervised batch engine (``-m stress``).

Every test here runs a *seeded* random fault plan (``repro.faultinject
.random_plan``) against every backend and asserts only the supervisor's
hard contract: the batch terminates with one outcome per series and leaves
no shared-memory residue.  The seed appears in the test id and in every
assertion message, so a soak failure replays deterministically with::

    pytest tests/engine/test_stress.py -m stress -k "seed<N>"

The soak is opt-in (skipped without ``-m stress`` / ``REPRO_RUN_STRESS=1``)
and runs as a non-gating CI job; the gating smoke subset of the same
harness lives in ``test_faults.py::TestRandomPlanSmoke``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import compress_batch
from repro.engine.backends import segment_residue
from repro.faultinject import active_plan, random_plan

#: Recorded soak seeds.  Every plan is a pure function of its seed, so this
#: list *is* the soak's reproducibility record — extend it to widen coverage.
STRESS_SEEDS = tuple(range(12))

BACKENDS = ("serial", "thread", "process")

SERIES_COUNT = 6


def make_batch() -> list[np.ndarray]:
    return [np.round(np.sin(np.arange(100 + 17 * index) / 6.0), 3)
            for index in range(SERIES_COUNT)]


@pytest.mark.stress
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", STRESS_SEEDS, ids=lambda s: f"seed{s}")
def test_soak_random_plans_always_terminate(seed, backend):
    batch = make_batch()
    actions = random_plan(seed, SERIES_COUNT)
    with active_plan(actions) as plan:
        result = compress_batch(batch, codec="gorilla", backend=backend,
                                workers=2, timeout=1.5, retries=1)
    context = (f"seed={seed} backend={backend} "
               f"plan={[action.marker for action in plan.actions]}")
    assert len(result) == SERIES_COUNT, f"lost outcomes: {context}"
    assert sorted(outcome.index for outcome in result) \
        == list(range(SERIES_COUNT)), f"outcome indices broken: {context}"
    for outcome in result:
        assert outcome.ok or outcome.error_type, f"empty outcome: {context}"
    assert segment_residue() == [], f"leaked shared memory: {context}"


@pytest.mark.stress
@pytest.mark.parametrize("seed", STRESS_SEEDS[:4], ids=lambda s: f"seed{s}")
def test_soak_cameo_codec_survives_plans(seed):
    """The soak contract holds for the lossy flagship codec too."""
    batch = make_batch()
    actions = random_plan(seed, SERIES_COUNT)
    with active_plan(actions):
        result = compress_batch(batch, codec="cameo", backend="process",
                                workers=2, timeout=2.5, retries=1,
                                codec_options={"max_lag": 8, "epsilon": 0.05})
    assert len(result) == SERIES_COUNT, f"seed {seed} lost outcomes"
    assert segment_residue() == [], f"seed {seed} leaked shared memory"


def test_stress_marker_keeps_soaks_opt_in(request):
    """Tier-1 guard: the soak must stay opt-in (see tests/conftest.py)."""
    import os

    markexpr = getattr(request.config.option, "markexpr", "") or ""
    if "stress" in markexpr \
            or os.environ.get("REPRO_RUN_STRESS", "0") not in ("0", "", "false"):
        pytest.skip("stress explicitly requested; the guard applies to tier-1")
    for item in request.session.items:
        if "stress" in item.keywords:
            assert item.get_closest_marker("skip") is not None, \
                f"{item.nodeid} would soak inside the gating tier-1 run"
