"""Size-aware work chunking."""

from __future__ import annotations

import numpy as np

from repro.engine.chunking import MIN_SERIES_PER_CHUNK, plan_chunks


class TestPlanChunks:
    def test_every_index_exactly_once(self):
        rng = np.random.default_rng(3)
        sizes = rng.integers(10, 10_000, 57).tolist()
        chunks = plan_chunks(sizes, workers=4)
        flat = sorted(index for chunk in chunks for index in chunk)
        assert flat == list(range(len(sizes)))

    def test_serial_gets_one_chunk(self):
        assert plan_chunks([10, 20, 30], workers=1) == [[0, 1, 2]]

    def test_empty(self):
        assert plan_chunks([], workers=4) == []

    def test_deterministic(self):
        sizes = [100, 5, 5, 100, 50, 50, 5, 100] * 4
        assert plan_chunks(sizes, workers=3) == plan_chunks(sizes, workers=3)

    def test_giant_series_does_not_straggle(self):
        # One million-point series among tiny ones: the giant must sit in a
        # chunk whose total load is not (much) more than the giant itself —
        # i.e. the tiny series are spread over the *other* chunks.
        sizes = [1_000_000] + [10_000] * 40
        chunks = plan_chunks(sizes, workers=4)
        loads = [sum(sizes[index] for index in chunk) for chunk in chunks]
        giant_chunk = next(chunk for chunk in chunks if 0 in chunk)
        giant_load = sum(sizes[index] for index in giant_chunk)
        assert giant_load <= 1_000_000 + 10_000
        # The rest of the work is balanced within a factor of ~2.
        rest = sorted(load for chunk, load in zip(chunks, loads)
                      if chunk is not giant_chunk)
        if len(rest) > 1:
            assert rest[-1] <= 2 * rest[0] + 10_000

    def test_heaviest_chunk_first(self):
        sizes = [10, 10, 10, 10_000, 10, 10]
        chunks = plan_chunks(sizes, workers=2)
        loads = [sum(sizes[index] for index in chunk) for chunk in chunks]
        assert loads == sorted(loads, reverse=True)

    def test_small_batches_stay_stackable(self):
        # 12 equal series over 4 workers must not shatter into 12 singleton
        # chunks — the cross-series fast paths stack within a chunk.
        chunks = plan_chunks([256] * 12, workers=4, oversubscribe=4)
        assert len(chunks) <= max(4, 12 // MIN_SERIES_PER_CHUNK + 4)
        assert max(len(chunk) for chunk in chunks) >= 2
