"""Batch-engine determinism and fault isolation (ISSUE 5 satellite).

The engine's contract: every backend produces results bit-identical to the
per-series sequential run (kept-point sets for CAMEO, byte-identical
payloads for the XOR codecs), and one poisoned series yields an error
record, never a dead batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codecs import get_codec
from repro.engine import BatchEngine, compress_batch

BACKENDS = ("serial", "thread", "process")


def _fleet(count: int, length: int, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    base = 5.0 + 2.0 * np.sin(2 * np.pi * t / 24)
    return [base + rng.normal(0.0, 0.3, length) for _ in range(count)]


class TestDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("statistic", ["acf", "pacf"])
    def test_cameo_identical_to_sequential(self, backend, statistic):
        """Fixed-seed batch == per-series sequential run, both statistics."""
        fleet = _fleet(9, 150, seed=17)
        options = dict(max_lag=12, epsilon=0.04, statistic=statistic)
        result = compress_batch(fleet, codec="cameo", codec_options=options,
                                backend=backend, workers=2)
        codec = get_codec("cameo", **options)
        assert result.report.failed == 0
        for outcome, series in zip(result, fleet):
            reference = codec.encode(series)
            assert (outcome.unwrap().payload.indices.tolist()
                    == reference.payload.indices.tolist())
            assert np.array_equal(outcome.unwrap().payload.values,
                                  reference.payload.values)
            assert (outcome.unwrap().metadata["kept_points"]
                    == reference.metadata["kept_points"])

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("codec_name", ["gorilla", "chimp"])
    def test_xor_payloads_byte_identical(self, backend, codec_name):
        fleet = [np.round(series, 2) for series in _fleet(7, 220, seed=23)]
        fleet.append(np.round(_fleet(1, 97, seed=5)[0], 2))  # odd length out
        result = compress_batch(fleet, codec=codec_name, backend=backend,
                                workers=2)
        codec = get_codec(codec_name)
        assert result.report.failed == 0
        for outcome, series in zip(result, fleet):
            assert outcome.unwrap().payload == codec.encode(series).payload

    def test_fastpath_off_matches_fastpath_on(self):
        fleet = _fleet(6, 120, seed=9)
        options = dict(max_lag=10, epsilon=0.05)
        on = compress_batch(fleet, codec="cameo", codec_options=options,
                            fastpath=True)
        off = compress_batch(fleet, codec="cameo", codec_options=options,
                             fastpath=False)
        assert on.report.fastpath_series > 0
        assert off.report.fastpath_series == 0
        for left, right in zip(on, off):
            assert (left.unwrap().payload.indices.tolist()
                    == right.unwrap().payload.indices.tolist())

    def test_outcomes_in_input_order(self):
        fleet = _fleet(12, 64, seed=4)
        result = compress_batch(fleet, codec="raw", backend="thread",
                                workers=3)
        assert [outcome.index for outcome in result] == list(range(12))


class TestFaultIsolation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_poisoned_series_do_not_kill_the_batch(self, backend):
        fleet = _fleet(6, 150, seed=41)
        fleet[2] = np.full(80, np.nan)          # NaN-only
        fleet[4] = np.empty(0, dtype=np.float64)  # length 0
        result = compress_batch(fleet, codec="cameo",
                                codec_options=dict(max_lag=12, epsilon=0.05),
                                backend=backend, workers=2)
        assert result.report.series == 6
        assert result.report.failed == 2
        errors = result.errors()
        assert sorted(outcome.index for outcome in errors) == [2, 4]
        for outcome in errors:
            assert outcome.error_type == "InvalidSeriesError"
            assert outcome.error
            with pytest.raises(Exception):
                outcome.unwrap()
        healthy = [outcome for outcome in result if outcome.ok]
        assert len(healthy) == 4
        codec = get_codec("cameo", max_lag=12, epsilon=0.05)
        for outcome in healthy:
            reference = codec.encode(fleet[outcome.index])
            assert (outcome.unwrap().payload.indices.tolist()
                    == reference.payload.indices.tolist())

    def test_error_recorded_per_series_with_lossless_codec(self):
        fleet = _fleet(4, 100, seed=2)
        fleet[1] = np.array([1.0, np.inf, 3.0])
        result = compress_batch(fleet, codec="gorilla")
        assert result.report.failed == 1
        assert result[1].error_type == "InvalidSeriesError"
        assert all(result[index].ok for index in (0, 2, 3))


class TestSources:
    def test_named_pairs_and_names_override(self):
        fleet = _fleet(3, 64, seed=8)
        result = compress_batch([("a", fleet[0]), ("b", fleet[1]),
                                 ("c", fleet[2])], codec="raw")
        assert [outcome.name for outcome in result] == ["a", "b", "c"]

    def test_mapping_source(self):
        fleet = _fleet(2, 64, seed=8)
        result = compress_batch({"x": fleet[0], "y": fleet[1]}, codec="raw")
        assert [outcome.name for outcome in result] == ["x", "y"]

    def test_store_source(self):
        from repro.storage import TimeSeriesStore

        store = TimeSeriesStore()
        fleet = [np.round(series, 2) for series in _fleet(3, 128, seed=3)]
        for index, series in enumerate(fleet):
            store.create_series(f"sensor-{index}", codec="raw")
            store.append(f"sensor-{index}", series)
            store.flush(f"sensor-{index}")
        result = compress_batch(store, codec="gorilla")
        assert result.report.failed == 0
        codec = get_codec("gorilla")
        for outcome, series in zip(result, fleet):
            assert outcome.unwrap().payload == codec.encode(series).payload

    def test_dtype_preserved_through_backends(self):
        fleet = [series.astype(np.float32) for series in _fleet(3, 90, seed=6)]
        for backend in BACKENDS:
            result = compress_batch(fleet, codec="gorilla", backend=backend,
                                    workers=2)
            codec = get_codec("gorilla")
            for outcome, series in zip(result, fleet):
                decoded = codec.decode(outcome.unwrap())
                assert decoded.dtype == np.float32
                assert np.array_equal(decoded, series)


class TestReport:
    def test_report_accounting(self):
        fleet = _fleet(5, 128, seed=14)
        engine = BatchEngine("gorilla", backend="serial")
        result = engine.compress(fleet)
        report = result.report
        assert report.series == 5 and report.failed == 0
        assert report.total_points == 5 * 128
        assert report.encoded_bits == sum(
            outcome.unwrap().bits for outcome in result)
        assert report.points_per_sec > 0
        assert report.wall_seconds > 0
        as_dict = report.as_dict()
        assert as_dict["codec"] == "gorilla"
        assert as_dict["series"] == 5

    def test_unknown_codec_and_backend_rejected(self):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            BatchEngine("definitely-not-a-codec")
        with pytest.raises(InvalidParameterError):
            BatchEngine("raw", backend="gpu")
