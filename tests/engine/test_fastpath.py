"""Cross-series fast paths: stacked XOR encode + lock-step CAMEO.

Both fast paths carry a hard identity contract — byte-identical XOR
payloads, bit-identical CAMEO kept-point sets — verified here against the
per-series implementations, along with the stacked multi-state kernel that
powers the lock-step driver.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CameoCompressor
from repro.core.impact import batched_contiguous_acf, multi_state_contiguous_acf
from repro.engine.cameo_batch import lockstep_compress, lockstep_eligible
from repro.lossless import ChimpCodec, GorillaCodec
from repro.stats.aggregates import ACFAggregateState


class TestStackedXorEncode:
    @pytest.mark.parametrize("codec_cls", [GorillaCodec, ChimpCodec],
                             ids=["gorilla", "chimp"])
    @pytest.mark.parametrize("length", [1, 2, 63, 64, 65, 300])
    def test_batch_byte_identical_to_single(self, codec_cls, length):
        rng = np.random.default_rng(length)
        codec = codec_cls()
        matrix = np.round(rng.normal(100.0, 5.0, (7, length)), 2)
        batch = codec.encode_batch(matrix)
        for row in range(matrix.shape[0]):
            payload, bits, count = codec.encode(matrix[row])
            assert batch[row] == (payload, bits, count)
            assert np.array_equal(codec.decode(*batch[row]), matrix[row])

    def test_constant_and_special_values(self):
        codec = GorillaCodec()
        matrix = np.vstack([
            np.full(50, 3.25),
            np.zeros(50),
            np.round(np.sin(np.arange(50)), 3),
            np.full(50, -0.0),
        ])
        batch = codec.encode_batch(matrix)
        for row in range(matrix.shape[0]):
            assert batch[row] == codec.encode(matrix[row])

    def test_rejects_bad_shapes(self):
        from repro.exceptions import CodecError

        with pytest.raises(CodecError):
            GorillaCodec().encode_batch(np.zeros(5))
        with pytest.raises(CodecError):
            ChimpCodec().encode_batch(np.zeros((2, 0)))


class TestMultiStateKernel:
    def test_bit_identical_to_per_state_calls(self):
        rng = np.random.default_rng(5)
        for _trial in range(20):
            num_lags = int(rng.integers(3, 24))
            states, requests = [], []
            for _state in range(int(rng.integers(1, 6))):
                n = int(rng.integers(num_lags + 3, 300))
                states.append(ACFAggregateState(rng.normal(0, 1, n), num_lags))
                lengths, positions, deltas = [], [], []
                for _segment in range(int(rng.integers(0, 7))):
                    seg_len = int(rng.integers(0, min(10, n)))
                    lengths.append(seg_len)
                    if seg_len:
                        start = int(rng.integers(0, n - seg_len + 1))
                        positions.extend(range(start, start + seg_len))
                        deltas.extend(rng.normal(0, 0.5, seg_len).tolist())
                requests.append((np.asarray(lengths, dtype=np.int64),
                                 np.asarray(positions, dtype=np.int64),
                                 np.asarray(deltas, dtype=np.float64)))
            stacked = multi_state_contiguous_acf(
                states, [request[0] for request in requests],
                [request[1] for request in requests],
                [request[2] for request in requests])
            row = 0
            for state, (lengths, positions, deltas) in zip(states, requests):
                reference = batched_contiguous_acf(state, lengths, positions,
                                                   deltas)
                stop = row + lengths.size
                assert np.array_equal(stacked[row:stop], reference,
                                      equal_nan=True)
                row = stop

    def test_mismatched_lags_rejected(self):
        rng = np.random.default_rng(1)
        states = [ACFAggregateState(rng.normal(0, 1, 50), 5),
                  ACFAggregateState(rng.normal(0, 1, 50), 7)]
        with pytest.raises(ValueError):
            multi_state_contiguous_acf(
                states, [np.array([1]), np.array([1])],
                [np.array([10]), np.array([10])],
                [np.array([0.1]), np.array([0.1])])


def _short_fleet(count, length, seed):
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    return [2.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.3, length)
            for _ in range(count)]


class TestLockstepCameo:
    @pytest.mark.parametrize("config", [
        dict(max_lag=12, epsilon=0.05),
        dict(max_lag=12, epsilon=0.05, statistic="pacf"),
        dict(max_lag=8, epsilon=None, target_ratio=3.0),
        dict(max_lag=10, epsilon=0.04, metric="cheb"),
        dict(max_lag=10, epsilon=0.04, batch_size=1),
    ], ids=["acf", "pacf", "target-ratio", "cheb", "sequential"])
    def test_identical_to_sequential(self, config):
        compressor = CameoCompressor(**config)
        fleet = _short_fleet(5, 140, seed=33)
        fleet.append(_short_fleet(1, 90, seed=7)[0])  # mixed lengths
        assert all(lockstep_eligible(compressor, series.size)
                   for series in fleet)
        results = lockstep_compress(compressor, fleet)
        for series, result in zip(fleet, results):
            reference = compressor.compress(series)
            assert result.indices.tolist() == reference.indices.tolist()
            assert np.array_equal(result.values, reference.values)
            for key in ("kept_points", "iterations", "removed_points",
                        "stopped_by", "achieved_deviation", "reheap_updates"):
                assert result.metadata[key] == reference.metadata[key], key
            assert (result.metadata["reference_statistic"]
                    == reference.metadata["reference_statistic"])

    def test_eligibility_rules(self):
        compressor = CameoCompressor(12, 0.05)
        assert lockstep_eligible(compressor, 200)
        assert not lockstep_eligible(compressor, 3)          # too short
        assert not lockstep_eligible(compressor, 100_000)    # too long
        assert not lockstep_eligible(
            CameoCompressor(12, 0.05, agg_window=4), 200)    # aggregated
        assert not lockstep_eligible(
            CameoCompressor(12, 0.05, on_violation="skip"), 200)
        from repro.stats import make_statistic

        custom = make_statistic("moments")
        assert not lockstep_eligible(
            CameoCompressor(12, 0.05, statistic=custom), 200)

    def test_speculation_statistics_preserved(self):
        # The lock-step loop must replicate the speculative bookkeeping,
        # not just the kept set: preview-reuse counters match exactly.
        compressor = CameoCompressor(12, 0.05)
        fleet = _short_fleet(3, 150, seed=77)
        results = lockstep_compress(compressor, fleet)
        for series, result in zip(fleet, results):
            reference = compressor.compress(series)
            assert (result.metadata["preview_reuse"]
                    == reference.metadata["preview_reuse"])
            assert result.metadata["batch_size"] == reference.metadata["batch_size"]


class TestMixedLengthGroups:
    def test_undersized_series_does_not_break_the_group(self):
        """One short series (smaller effective lag) must not drag its whole
        lock-step group back to the per-series path."""
        from repro.engine import compress_batch

        rng = np.random.default_rng(13)
        fleet = [2 * np.sin(2 * np.pi * np.arange(120) / 24)
                 + rng.normal(0, 0.3, 120) for _ in range(5)]
        tiny = 2 * np.sin(2 * np.pi * np.arange(10) / 5) + rng.normal(0, 0.1, 10)
        options = dict(max_lag=16, epsilon=0.05)
        result = compress_batch(fleet + [tiny], codec="cameo",
                                codec_options=options)
        # The five 120-point series (effective lag 16) still stack; the
        # 10-point series (effective lag 9) runs per-series.
        assert result.report.failed == 0
        assert result.report.fastpath_series == 5
        from repro.codecs import get_codec

        codec = get_codec("cameo", **options)
        for outcome, series in zip(result, fleet + [tiny]):
            reference = codec.encode(series)
            if hasattr(reference.payload, "indices"):
                assert (outcome.unwrap().payload.indices.tolist()
                        == reference.payload.indices.tolist())

    def test_two_lag_buckets_both_stack(self):
        from repro.engine import compress_batch

        rng = np.random.default_rng(14)
        long_fleet = [rng.normal(0, 1, 150) for _ in range(3)]
        short_fleet = [rng.normal(0, 1, 12) for _ in range(3)]
        result = compress_batch(long_fleet + short_fleet, codec="cameo",
                                codec_options=dict(max_lag=16, epsilon=0.05))
        # Both buckets (effective lag 16 and 11) have >= 2 members, so all
        # six series ride the lock-step path.
        assert result.report.failed == 0
        assert result.report.fastpath_series == 6
