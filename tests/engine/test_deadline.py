"""Deadline propagation through the supervised engine.

A request-level budget (``BatchEngine.compress(deadline=...)``) becomes an
absolute instant on the supervisor policy: every chunk wait is bounded by
the remaining budget, expiry writes the chunk off with
:class:`~repro.exceptions.DeadlineExceededError` outcomes instead of
retrying or degrading, and the run returns promptly with partial results —
it never blocks until a hung chunk's own timeout.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.engine import BatchEngine, SupervisorPolicy
from repro.exceptions import (ChunkTimeoutError, DeadlineExceededError,
                              InvalidParameterError)
from repro.faultinject import FaultAction, active_plan

#: Generous per-chunk budget so only the deadline can cut waits short.
SAFE_TIMEOUT = 20.0


def make_batch(count: int = 6, base: int = 120) -> list[np.ndarray]:
    return [np.round(np.sin(np.arange(base + 13 * index) / 7.0), 3)
            for index in range(count)]


class TestDeadlineSemantics:
    def test_deadline_exceeded_is_a_timeout(self):
        assert issubclass(DeadlineExceededError, ChunkTimeoutError)

    def test_engine_rejects_non_positive_deadline(self):
        engine = BatchEngine("gorilla")
        for bad in (0, -1, -0.5):
            with pytest.raises(InvalidParameterError):
                engine.compress(make_batch(2), deadline=bad)

    def test_policy_rejects_non_numeric_deadline(self):
        with pytest.raises(InvalidParameterError):
            SupervisorPolicy(deadline="soon")

    def test_generous_deadline_changes_nothing(self):
        batch = make_batch()
        engine = BatchEngine("gorilla", backend="thread", workers=2,
                             timeout=SAFE_TIMEOUT)
        result = engine.compress(batch, deadline=60.0)
        assert result.report.failed == 0
        assert result.report.timeouts == 0


class TestDeadlineBoundsWaits:
    def test_thread_backend_returns_at_deadline_with_partials(self):
        batch = make_batch(count=4)
        engine = BatchEngine("gorilla", backend="thread", workers=2,
                             timeout=SAFE_TIMEOUT, retries=3)
        with active_plan([FaultAction(kind="hang", series=0, seconds=3.0,
                                      max_hits=None)]):
            started = time.monotonic()
            result = engine.compress(batch, deadline=0.4)
            elapsed = time.monotonic() - started
        # The hang sleeps 3 s; the deadline must cut the wait loose long
        # before that, without burning the retry budget on expired waits.
        assert elapsed < 2.0
        bad = result.errors()
        assert bad
        assert all(outcome.error_type == "DeadlineExceededError"
                   for outcome in bad)
        assert len(result) == len(batch)

    def test_process_backend_rebuilds_and_returns(self):
        batch = make_batch(count=4)
        engine = BatchEngine("gorilla", backend="process", workers=2,
                             timeout=SAFE_TIMEOUT, retries=2)
        with active_plan([FaultAction(kind="hang", series=0, seconds=6.0,
                                      max_hits=None)]):
            started = time.monotonic()
            result = engine.compress(batch, deadline=0.5)
            elapsed = time.monotonic() - started
        assert elapsed < 5.0
        assert len(result) == len(batch)
        bad = result.errors()
        assert bad
        assert all(outcome.error_type == "DeadlineExceededError"
                   for outcome in bad)
        # The hung pool was killed so its workers cannot linger.
        assert result.report.pool_rebuilds >= 1

    def test_serial_backend_writes_off_expired_chunks(self):
        # Serial planning is one chunk per run, so drive the serial rung
        # directly with an already-expired policy: the chunk must be
        # written off without ever being attempted.
        from repro.engine.supervisor import run_supervised

        batch = make_batch(count=3)
        policy = SupervisorPolicy(timeout=None,
                                  deadline=time.monotonic() - 1.0)
        outcomes, stats = run_supervised(
            "serial", [[0, 1, 2]], batch, ["a", "b", "c"], "gorilla",
            None, False, 1, policy=policy)
        assert len(outcomes) == len(batch)
        assert all(outcome.error_type == "DeadlineExceededError"
                   for outcome in outcomes)
        assert stats.timeouts >= 1
